"""Best-known dispatch configurations, measured and persisted.

The paper's tuning step measures each device's real throughput before
committing a dispatch plan; this module is the same loop for the dispatch
parameters themselves.  A sweep (:mod:`repro.tuning.sweep`, driven by
``benchmarks/sweep_dispatch.py`` or ``repro tune``) grids over worker
count x chunk size x gather batch, and the winning configuration per
``(backend, workers)`` is written to a versioned ``tuning.json`` that
:func:`repro.core.backend.resolve_backend` consults on every resolution —
so a tuned machine stops paying for defaults sized for some other
machine.

Entries are **host-guarded**: a config recorded for a different CPU count
or worker count is stale by definition (the measured optimum does not
transfer) and is ignored, which is exactly the invalidation the tests
pin down.

Schema (``repro-tuning/v1``)::

    {
      "schema": "repro-tuning/v1",
      "entries": [
        {"backend": "process", "workers": 3, "cpus": 4,
         "chunk_size": 65536, "gather_batch": 4, "batch_size": 16384,
         "keys_per_second": 5.1e6, "measured_at": 1754500000}
      ]
    }
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

TUNING_SCHEMA = "repro-tuning/v1"

#: Environment override for the default store location (CI, sweeps, tests).
TUNING_FILE_ENV = "REPRO_TUNING_FILE"

#: Default filename looked up in the working directory.
DEFAULT_TUNING_FILENAME = "tuning.json"


@dataclass(frozen=True)
class TuningEntry:
    """One measured-best dispatch configuration for a host shape."""

    backend: str
    workers: int
    cpus: int
    chunk_size: int
    gather_batch: int
    batch_size: int
    keys_per_second: float
    measured_at: int

    def __post_init__(self) -> None:
        if self.workers < 1 or self.cpus < 1:
            raise ValueError("workers and cpus must be positive")
        if min(self.chunk_size, self.gather_batch, self.batch_size) < 1:
            raise ValueError("chunk_size, gather_batch and batch_size must be positive")

    @property
    def key(self) -> tuple[str, int]:
        return (self.backend, self.workers)

    def matches_host(self, workers: int, cpus: int | None = None) -> bool:
        """Entry validity guard: measured on this worker count and host?"""
        cpus = cpus if cpus is not None else (os.cpu_count() or 1)
        return self.workers == workers and self.cpus == cpus


def validate_tuning(document: object) -> list[str]:
    """Schema check; returns problems (empty means conformant)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["tuning payload must be an object"]
    if document.get("schema") != TUNING_SCHEMA:
        problems.append(f"schema must be {TUNING_SCHEMA!r}")
    entries = document.get("entries")
    if not isinstance(entries, list):
        return problems + ["entries must be a list"]
    for row in entries:
        if not isinstance(row, dict):
            problems.append("entries must be objects")
            continue
        if not isinstance(row.get("backend"), str) or not row.get("backend"):
            problems.append("entry missing backend name")
        for field in ("workers", "cpus", "chunk_size", "gather_batch",
                      "batch_size", "measured_at"):
            if not isinstance(row.get(field), int) or row.get(field, 0) < 1:
                problems.append(f"entry field {field!r} must be a positive int")
        if not isinstance(row.get("keys_per_second"), (int, float)):
            problems.append("entry missing numeric keys_per_second")
    return problems


class TuningStore:
    """The versioned ``tuning.json``: load, query, record-best, save."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else default_tuning_path()
        self._entries: dict[tuple[str, int], TuningEntry] = {}
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        document = json.loads(self.path.read_text())
        problems = validate_tuning(document)
        if problems:
            raise ValueError(f"invalid tuning file {self.path}: {problems}")
        for row in document["entries"]:
            entry = TuningEntry(**row)
            self._entries[entry.key] = entry

    def to_document(self) -> dict:
        return {
            "schema": TUNING_SCHEMA,
            "entries": [asdict(e) for e in sorted(
                self._entries.values(), key=lambda e: e.key
            )],
        }

    def save(self) -> None:
        """Atomic write (temp + rename) so a concurrent reader never tears."""
        payload = json.dumps(self.to_document(), indent=2) + "\n"
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(payload)
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------ #
    def entries(self) -> list[TuningEntry]:
        return sorted(self._entries.values(), key=lambda e: e.key)

    def record(self, entry: TuningEntry) -> bool:
        """Keep the entry if it beats the stored best for its key.

        A remeasured config for the same ``(backend, workers)`` always
        replaces one recorded on a different host shape (it is stale
        there anyway); on the same shape the faster one wins.  Returns
        True when the store changed.
        """
        current = self._entries.get(entry.key)
        if current is not None and current.cpus == entry.cpus:
            if current.keys_per_second >= entry.keys_per_second:
                return False
        self._entries[entry.key] = entry
        return True

    def best_for(
        self, backend: str, workers: int, cpus: int | None = None
    ) -> TuningEntry | None:
        """The valid best-known config, or None (missing or stale)."""
        entry = self._entries.get((backend, workers))
        if entry is None or not entry.matches_host(workers, cpus):
            return None
        return entry


def default_tuning_path() -> Path:
    return Path(os.environ.get(TUNING_FILE_ENV, DEFAULT_TUNING_FILENAME))


def make_entry(
    backend: str,
    workers: int,
    chunk_size: int,
    gather_batch: int,
    batch_size: int,
    keys_per_second: float,
    cpus: int | None = None,
) -> TuningEntry:
    return TuningEntry(
        backend=backend,
        workers=workers,
        cpus=cpus if cpus is not None else (os.cpu_count() or 1),
        chunk_size=chunk_size,
        gather_batch=gather_batch,
        batch_size=batch_size,
        keys_per_second=keys_per_second,
        measured_at=int(time.time()),
    )


# --------------------------------------------------------------------- #
# Cached default-store lookup: resolve_backend() calls this on every
# resolution, so the file is re-read only when its mtime changes.
# --------------------------------------------------------------------- #
_CACHE: dict[str, tuple[float, TuningStore | None]] = {}


def lookup(backend: str, workers: int) -> TuningEntry | None:
    """Best valid entry from the default store (cheap, cached, safe).

    Missing or malformed files mean "no tuning" — resolution must never
    fail because a tuning file is absent or stale.
    """
    path = default_tuning_path()
    key = str(path)
    try:
        mtime = path.stat().st_mtime
    except OSError:
        _CACHE.pop(key, None)
        return None
    cached = _CACHE.get(key)
    if cached is None or cached[0] != mtime:
        try:
            store: TuningStore | None = TuningStore(path)
        except (ValueError, OSError, json.JSONDecodeError):
            store = None
        _CACHE[key] = (mtime, store)
    else:
        store = cached[1]
    if store is None:
        return None
    return store.best_for(backend, workers)


__all__ = [
    "TUNING_SCHEMA",
    "TUNING_FILE_ENV",
    "TuningEntry",
    "TuningStore",
    "default_tuning_path",
    "lookup",
    "make_entry",
    "validate_tuning",
]
