"""The sweep engine: grid the dispatch knobs, measure, lock in the best.

This is the optimization loop behind ``benchmarks/sweep_dispatch.py`` and
``repro tune``: run the same fixed search through every combination of
worker count x chunk size x gather batch, time each point against a serial
baseline measured on the same host, and persist the winners to the
versioned ``tuning.json`` (:class:`repro.tuning.TuningStore`) that
:func:`repro.core.backend.resolve_backend` consults.  The rendered summary
(:func:`render_summary`) is the human-readable audit trail: what was
tried, what won, and by how much.

The sweep measures *warm* dispatch: each ``(backend, workers)`` pool is
started once, primed with a warm-up run, and reused for every grid point —
pool start-up is a one-time cost in production (persistent pools), so it
must not contaminate the per-point timings either.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field

from repro.apps.cracking import CrackTarget
from repro.core.backend import resolve_backend
from repro.keyspace import ALPHA_LOWER, Interval, split_interval
from repro.tuning import TuningEntry, TuningStore, make_entry

#: Planted deep enough that every grid point scans the full space.
_PASSWORD = "zzyzx"

#: Chunk sizes are gridded as space // (workers * divisor): a couple of
#: chunks per worker (coarse, low dispatch overhead) down to many small
#: chunks (fine-grained balance, more round trips).
DEFAULT_CHUNK_DIVISORS = (2, 4, 8, 16)

#: Chunks a worker executes per gather reply.
DEFAULT_GATHER_GRID = (1, 2, 4, 8)


def default_target() -> CrackTarget:
    """The benchmark family's standard MD5 mask-style search target."""
    return CrackTarget.from_password(
        _PASSWORD, ALPHA_LOWER, min_length=1, max_length=5
    )


@dataclass
class SweepPoint:
    """One measured grid point (best-of-``repeats`` timing)."""

    backend: str
    workers: int
    chunk_size: int
    gather_batch: int
    batch_size: int
    elapsed: float
    keys_per_second: float
    speedup_vs_serial: float


@dataclass
class SweepReport:
    """Everything the sweep measured, plus the per-shape winners."""

    host_cpus: int
    space: int
    batch_size: int
    repeats: int
    serial_keys_per_second: float
    points: list = field(default_factory=list)  #: every SweepPoint, in order
    best: dict = field(default_factory=dict)  #: (backend, workers) -> SweepPoint

    def to_document(self) -> dict:
        return {
            "host_cpus": self.host_cpus,
            "space": self.space,
            "batch_size": self.batch_size,
            "repeats": self.repeats,
            "serial_keys_per_second": self.serial_keys_per_second,
            "points": [asdict(p) for p in self.points],
            "best": {
                f"{backend}/{workers}": asdict(point)
                for (backend, workers), point in sorted(self.best.items())
            },
        }


def _time_run(backend, target, chunks, batch_size, gather_batch, repeats) -> float:
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        outcome = backend.run(
            target, chunks, batch_size=batch_size, gather_batch=gather_batch
        )
        elapsed = time.perf_counter() - started
        if outcome.unfinished:  # a broken run must never become a "best" config
            raise RuntimeError(f"sweep run left {len(outcome.unfinished)} chunks")
        if best is None or elapsed < best:
            best = elapsed
    return best if best is not None else 0.0


def sweep_dispatch(
    target: CrackTarget | None = None,
    space: int = 200_000,
    backends: tuple = ("thread", "process"),
    workers_grid: tuple | None = None,
    chunk_divisors: tuple = DEFAULT_CHUNK_DIVISORS,
    gather_grid: tuple = DEFAULT_GATHER_GRID,
    batch_size: int = 1 << 14,
    repeats: int = 2,
    progress=None,
) -> SweepReport:
    """Run the full grid; returns the measured report (nothing persisted).

    ``progress`` is an optional ``callable(str)`` fed one line per grid
    point — the CLI wires it to stderr so long sweeps narrate themselves.
    """
    cpus = os.cpu_count() or 1
    if workers_grid is None:
        # The shapes a host would plausibly run: half the cores, all but
        # one (the default), and all of them.
        candidates = {max(1, cpus // 2), max(1, cpus - 1), cpus}
        workers_grid = tuple(sorted(w for w in candidates if w > 1)) or (1,)
    if target is None:
        target = default_target()
    interval = Interval(0, min(space, target.space_size))
    say = progress if progress is not None else (lambda line: None)

    serial = resolve_backend("serial", tuning=False)
    serial_chunks = split_interval(interval, max(1, interval.size // 8))
    serial_elapsed = _time_run(serial, target, serial_chunks, batch_size, None, repeats)
    serial_rate = interval.size / serial_elapsed if serial_elapsed else 0.0
    say(f"serial baseline: {serial_rate:,.0f} keys/s over {interval.size:,} keys")

    report = SweepReport(
        host_cpus=cpus,
        space=interval.size,
        batch_size=batch_size,
        repeats=repeats,
        serial_keys_per_second=serial_rate,
    )
    for name in backends:
        for workers in workers_grid:
            backend = resolve_backend(name, workers=workers, tuning=False)
            try:
                # Prime the pool: start-up and first-span target install
                # are one-time costs, not per-point dispatch costs.
                backend.run(
                    target,
                    split_interval(Interval(0, min(2_000, interval.size)), 500),
                    batch_size=batch_size,
                )
                chunk_sizes = sorted(
                    {
                        max(batch_size // 4, interval.size // (workers * d))
                        for d in chunk_divisors
                    },
                    reverse=True,
                )
                for chunk_size in chunk_sizes:
                    chunks = split_interval(interval, chunk_size)
                    for gather_batch in gather_grid:
                        if gather_batch > max(1, len(chunks) // workers):
                            continue  # span wider than a worker's share: skewed
                        elapsed = _time_run(
                            backend, target, chunks, batch_size,
                            gather_batch, repeats,
                        )
                        rate = interval.size / elapsed if elapsed else 0.0
                        point = SweepPoint(
                            backend=name,
                            workers=backend.workers,
                            chunk_size=chunk_size,
                            gather_batch=gather_batch,
                            batch_size=batch_size,
                            elapsed=elapsed,
                            keys_per_second=rate,
                            speedup_vs_serial=rate / serial_rate if serial_rate else 0.0,
                        )
                        report.points.append(point)
                        key = (name, backend.workers)
                        champ = report.best.get(key)
                        if champ is None or rate > champ.keys_per_second:
                            report.best[key] = point
                        say(
                            f"{name} w={backend.workers} chunk={chunk_size} "
                            f"gather={gather_batch}: {rate:,.0f} keys/s "
                            f"({point.speedup_vs_serial:.2f}x serial)"
                        )
            finally:
                backend.close()
    return report


def apply_best(report: SweepReport, store: TuningStore) -> list[TuningEntry]:
    """Record the report's winners into *store* (and save if any changed).

    Returns the entries that actually improved on the stored bests.
    """
    changed: list[TuningEntry] = []
    for (backend, workers), point in sorted(report.best.items()):
        entry = make_entry(
            backend=backend,
            workers=workers,
            chunk_size=point.chunk_size,
            gather_batch=point.gather_batch,
            batch_size=point.batch_size,
            keys_per_second=point.keys_per_second,
            cpus=report.host_cpus,
        )
        if store.record(entry):
            changed.append(entry)
    if changed:
        store.save()
    return changed


def render_summary(report: SweepReport, store_path=None) -> str:
    """Markdown audit trail of the sweep, in optimization-log style."""
    lines = [
        "# Dispatch tuning sweep",
        "",
        f"- host CPUs: **{report.host_cpus}**",
        f"- keyspace per point: **{report.space:,}** candidates"
        f" (batch {report.batch_size}, best of {report.repeats} runs)",
        f"- serial baseline: **{report.serial_keys_per_second:,.0f} keys/s**",
    ]
    if store_path is not None:
        lines.append(f"- tuning store: `{store_path}`")
    lines += [
        "",
        "## Winning configurations",
        "",
        "| backend | workers | chunk_size | gather_batch | keys/s | vs serial |",
        "|---|---|---|---|---|---|",
    ]
    for (backend, workers), p in sorted(report.best.items()):
        lines.append(
            f"| {backend} | {workers} | {p.chunk_size} | {p.gather_batch} "
            f"| {p.keys_per_second:,.0f} | {p.speedup_vs_serial:.2f}x |"
        )
    lines += [
        "",
        "## Full grid",
        "",
        "| backend | workers | chunk_size | gather_batch | keys/s | vs serial |",
        "|---|---|---|---|---|---|",
    ]
    for p in report.points:
        lines.append(
            f"| {p.backend} | {p.workers} | {p.chunk_size} | {p.gather_batch} "
            f"| {p.keys_per_second:,.0f} | {p.speedup_vs_serial:.2f}x |"
        )
    lines += [
        "",
        "Re-run with `PYTHONPATH=src python benchmarks/sweep_dispatch.py` "
        "(or `repro tune`); `resolve_backend` picks the stored winners up "
        "automatically on the next run.",
        "",
    ]
    return "\n".join(lines)


__all__ = [
    "SweepPoint",
    "SweepReport",
    "apply_best",
    "default_target",
    "render_summary",
    "sweep_dispatch",
]
