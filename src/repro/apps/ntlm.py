"""NTLM password auditing: MD4 over UTF-16LE passwords.

Windows stores ``NTLM(password) = MD4(UTF-16LE(password))`` — no salt at
all, which made NTLM the juiciest auditing target of the GPU-cracking era
(every tool in the paper's comparison shipped NTLM kernels).  The UTF-16LE
encoding simply interleaves a zero byte after every ASCII character, so a
candidate batch expands with one NumPy insert and flows through the same
single-block engine.

The unsalted-ness is also why :class:`repro.apps.rainbow.RainbowTable`-style
precomputation devastated NTLM historically — this module plus that one
reproduce both sides of the §I argument on a real Windows-format hash.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.hashes.md4 import md4_digest, md4_digest_to_state
from repro.hashes.md4_reversal import MD4ReversedTarget, md4_early_filter
from repro.hashes.padding import Endian, pack_single_block
from repro.hashes.vec_md4 import md4_batch
from repro.keyspace import Charset, Interval, KeyMapping, KeyOrder
from repro.keyspace.vectorized import batch_keys


def ntlm_digest(password: str) -> bytes:
    """The 16-byte NTLM hash: MD4 of the UTF-16LE password."""
    return md4_digest(password.encode("utf-16-le"))


def ntlm_hex(password: str) -> str:
    """Hex NTLM hash, as dumped from a SAM database."""
    return ntlm_digest(password).hex()


def utf16le_expand(chars: np.ndarray) -> np.ndarray:
    """Interleave zero bytes: ``(batch, L)`` ASCII -> ``(batch, 2L)`` UTF-16LE."""
    if chars.ndim != 2:
        raise ValueError("chars must be a (batch, length) matrix")
    batch, length = chars.shape
    out = np.zeros((batch, 2 * length), dtype=np.uint8)
    out[:, 0::2] = chars
    return out


@dataclass(frozen=True)
class NTLMTarget:
    """An NTLM hash to invert over a charset window."""

    digest: bytes
    charset: Charset
    min_length: int = 1
    max_length: int = 8

    def __post_init__(self) -> None:
        if len(self.digest) != 16:
            raise ValueError("NTLM digest must be 16 bytes")
        if self.min_length < 0 or self.max_length < self.min_length:
            raise ValueError("invalid length window")
        if 2 * self.max_length > 55:
            raise ValueError(
                "UTF-16LE doubles the bytes: max_length capped at 27 for the "
                "single-block engine"
            )

    @classmethod
    def from_password(cls, password: str, charset: Charset, **window) -> "NTLMTarget":
        if not charset.is_valid_key(password):
            raise ValueError("password contains characters outside the charset")
        window.setdefault("min_length", 1)
        window.setdefault("max_length", max(4, len(password)))
        return cls(digest=ntlm_digest(password), charset=charset, **window)

    @property
    def mapping(self) -> KeyMapping:
        return KeyMapping(
            self.charset, self.min_length, self.max_length, KeyOrder.PREFIX_FASTEST
        )

    @property
    def space_size(self) -> int:
        return self.mapping.size

    def verify(self, key: str) -> bool:
        return ntlm_digest(key) == self.digest


@dataclass
class NTLMCrackStats:
    tested: int = 0
    elapsed: float = 0.0

    @property
    def mkeys_per_second(self) -> float:
        return self.tested / self.elapsed / 1e6 if self.elapsed > 0 else 0.0


def crack_ntlm(
    target: NTLMTarget,
    interval: Interval | None = None,
    batch_size: int = 1 << 14,
    stats: NTLMCrackStats | None = None,
    force_naive: bool = False,
) -> list[tuple[int, str]]:
    """Scan candidate ids against an NTLM hash with the vectorized engine.

    The fast path applies the MD4 digest reversal: UTF-16LE puts two
    password characters in message word 0, so aligned runs of ``N**2``
    prefix-fastest ids share all fixed words and each candidate costs only
    30 of MD4's 48 steps.  ``force_naive`` keeps the full-hash baseline
    reachable for the ablation tests.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    mapping = target.mapping
    interval = interval if interval is not None else Interval(0, mapping.size)
    if interval.stop > mapping.size:
        raise IndexError(f"interval {interval} outside space of {mapping.size}")
    want = np.array(md4_digest_to_state(target.digest), dtype=np.uint32)
    n = len(target.charset)
    started = time.perf_counter()
    found: list[tuple[int, str]] = []
    run_key: tuple[int, int] | None = None
    compiled: MD4ReversedTarget | None = None
    pos = interval.start
    while pos < interval.stop:
        count = min(batch_size, interval.stop - pos)
        for seg_start, length, chars in batch_keys(mapping, pos, count):
            blocks = pack_single_block(utf16le_expand(chars), Endian.LITTLE)
            if force_naive or length == 0:
                got = md4_batch(blocks)
                for lane in np.flatnonzero((got == want[None, :]).all(axis=1)):
                    found.append(
                        (seg_start + int(lane), chars[int(lane)].tobytes().decode("latin-1"))
                    )
                continue
            # Reversal fast path.  NTLM runs span only N**2 ids, so instead
            # of filtering run by run, revert the digest once per run
            # (cheap, 15 scalar steps) and filter the whole batch in one
            # 30-step vectorized pass against per-lane reverted targets.
            run_size = n ** min(2, length)
            step29 = np.empty(blocks.shape[0], dtype=np.uint32)
            offset = 0
            batch = blocks.shape[0]
            while offset < batch:
                index = seg_start + offset
                _, within = mapping.stratum(index)
                run_id = within // run_size
                span = min(batch - offset, run_size - (within % run_size))
                if (length, run_id) != run_key:
                    template = tuple(int(w) for w in blocks[offset])
                    compiled = MD4ReversedTarget.from_digest(target.digest, template)
                    run_key = (length, run_id)
                step29[offset : offset + span] = np.uint32(compiled.reversed_state[0])
                offset += span
            survivors = md4_early_filter(blocks, step29)
            if survivors.size:
                got = md4_batch(np.ascontiguousarray(blocks[survivors]))
                keep = (got == want[None, :]).all(axis=1)
                for lane in survivors[keep]:
                    key = chars[int(lane)].tobytes().decode("latin-1")
                    found.append((seg_start + int(lane), key))
        pos += count
    if stats is not None:
        stats.tested += interval.size
        stats.elapsed += time.perf_counter() - started
    found.sort()
    return found
