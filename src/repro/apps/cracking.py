"""Password cracking: the paper's case study application (Section IV).

A :class:`CrackTarget` describes the lookup problem — the digest, the
charset, the length window, optional salt bytes around the key — and
:func:`crack_interval` scans an interval of candidate ids with the
vectorized kernels:

* **Optimized path** (no salt prefix): candidates are enumerated in
  prefix-fastest order (the paper's mapping (4)), so every aligned run of
  ``N**4`` ids shares all message words except word 0.  The digest is
  reverted once per run and each candidate costs only the forward steps of
  the reversal kernel (:mod:`repro.hashes.reversal`).
* **Generic path** (salt prefix present, which shifts the key off word 0):
  full vectorized hash + digest compare.

Both paths really crack hashes — the examples and the cluster backend plant
passwords and recover them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.hashes.md5 import md5_digest, md5_digest_to_state
from repro.hashes.padding import Endian, pack_single_block
from repro.hashes.reversal import (
    MD5ReversedTarget,
    SHA1EarlyTarget,
    md5_search_block,
    md5_search_block_multi,
    md5_search_block_naive,
    sha1_search_block,
    sha1_search_block_naive,
)
from repro.hashes.sha1 import sha1_digest, sha1_digest_to_state
from repro.hashes.vec_md5 import MD5Scratch, md5_batch, md5_compress_batch_into
from repro.hashes.vec_sha1 import SHA1Scratch, sha1_batch, sha1_compress_batch_into
from repro.keyspace import Charset, Interval, KeyMapping, KeyOrder
from repro.keyspace.vectorized import BlockWorkspace, PackedSegment, batch_keys
from repro.kernels.variants import HashAlgorithm


@dataclass(frozen=True)
class CrackTarget:
    """A hash-reversal problem: find every key whose digest matches.

    ``prefix``/``suffix`` are salt bytes concatenated around the key before
    hashing; per Section I, salting defeats precomputed tables but "does not
    increment the search space since the salt is known by definition".
    """

    algorithm: HashAlgorithm
    digest: bytes
    charset: Charset
    min_length: int = 1
    max_length: int = 8
    prefix: bytes = b""
    suffix: bytes = b""

    def __post_init__(self) -> None:
        expected = {HashAlgorithm.MD5: 16, HashAlgorithm.SHA1: 20}[self.algorithm]
        if len(self.digest) != expected:
            raise ValueError(
                f"{self.algorithm.value} digest must be {expected} bytes, "
                f"got {len(self.digest)}"
            )
        if self.min_length < 0 or self.max_length < self.min_length:
            raise ValueError("invalid length window")
        if self.max_length > 20:
            raise ValueError("the packed kernels cap keys at 20 characters (Section IV-A)")
        if len(self.prefix) + self.max_length + len(self.suffix) > 55:
            raise ValueError("salted message exceeds the single-block capacity")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_password(
        cls,
        password: str,
        charset: Charset,
        algorithm: HashAlgorithm = HashAlgorithm.MD5,
        prefix: bytes = b"",
        suffix: bytes = b"",
        **window,
    ) -> "CrackTarget":
        """Build a target by hashing a known password (tests/examples)."""
        if not charset.is_valid_key(password):
            raise ValueError("password contains characters outside the charset")
        message = prefix + password.encode("latin-1") + suffix
        hasher = md5_digest if algorithm is HashAlgorithm.MD5 else sha1_digest
        window.setdefault("min_length", min(1, len(password)))
        window.setdefault("max_length", max(8, len(password)))
        return cls(
            algorithm=algorithm,
            digest=hasher(message),
            charset=charset,
            prefix=prefix,
            suffix=suffix,
            **window,
        )

    @property
    def endian(self) -> Endian:
        return Endian.LITTLE if self.algorithm is HashAlgorithm.MD5 else Endian.BIG

    @property
    def mapping(self) -> KeyMapping:
        """Prefix-fastest enumeration — the reversal-compatible order."""
        return KeyMapping(
            self.charset, self.min_length, self.max_length, KeyOrder.PREFIX_FASTEST
        )

    @property
    def space_size(self) -> int:
        """Total candidates (Equation (2))."""
        return self.mapping.size

    @property
    def uses_optimized_kernel(self) -> bool:
        """True when the digest-reversal fast path applies."""
        return not self.prefix

    def verify(self, key: str) -> bool:
        """Scalar test function ``C(f(i))``: does this key hash to the digest?"""
        message = self.prefix + key.encode("latin-1") + self.suffix
        hasher = md5_digest if self.algorithm is HashAlgorithm.MD5 else sha1_digest
        return hasher(message) == self.digest


def crack_interval(
    target: CrackTarget,
    interval: Interval,
    batch_size: int = 1 << 14,
    force_naive: bool = False,
) -> list[tuple[int, str]]:
    """Scan candidate ids ``[interval.start, interval.stop)``.

    Returns ``(index, key)`` pairs for every match, in id order.  This is
    the unit of work a dispatched node executes (Section III); the interval
    is the entire scatter payload.
    """
    engine = CrackEngine(target, batch_size=batch_size, force_naive=force_naive)
    return engine.search(interval)


@dataclass
class CrackStats:
    """Counters a node reports back with its gather message."""

    tested: int = 0
    batches: int = 0
    runs: int = 0
    elapsed: float = 0.0

    @property
    def mkeys_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.tested / self.elapsed / 1e6


class CrackEngine:
    """Reusable scanner holding per-run reversal state.

    Within an aligned run of ``N**4`` ids only message word 0 varies, so the
    packed template and the reverted digest are computed once per run and
    cached — the per-candidate work is exactly the optimized kernel's
    forward steps.

    All per-batch storage (packed blocks, hash temporaries, compare masks)
    is preallocated at ``batch_size`` capacity and reused for the life of
    the engine; the final partial batch of an interval scans through
    *views* of the same buffers, so steady-state scanning is
    allocation-free.
    """

    def __init__(
        self,
        target: CrackTarget,
        batch_size: int = 1 << 14,
        force_naive: bool = False,
        recorder=None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.target = target
        self.batch_size = batch_size
        self.force_naive = force_naive
        #: Optional :class:`repro.obs.Recorder`; counters are emitted once
        #: per :meth:`search` call (never inside the batch loop), so the
        #: steady-state scan stays allocation-free whether or not a
        #: recorder is attached — and costs nothing at all without one.
        self.recorder = recorder
        self.stats = CrackStats()
        self._run_key: tuple[int, int] | None = None
        self._template: tuple | None = None
        self._compiled = None  # MD5ReversedTarget / SHA1EarlyTarget
        self._workspace = BlockWorkspace(batch_size, max_length=target.max_length)
        if target.algorithm is HashAlgorithm.MD5:
            self._scratch = MD5Scratch(batch_size)
            self._compress = md5_compress_batch_into
            want = md5_digest_to_state(target.digest)
        else:
            self._scratch = SHA1Scratch(batch_size)
            self._compress = sha1_compress_batch_into
            want = sha1_digest_to_state(target.digest)
        self._want = tuple(np.uint32(w) for w in want)
        self._match = np.empty(batch_size, dtype=bool)
        self._match_tmp = np.empty(batch_size, dtype=bool)
        self._first_words = np.empty(batch_size, dtype=np.uint32)

    # ------------------------------------------------------------------ #
    def search(self, interval: Interval) -> list[tuple[int, str]]:
        """Scan an interval; returns sorted ``(index, key)`` matches."""
        mapping = self.target.mapping
        if interval.stop > mapping.size:
            raise IndexError(
                f"interval {interval} outside key space of {mapping.size} candidates"
            )
        started = time.perf_counter()
        found: list[tuple[int, str]] = []
        endian_value = self.target.endian.value
        pos = interval.start
        while pos < interval.stop:
            count = min(self.batch_size, interval.stop - pos)
            for segment in self._workspace.fill(
                mapping, pos, count, endian_value, self.target.prefix, self.target.suffix
            ):
                found.extend(self._scan_segment(segment))
            pos += count
            self.stats.batches += 1
            self.stats.tested += count
        elapsed = time.perf_counter() - started
        self.stats.elapsed += elapsed
        if self.recorder is not None:
            from repro.obs.schema import MetricNames

            self.recorder.span_record(MetricNames.ENGINE_SEARCH, elapsed)
            self.recorder.counter(MetricNames.ENGINE_TESTED, interval.size)
            self.recorder.counter(
                MetricNames.ENGINE_BATCHES, -(-interval.size // self.batch_size)
            )
            if found:
                self.recorder.counter(MetricNames.ENGINE_HITS, len(found))
        return found

    def search_all(self) -> list[tuple[int, str]]:
        """Scan the entire key space (small spaces only, obviously)."""
        return self.search(Interval(0, self.target.mapping.size))

    # ------------------------------------------------------------------ #
    def _scan_segment(self, segment: PackedSegment) -> list:
        use_fast = self.target.uses_optimized_kernel and not self.force_naive
        if use_fast:
            hits = self._scan_fast(segment)
        else:
            hits = self._scan_naive(segment.blocks)
        return [(segment.start + int(lane), segment.key_at(int(lane))) for lane in hits]

    def _scan_naive(self, blocks: np.ndarray) -> np.ndarray:
        """Full-hash compare (the Cryptohaze-style baseline kernel)."""
        regs = self._compress(blocks, self._scratch)
        batch = blocks.shape[0]
        match = self._match[:batch]
        tmp = self._match_tmp[:batch]
        np.equal(regs[0], self._want[0], out=match)
        for reg, want in zip(regs[1:], self._want[1:]):
            np.equal(reg, want, out=tmp)
            np.logical_and(match, tmp, out=match)
        return np.flatnonzero(match)

    def _scan_fast(self, segment: PackedSegment) -> np.ndarray:
        """Reversal kernel: only word 0 varies within an aligned run.

        Segments from :meth:`BlockWorkspace.fill` never span a run boundary
        unless the run is smaller than the batch; runs have size
        ``N**min(4, length)`` in prefix-fastest order, so we split the
        segment at run boundaries and reuse the compiled target within each.
        """
        mapping = self.target.mapping
        n = len(self.target.charset)
        length = segment.length
        blocks = segment.blocks
        run_size = n ** min(4, length) if length else 1
        hits: list[np.ndarray] = []
        offset = 0
        batch = blocks.shape[0]
        while offset < batch:
            index = segment.start + offset
            _, within = mapping.stratum(index)
            run_id = within // run_size
            span = min(batch - offset, run_size - (within % run_size))
            window = blocks[offset : offset + span]
            compiled = self._compiled_for_run(length, run_id, window[0])
            first_words = self._first_words[offset : offset + span]
            np.copyto(first_words, window[:, 0])
            if self.target.algorithm is HashAlgorithm.MD5:
                lanes = md5_search_block(first_words, compiled)
            else:
                lanes = sha1_search_block(first_words, compiled)
            if lanes.size:
                hits.append(lanes + offset)
            offset += span
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(hits)

    # ------------------------------------------------------------------ #
    def _compiled_for_run(self, length: int, run_id: int, template_row: np.ndarray):
        """Revert the digest once per (length, run) and cache the result."""
        key = (length, run_id)
        if key != self._run_key:
            template = tuple(int(w) for w in template_row)
            if self.target.algorithm is HashAlgorithm.MD5:
                self._compiled = MD5ReversedTarget.from_digest(self.target.digest, template)
            else:
                self._compiled = SHA1EarlyTarget.from_digest(self.target.digest, template)
            self._run_key = key
            self.stats.runs += 1
        return self._compiled


def crack_interval_multi(
    targets: list[CrackTarget],
    interval: Interval,
    batch_size: int = 1 << 14,
) -> list[tuple[int, str, int]]:
    """Scan one interval against many MD5 digests in shared forward passes.

    The auditing-session optimization (see
    :func:`repro.hashes.reversal.md5_search_block_multi`): the hash work is
    paid once per candidate regardless of how many digests are being
    audited.  All targets must describe the *same* search space — same
    charset, length window, suffix salt, no prefix salt, MD5 — because the
    candidates and fixed message words are shared.

    Returns sorted ``(index, key, target_index)`` triples.
    """
    if not targets:
        return []
    head = targets[0]
    for t in targets[1:]:
        same_space = (
            t.algorithm is head.algorithm
            and t.charset == head.charset
            and (t.min_length, t.max_length) == (head.min_length, head.max_length)
            and t.suffix == head.suffix
            and t.prefix == head.prefix
        )
        if not same_space:
            raise ValueError("multi-target crack requires identical search spaces")
    if head.algorithm is not HashAlgorithm.MD5 or head.prefix:
        raise ValueError(
            "the shared-scan fast path supports unsalted-prefix MD5 targets; "
            "audit other targets individually"
        )
    mapping = head.mapping
    if interval.stop > mapping.size:
        raise IndexError(f"interval {interval} outside key space of {mapping.size}")
    n = len(head.charset)
    found: list[tuple[int, str, int]] = []
    run_key: tuple[int, int] | None = None
    compiled: list[MD5ReversedTarget] = []
    pos = interval.start
    while pos < interval.stop:
        count = min(batch_size, interval.stop - pos)
        for seg_start, length, chars in batch_keys(mapping, pos, count):
            blocks = pack_single_block(chars, head.endian, suffix=head.suffix)
            run_size = n ** min(4, length) if length else 1
            offset = 0
            batch = blocks.shape[0]
            while offset < batch:
                index = seg_start + offset
                _, within = mapping.stratum(index)
                run_id = within // run_size
                span = min(batch - offset, run_size - (within % run_size))
                if (length, run_id) != run_key:
                    template = tuple(int(w) for w in blocks[offset])
                    compiled = [
                        MD5ReversedTarget.from_digest(t.digest, template) for t in targets
                    ]
                    run_key = (length, run_id)
                window = np.ascontiguousarray(blocks[offset : offset + span, 0])
                for lane, t_idx in md5_search_block_multi(window, compiled):
                    key = chars[offset + lane].tobytes().decode("latin-1")
                    found.append((seg_start + offset + lane, key, t_idx))
                offset += span
        pos += count
    found.sort()
    return found
