"""Mask-based cracking: policy-shaped brute force.

Combines :class:`repro.keyspace.masks.MaskSpace` with the vectorized hash
engines: the audit expresses the password *policy* as a mask (e.g.
``?u?l?l?l?d?d`` — capital, three lower, two digits) and scans exactly that
space.  Masks integrate with the dispatch machinery unchanged: the space is
a bijection over ``[0, size)``, so intervals scatter exactly as in the
uniform case.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.hashes.md5 import md5_digest, md5_digest_to_state
from repro.hashes.padding import Endian, pack_single_block
from repro.hashes.sha1 import sha1_digest, sha1_digest_to_state
from repro.hashes.vec_md5 import md5_batch
from repro.hashes.vec_sha1 import sha1_batch
from repro.keyspace import Interval
from repro.keyspace.masks import MaskSpace
from repro.kernels.variants import HashAlgorithm


@dataclass(frozen=True)
class MaskTarget:
    """A digest to invert over a mask-shaped key space."""

    algorithm: HashAlgorithm
    digest: bytes
    space: MaskSpace
    prefix: bytes = b""
    suffix: bytes = b""

    def __post_init__(self) -> None:
        expected = {HashAlgorithm.MD5: 16, HashAlgorithm.SHA1: 20}[self.algorithm]
        if len(self.digest) != expected:
            raise ValueError(f"digest must be {expected} bytes")
        total = len(self.prefix) + self.space.length + len(self.suffix)
        if total > 55:
            raise ValueError("salted message exceeds the single-block capacity")

    @classmethod
    def from_password(
        cls,
        password: str,
        mask: str,
        algorithm: HashAlgorithm = HashAlgorithm.MD5,
        prefix: bytes = b"",
        suffix: bytes = b"",
    ) -> "MaskTarget":
        """Hash a known password and check it actually fits the mask."""
        space = MaskSpace.from_mask(mask)
        space.index_of(password)  # raises if the password violates the mask
        hasher = md5_digest if algorithm is HashAlgorithm.MD5 else sha1_digest
        message = prefix + password.encode("latin-1") + suffix
        return cls(algorithm, hasher(message), space, prefix, suffix)

    @property
    def endian(self) -> Endian:
        return Endian.LITTLE if self.algorithm is HashAlgorithm.MD5 else Endian.BIG

    def verify(self, key: str) -> bool:
        hasher = md5_digest if self.algorithm is HashAlgorithm.MD5 else sha1_digest
        return hasher(self.prefix + key.encode("latin-1") + self.suffix) == self.digest


@dataclass
class MaskCrackStats:
    tested: int = 0
    elapsed: float = 0.0

    @property
    def mkeys_per_second(self) -> float:
        return self.tested / self.elapsed / 1e6 if self.elapsed > 0 else 0.0


def crack_mask(
    target: MaskTarget,
    interval: Interval | None = None,
    batch_size: int = 1 << 14,
    stats: MaskCrackStats | None = None,
) -> list[tuple[int, str]]:
    """Scan a mask-space interval with the vectorized engine.

    Returns sorted ``(index, key)`` matches; this is the per-node unit of
    work for mask dispatches (same contract as
    :func:`repro.apps.cracking.crack_interval`).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    space = target.space
    interval = interval if interval is not None else Interval(0, space.size)
    if interval.stop > space.size:
        raise IndexError(f"interval {interval} outside mask space of {space.size}")
    if target.algorithm is HashAlgorithm.MD5:
        hash_batch = md5_batch
        want = np.array(md5_digest_to_state(target.digest), dtype=np.uint32)
    else:
        hash_batch = sha1_batch
        want = np.array(sha1_digest_to_state(target.digest), dtype=np.uint32)
    started = time.perf_counter()
    found: list[tuple[int, str]] = []
    pos = interval.start
    while pos < interval.stop:
        count = min(batch_size, interval.stop - pos)
        chars = space.batch_keys(pos, count)
        blocks = pack_single_block(chars, target.endian, target.prefix, target.suffix)
        got = hash_batch(blocks)
        for lane in np.flatnonzero((got == want[None, :]).all(axis=1)):
            found.append((pos + int(lane), chars[int(lane)].tobytes().decode("latin-1")))
        pos += count
    if stats is not None:
        stats.tested += interval.size
        stats.elapsed += time.perf_counter() - started
    return found
