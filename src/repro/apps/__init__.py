"""Applications built on the exhaustive-search pattern.

* :mod:`repro.apps.cracking` — password cracking for MD5/SHA1 (the paper's
  case study), including salted digests and the optimized reversal kernels;
* :mod:`repro.apps.mining` — Bitcoin-style SHA256 nonce mining (the
  introduction's second motivating workload);
* :mod:`repro.apps.audit` — auditing sessions over many password hashes;
* :mod:`repro.apps.dictionary` — dictionary and hybrid attack generators
  (the non-brute-force lookup strategies of Section I).
"""

from repro.apps.cracking import (
    CrackTarget,
    crack_interval,
    crack_interval_multi,
    CrackEngine,
)
from repro.apps.mining import MiningJob, mine_interval, leading_zero_bits
from repro.apps.audit import AuditReport, AuditSession
from repro.apps.dictionary import DictionaryAttack, HybridAttack, mangle_word
from repro.apps.markov import MarkovAttack, MarkovModel
from repro.apps.maskcrack import MaskTarget, crack_mask
from repro.apps.ntlm import NTLMTarget, crack_ntlm, ntlm_digest, ntlm_hex
from repro.apps.rainbow import LookupTable, RainbowTable

__all__ = [
    "CrackTarget",
    "crack_interval",
    "crack_interval_multi",
    "CrackEngine",
    "MiningJob",
    "mine_interval",
    "leading_zero_bits",
    "AuditReport",
    "AuditSession",
    "DictionaryAttack",
    "HybridAttack",
    "mangle_word",
    "MarkovAttack",
    "MarkovModel",
    "MaskTarget",
    "crack_mask",
    "NTLMTarget",
    "crack_ntlm",
    "ntlm_digest",
    "ntlm_hex",
    "LookupTable",
    "RainbowTable",
]
