"""Rainbow tables — the time-memory tradeoff the paper's Section I surveys.

The paper lists four hash-lookup strategies: brute force, dictionaries,
lookup tables and rainbow tables, and observes that "the last two methods
are completely useless when the key is concatenated with a random string in
a technique called salting".  This module implements both table methods so
that claim can be *demonstrated* rather than asserted:

* :class:`LookupTable` — the naive full key→digest map (exact, but memory
  grows with the space);
* :class:`RainbowTable` — Oechslin-style chains: each chain alternates the
  hash with a position-dependent *reduction* function mapping digests back
  into the key space; only (start, end) pairs are stored, compressing the
  information about solutions "in less space ... but a certain amount of
  computation is needed to lookup a key".

Both the offline chain generation and the online lookup are vectorized
with the same NumPy SIMT engines the cracking kernels use: all chains (or
all candidate chain positions) advance in lockstep, one batched hash per
step — rainbow tables were in fact an early GPU workload for exactly this
reason.

Both are precomputation attacks: they are built for one exact message
layout.  A single salt byte changes every digest and voids the entire
precomputation — while the brute-force engines of
:mod:`repro.apps.cracking` just put the salt in the template and carry on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hashes.md5 import md5_digest
from repro.hashes.padding import Endian, pack_single_block
from repro.hashes.sha1 import sha1_digest
from repro.hashes.vec_md5 import md5_batch
from repro.hashes.vec_sha1 import sha1_batch
from repro.keyspace import Charset, KeyMapping, KeyOrder
from repro.keyspace.vectorized import batch_keys
from repro.kernels.variants import HashAlgorithm

_MASK64 = (1 << 64) - 1

#: Golden-ratio multiplier decorrelating the per-position reductions.
_POSITION_SALT = 0x9E3779B97F4A7C15


def _hasher(algorithm: HashAlgorithm):
    return md5_digest if algorithm is HashAlgorithm.MD5 else sha1_digest


@dataclass
class LookupTable:
    """The paper's "lookup table": a precomputed digest -> key map.

    "Such method becomes quickly unmanageable for the amount of memory
    required" — :attr:`memory_bytes` makes that concrete.  Building hashes
    the whole space through the vectorized engine.
    """

    charset: Charset
    key_length: int
    algorithm: HashAlgorithm = HashAlgorithm.MD5
    batch_size: int = 1 << 14
    _table: dict = field(default_factory=dict, repr=False)

    def build(self) -> "LookupTable":
        """Hash the entire fixed-length key space into the map (batched)."""
        mapping = KeyMapping(self.charset, self.key_length, self.key_length)
        endian = Endian.LITTLE if self.algorithm is HashAlgorithm.MD5 else Endian.BIG
        hash_batch = md5_batch if self.algorithm is HashAlgorithm.MD5 else sha1_batch
        word_order = "<u4" if endian is Endian.LITTLE else ">u4"
        pos = 0
        while pos < mapping.size:
            count = min(self.batch_size, mapping.size - pos)
            for _, _, chars in batch_keys(mapping, pos, count):
                digests = hash_batch(pack_single_block(chars, endian))
                raw = digests.astype(word_order).tobytes()
                width = digests.shape[1] * 4
                for i in range(chars.shape[0]):
                    self._table[raw[i * width : (i + 1) * width]] = (
                        chars[i].tobytes().decode("latin-1")
                    )
            pos += count
        return self

    def lookup(self, digest: bytes) -> str | None:
        """O(1) exact lookup."""
        return self._table.get(digest)

    @property
    def entries(self) -> int:
        return len(self._table)

    @property
    def memory_bytes(self) -> int:
        """Payload bytes (digest + key per entry), ignoring dict overhead."""
        digest_len = 16 if self.algorithm is HashAlgorithm.MD5 else 20
        return self.entries * (digest_len + self.key_length)


class RainbowTable:
    """Oechslin rainbow chains over a fixed-length key space."""

    def __init__(
        self,
        charset: Charset,
        key_length: int,
        chain_length: int = 100,
        n_chains: int = 1000,
        algorithm: HashAlgorithm = HashAlgorithm.MD5,
        seed: int = 1,
    ) -> None:
        if chain_length < 1 or n_chains < 1:
            raise ValueError("chain_length and n_chains must be positive")
        if key_length < 1:
            raise ValueError("key_length must be positive")
        self.charset = charset
        self.key_length = key_length
        self.chain_length = chain_length
        self.n_chains = n_chains
        self.algorithm = algorithm
        self.seed = seed
        self.mapping = KeyMapping(charset, key_length, key_length, KeyOrder.SUFFIX_FASTEST)
        self._hash = _hasher(algorithm)
        self._endian = Endian.LITTLE if algorithm is HashAlgorithm.MD5 else Endian.BIG
        self._hash_batch = md5_batch if algorithm is HashAlgorithm.MD5 else sha1_batch
        #: end key -> start key; chain merges overwrite (lost coverage, as
        #: in real rainbow tables).
        self._table: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Reduction functions (scalar reference + vectorized batch form)
    # ------------------------------------------------------------------ #
    def reduce(self, digest: bytes, position: int) -> str:
        """Position-dependent reduction: digest -> key.

        Making the reduction differ per chain position is the rainbow
        innovation: merging chains must collide at the *same* position, so
        merges are far rarer than in classic Hellman tables.  Arithmetic is
        modulo 2^64 so the scalar and vectorized paths agree exactly.
        """
        value = (int.from_bytes(digest[:8], "little") + position * _POSITION_SALT) & _MASK64
        return self.mapping.key_at(value % self.mapping.size)

    def _reduce_batch(self, digests: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Vector reduction: ``(B, words)`` digests -> ``(B, L)`` key bytes."""
        if self._endian is Endian.LITTLE:
            w0 = digests[:, 0].astype(np.uint64)
            w1 = digests[:, 1].astype(np.uint64)
        else:
            # Big-endian serialization: reading digest[:8] little-endian
            # means byte-reversing each 32-bit word before combining.
            w0 = digests[:, 0].astype(np.uint32).byteswap().astype(np.uint64)
            w1 = digests[:, 1].astype(np.uint32).byteswap().astype(np.uint64)
        value = w0 | (w1 << np.uint64(32))
        value = value + positions.astype(np.uint64) * np.uint64(_POSITION_SALT)
        within = value % np.uint64(self.mapping.size)
        return self._digits_to_chars(within)

    def _digits_to_chars(self, within: np.ndarray) -> np.ndarray:
        """Within-stratum indices -> key byte matrix (suffix-fastest)."""
        n = np.uint64(len(self.charset))
        out = np.empty((within.shape[0], self.key_length), dtype=np.uint64)
        value = within.copy()
        for pos in range(self.key_length - 1, -1, -1):
            out[:, pos] = value % n
            value //= n
        return self.charset.byte_table[out.astype(np.int64)]

    def _step_batch(self, chars: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """One chain step for every lane: hash then per-lane reduction."""
        digests = self._hash_batch(pack_single_block(chars, self._endian))
        return self._reduce_batch(digests, positions)

    def _step(self, key: str, position: int) -> str:
        """Scalar reference step (tests pin it against the batch form)."""
        return self.reduce(self._hash(key.encode("latin-1")), position)

    # ------------------------------------------------------------------ #
    def build(self) -> "RainbowTable":
        """Generate all chains in lockstep (the expensive offline phase)."""
        starts = np.array(
            [
                (self.seed + i * 0x5DEECE66D) % self.mapping.size
                for i in range(self.n_chains)
            ],
            dtype=object,
        )
        chars = self._digits_to_chars(
            np.array([int(s) for s in starts], dtype=np.uint64)
        )
        start_keys = [row.tobytes().decode("latin-1") for row in chars]
        for position in range(self.chain_length):
            positions = np.full(chars.shape[0], position, dtype=np.uint64)
            chars = self._step_batch(chars, positions)
        for row, start in zip(chars, start_keys):
            self._table[row.tobytes().decode("latin-1")] = start
        return self

    # ------------------------------------------------------------------ #
    def lookup(self, digest: bytes) -> str | None:
        """Online phase: locate the chain, replay it, verify the preimage.

        All ``chain_length`` possible positions of the digest are walked
        *simultaneously*: lane ``p`` assumes the digest sits at position
        ``p`` and fast-forwards to the chain end; finished lanes are frozen
        while the rest advance.  End-point hits are replayed from their
        stored start and verified, so a non-``None`` result is always a
        true preimage.
        """
        length = self.chain_length
        # Lane p starts with reduce(digest, p) and then applies steps at
        # positions p+1 .. length-1.
        lanes = self._reduce_batch(
            np.tile(self._digest_words(digest), (length, 1)),
            np.arange(length, dtype=np.uint64),
        )
        next_position = np.arange(1, length + 1, dtype=np.uint64)
        for _ in range(length - 1):
            active = next_position < length
            if not active.any():
                break
            stepped = self._step_batch(lanes[active], next_position[active])
            lanes[active] = stepped
            next_position[active] += 1
        # Most recent positions first: shorter suffixes are checked first,
        # matching the classic lookup order.  All end-point hits (including
        # false alarms from end collisions) are replayed as one batch.
        hits: list[tuple[int, str]] = []
        for p in range(length - 1, -1, -1):
            start = self._table.get(lanes[p].tobytes().decode("latin-1"))
            if start is not None:
                hits.append((p, start))
        if not hits:
            return None
        candidates = self._replay_batch(hits)
        for candidate in candidates:
            if self._hash(candidate.encode("latin-1")) == digest:
                return candidate
        return None

    def _digest_words(self, digest: bytes) -> np.ndarray:
        order = "<u4" if self._endian is Endian.LITTLE else ">u4"
        return np.frombuffer(digest, dtype=order).astype(np.uint32)

    def _replay(self, start: str, position: int) -> str:
        """Walk a chain from its start to the key at *position* (scalar)."""
        key = start
        for p in range(position):
            key = self._step(key, p)
        return key

    def _replay_batch(self, hits: list[tuple[int, str]]) -> list[str]:
        """Replay many chains at once; returns candidates in *hits* order.

        Lane ``i`` walks from its start to position ``hits[i][0]``; lanes
        freeze as they arrive while deeper ones continue.
        """
        targets = np.array([p for p, _ in hits], dtype=np.uint64)
        lanes = np.stack(
            [
                np.frombuffer(start.encode("latin-1"), dtype=np.uint8)
                for _, start in hits
            ]
        )
        max_target = int(targets.max())
        for position in range(max_target):
            active = targets > position
            if not active.any():
                break
            positions = np.full(int(active.sum()), position, dtype=np.uint64)
            lanes[active] = self._step_batch(lanes[active], positions)
        return [row.tobytes().decode("latin-1") for row in lanes]

    # ------------------------------------------------------------------ #
    @property
    def stored_chains(self) -> int:
        """Distinct end points actually stored (merges collapse chains)."""
        return len(self._table)

    @property
    def memory_bytes(self) -> int:
        """Payload bytes: two keys per chain — the time-memory tradeoff."""
        return self.stored_chains * 2 * self.key_length

    def coverage_sample(self, sample: int = 200) -> float:
        """Measured fraction of the key space this table can invert."""
        if sample <= 0:
            raise ValueError("sample must be positive")
        stride = max(1, self.mapping.size // sample)
        hits = 0
        total = 0
        for index in range(0, self.mapping.size, stride):
            key = self.mapping.key_at(index)
            total += 1
            if self.lookup(self._hash(key.encode("latin-1"))) is not None:
                hits += 1
        return hits / total
