"""Dictionary and hybrid attacks (the non-brute-force strategies of §I).

"The number of attempts can be drastically reduced if a *dictionary* of
recurring words is involved ... A hybrid technique that uses a dictionary
along with a list of common password patterns provides a good way to guess
longer passwords."

These generators plug into the same exhaustive-search pattern: they define a
bijection from ``[0, size)`` onto a candidate set (here a finite, explicit
one) and the usual test function — the dispatcher does not care whether the
space is base-N strings or mangled dictionary words, it just ships index
intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.apps.cracking import CrackTarget
from repro.keyspace import Interval

#: Common mangling rules, in the spirit of John the Ripper's rule engine.
MANGLE_RULES: tuple[str, ...] = (
    "identity",
    "capitalize",
    "upper",
    "reverse",
    "leet",
    "append_digit",
    "prepend_digit",
)

_LEET = str.maketrans({"a": "4", "e": "3", "i": "1", "o": "0", "s": "5", "t": "7"})


def mangle_word(word: str, rule: str, digit: int = 0) -> str:
    """Apply one mangling rule to a dictionary word."""
    if rule == "identity":
        return word
    if rule == "capitalize":
        return word.capitalize()
    if rule == "upper":
        return word.upper()
    if rule == "reverse":
        return word[::-1]
    if rule == "leet":
        return word.translate(_LEET)
    if rule == "append_digit":
        return f"{word}{digit}"
    if rule == "prepend_digit":
        return f"{digit}{word}"
    raise ValueError(f"unknown mangling rule {rule!r}")


@dataclass(frozen=True)
class DictionaryAttack:
    """Plain dictionary attack: candidates are the words themselves."""

    words: tuple

    def __post_init__(self) -> None:
        if not self.words:
            raise ValueError("dictionary must be non-empty")

    @property
    def size(self) -> int:
        return len(self.words)

    def candidate(self, index: int) -> str:
        """The bijection ``f(i)`` over the dictionary."""
        if not 0 <= index < self.size:
            raise IndexError(index)
        return self.words[index]

    def iter_interval(self, interval: Interval) -> Iterator[tuple[int, str]]:
        for i in range(interval.start, min(interval.stop, self.size)):
            yield i, self.candidate(i)

    def search(self, target: CrackTarget, interval: Interval | None = None) -> list[tuple[int, str]]:
        """Test every candidate in the interval against a target digest."""
        interval = interval or Interval(0, self.size)
        return [
            (i, word)
            for i, word in self.iter_interval(interval)
            if target.verify(word)
        ]


@dataclass(frozen=True)
class HybridAttack:
    """Dictionary x mangling-rules x digits product space.

    Enumerated lexicographically as ``(word, rule, digit)`` so the space
    partitions into clean intervals: ``f(i)`` unpacks the mixed-radix index.
    Digit positions only matter for the two digit rules but are enumerated
    uniformly to keep the bijection trivial (the paper's pattern permits
    ``f`` to favour likely candidates; here we favour simplicity).
    """

    words: tuple
    rules: tuple = MANGLE_RULES
    digits: tuple = tuple(range(10))

    def __post_init__(self) -> None:
        if not self.words or not self.rules:
            raise ValueError("hybrid attack needs words and rules")

    @property
    def size(self) -> int:
        return len(self.words) * len(self.rules) * len(self.digits)

    def candidate(self, index: int) -> str:
        """The bijection ``f(i)`` over the mixed-radix product space."""
        if not 0 <= index < self.size:
            raise IndexError(index)
        index, digit_i = divmod(index, len(self.digits))
        word_i, rule_i = divmod(index, len(self.rules))
        return mangle_word(self.words[word_i], self.rules[rule_i], self.digits[digit_i])

    def iter_interval(self, interval: Interval) -> Iterator[tuple[int, str]]:
        for i in range(interval.start, min(interval.stop, self.size)):
            yield i, self.candidate(i)

    def search(self, target: CrackTarget, interval: Interval | None = None) -> list[tuple[int, str]]:
        """Test every mangled candidate in the interval against a digest."""
        interval = interval or Interval(0, self.size)
        seen: set[str] = set()
        out = []
        for i, word in self.iter_interval(interval):
            if word in seen:
                continue
            seen.add(word)
            if target.verify(word):
                out.append((i, word))
        return out
