"""Password auditing sessions.

Section I: "In some working environments, it is a standard procedure to make
periodic cracking tests, called *auditing* sessions, to assess the
reliability of the employees' passwords."  An :class:`AuditSession` takes a
set of account digests and runs the cracking engine over a shared search
space, reporting which accounts fell and how quickly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.apps.cracking import CrackEngine, CrackTarget, crack_interval_multi
from repro.keyspace import Charset, Interval
from repro.kernels.variants import HashAlgorithm


@dataclass(frozen=True)
class AuditEntry:
    """One account in the audit: a label and its stored digest."""

    account: str
    digest: bytes
    #: Per-account salt, as stored alongside the hash in the credential DB.
    prefix: bytes = b""
    suffix: bytes = b""


@dataclass
class AuditFinding:
    """A cracked account."""

    account: str
    password: str
    candidates_tested: int
    elapsed: float


@dataclass
class AuditReport:
    """Outcome of an auditing session."""

    findings: list[AuditFinding] = field(default_factory=list)
    accounts_total: int = 0
    candidates_tested: int = 0
    elapsed: float = 0.0

    @property
    def cracked(self) -> int:
        return len(self.findings)

    @property
    def survival_rate(self) -> float:
        """Fraction of accounts the brute-force budget did not crack."""
        if self.accounts_total == 0:
            return 1.0
        return 1.0 - self.cracked / self.accounts_total

    def password_of(self, account: str) -> str | None:
        for finding in self.findings:
            if finding.account == account:
                return finding.password
        return None


class AuditSession:
    """Brute-force audit of many accounts over one search space.

    Because salts differ per account, each account is an independent target
    (precomputed tables are useless — the very point of salting); the
    session shares the space description and budget across them.
    """

    def __init__(
        self,
        entries: list[AuditEntry],
        charset: Charset,
        algorithm: HashAlgorithm = HashAlgorithm.MD5,
        min_length: int = 1,
        max_length: int = 4,
        batch_size: int = 1 << 14,
    ) -> None:
        if not entries:
            raise ValueError("audit needs at least one account")
        names = [e.account for e in entries]
        if len(set(names)) != len(names):
            raise ValueError("duplicate account labels")
        self.entries = list(entries)
        self.charset = charset
        self.algorithm = algorithm
        self.min_length = min_length
        self.max_length = max_length
        self.batch_size = batch_size

    def target_for(self, entry: AuditEntry) -> CrackTarget:
        """The cracking target of one account."""
        return CrackTarget(
            algorithm=self.algorithm,
            digest=entry.digest,
            charset=self.charset,
            min_length=self.min_length,
            max_length=self.max_length,
            prefix=entry.prefix,
            suffix=entry.suffix,
        )

    def run_shared(self, budget: int | None = None) -> AuditReport:
        """Audit all unsalted accounts in one shared scan.

        The multi-target optimization: accounts without per-account salts
        share the *same* candidate stream, so the hash work is paid once
        for the whole session (one 46-step forward pass per candidate plus
        one register compare per digest) instead of once per account.
        Salted accounts are audited individually afterwards, since their
        digests live in different message templates.
        """
        shared = [
            e for e in self.entries if not e.prefix and not e.suffix
        ]
        salted = [e for e in self.entries if e.prefix or e.suffix]
        if self.algorithm is not HashAlgorithm.MD5:
            raise ValueError("the shared scan supports MD5 sessions")
        report = AuditReport(accounts_total=len(self.entries))
        started = time.perf_counter()
        if shared:
            targets = [self.target_for(e) for e in shared]
            space = targets[0].space_size
            stop = space if budget is None else min(budget, space)
            t0 = time.perf_counter()
            triples = crack_interval_multi(
                targets, Interval(0, stop), batch_size=self.batch_size
            )
            elapsed = time.perf_counter() - t0
            report.candidates_tested += stop
            seen: set[int] = set()
            for _, password, t_idx in triples:
                if t_idx in seen:
                    continue  # report the first (lowest-id) preimage
                seen.add(t_idx)
                report.findings.append(
                    AuditFinding(shared[t_idx].account, password, stop, elapsed)
                )
        for entry in salted:
            sub = AuditSession(
                [entry],
                self.charset,
                self.algorithm,
                self.min_length,
                self.max_length,
                self.batch_size,
            ).run(budget)
            report.candidates_tested += sub.candidates_tested
            report.findings.extend(sub.findings)
        report.elapsed = time.perf_counter() - started
        return report

    def run(self, budget: int | None = None) -> AuditReport:
        """Audit every account, testing at most *budget* candidates each.

        ``budget=None`` exhausts the space — only sensible for the small
        windows an auditing policy actually checks (weak short passwords).
        """
        report = AuditReport(accounts_total=len(self.entries))
        started = time.perf_counter()
        for entry in self.entries:
            target = self.target_for(entry)
            space = target.space_size
            stop = space if budget is None else min(budget, space)
            engine = CrackEngine(target, batch_size=self.batch_size)
            t0 = time.perf_counter()
            matches = engine.search(Interval(0, stop))
            elapsed = time.perf_counter() - t0
            report.candidates_tested += engine.stats.tested
            if matches:
                _, password = matches[0]
                report.findings.append(
                    AuditFinding(entry.account, password, engine.stats.tested, elapsed)
                )
        report.elapsed = time.perf_counter() - started
        return report
