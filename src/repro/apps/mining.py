"""Bitcoin-style proof-of-work mining (Section I's second motivating case).

"In the Bitcoin network transactions' consistency is based on blocks ...
an exhaustive search is performed to find a 32-bit value (nonce) that is
used as input to a hashing function based on the SHA256 algorithm,
producing a hash with a certain number of leading zero bits."

A :class:`MiningJob` fixes an 80-byte block header with a free 32-bit nonce
field; :func:`mine_interval` scans a nonce interval with the vectorized
double-SHA256 engine.  The same exhaustive-search pattern applies verbatim:
``f(i)`` is the identity on nonces, ``C`` tests the leading-zero-bit count,
and intervals of nonces are the dispatch payload — which is exactly how a
mining pool shares work ("communities of users join and collaborate,
dividing the search space").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashes.padding import Endian, pad_message
from repro.hashes.sha256 import SHA256_INIT, sha256_compress, sha256d_digest
from repro.hashes.vec_sha256 import sha256_compress_batch
from repro.keyspace import Interval

#: Byte offset of the nonce within a standard 80-byte block header.
NONCE_OFFSET = 76
HEADER_BYTES = 80


def leading_zero_bits(digest: bytes) -> int:
    """Number of leading zero bits of a digest (big-endian bit order)."""
    bits = 0
    for byte in digest:
        if byte == 0:
            bits += 8
            continue
        return bits + (8 - byte.bit_length())
    return bits


@dataclass(frozen=True)
class MiningJob:
    """An 80-byte header whose last 4 bytes are the nonce to search.

    ``difficulty_bits`` is the required number of leading zero bits of the
    double-SHA256 of the header ("which is provided by the network and
    increases in time").
    """

    header: bytes
    difficulty_bits: int

    def __post_init__(self) -> None:
        if len(self.header) != HEADER_BYTES:
            raise ValueError(f"header must be {HEADER_BYTES} bytes")
        if not 0 <= self.difficulty_bits <= 256:
            raise ValueError("difficulty_bits must be in [0, 256]")

    def with_nonce(self, nonce: int) -> bytes:
        """The header with a concrete nonce spliced in (little-endian)."""
        if not 0 <= nonce < 2**32:
            raise ValueError("nonce must be a 32-bit value")
        return (
            self.header[:NONCE_OFFSET]
            + int(nonce).to_bytes(4, "little")
            + self.header[NONCE_OFFSET + 4 :]
        )

    def test(self, nonce: int) -> bool:
        """Scalar test function ``C``: does this nonce meet the difficulty?"""
        return leading_zero_bits(sha256d_digest(self.with_nonce(nonce))) >= self.difficulty_bits

    @property
    def space(self) -> Interval:
        """The full 32-bit nonce space."""
        return Interval(0, 2**32)


def mine_interval(job: MiningJob, interval: Interval, batch_size: int = 1 << 14) -> list[int]:
    """Scan a nonce interval; returns every nonce meeting the difficulty.

    The header's first 64-byte block is nonce-independent, so its
    compression state is computed once and shared by every lane — the
    paper's cached-intermediate-state trick for long inputs ("the
    intermediate result of the hashing algorithm may be saved and reused").
    """
    if interval.stop > 2**32:
        raise ValueError("nonce interval exceeds the 32-bit space")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    # Pad an 80-byte probe message: block 0 is the first 64 header bytes,
    # block 1 holds bytes 64..79 (including the nonce at 76..79) + padding.
    probe_blocks = pad_message(job.with_nonce(0), Endian.BIG)
    assert len(probe_blocks) == 2
    midstate = sha256_compress(SHA256_INIT, probe_blocks[0])
    tail_template = np.array(probe_blocks[1], dtype=np.uint32)
    # The nonce occupies header bytes 76..79 = tail block bytes 12..15 =
    # big-endian word 3 of the tail block, byte-swapped (header is LE).
    found: list[int] = []
    pos = interval.start
    while pos < interval.stop:
        count = min(batch_size, interval.stop - pos)
        nonces = (pos + np.arange(count, dtype=np.uint64)).astype(np.uint32)
        blocks = np.tile(tail_template, (count, 1))
        blocks[:, 3] = nonces.byteswap()  # little-endian bytes in a BE word
        state = tuple(np.full(count, np.uint32(x), dtype=np.uint32) for x in midstate)
        first = np.stack(sha256_compress_batch(blocks, state=state), axis=1)
        second = _second_round(first)
        hits = _difficulty_mask(second, job.difficulty_bits)
        for lane in np.flatnonzero(hits):
            nonce = pos + int(lane)
            if job.test(nonce):  # exact scalar confirmation
                found.append(nonce)
        pos += count
    return found


def _second_round(digest_words: np.ndarray) -> np.ndarray:
    """Double-SHA256: hash the 32-byte first-round digests, lane-wise."""
    batch = digest_words.shape[0]
    blocks = np.zeros((batch, 16), dtype=np.uint32)
    blocks[:, :8] = digest_words
    blocks[:, 8] = np.uint32(0x80000000)  # padding bit
    blocks[:, 15] = np.uint32(256)  # bit length
    return np.stack(sha256_compress_batch(blocks), axis=1)


def _difficulty_mask(digest_words: np.ndarray, bits: int) -> np.ndarray:
    """Lane mask of digests with at least *bits* leading zero bits."""
    if bits == 0:
        return np.ones(digest_words.shape[0], dtype=bool)
    full_words, rem = divmod(bits, 32)
    mask = np.ones(digest_words.shape[0], dtype=bool)
    for w in range(full_words):
        mask &= digest_words[:, w] == 0
    if rem and full_words < 8:
        mask &= (digest_words[:, full_words] >> np.uint32(32 - rem)) == 0
    return mask
