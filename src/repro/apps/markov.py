"""Markov-chain guided candidate ordering.

Section III-A notes that the bijection ``f(i)`` "can be trivial or it can
follow a heuristics to favor testing of the most likely solutions", and the
related work (Marechal; Narayanan & Shmatikov's time-space tradeoff) uses
character-level Markov models for exactly that.  This module provides:

* :class:`MarkovModel` — a Laplace-smoothed first-order (bigram) character
  model trained on a word list;
* best-first enumeration of *all* keys in a length window in strictly
  non-increasing probability order — a reordered, still exhaustive ``f``:
  thanks to smoothing every key has positive probability, so the
  enumeration eventually covers the whole space;
* :class:`MarkovAttack` — a budgeted search that tests the most plausible
  candidates first, typically cracking human-chosen passwords orders of
  magnitude earlier than lexicographic brute force.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Iterator

from repro.apps.cracking import CrackTarget
from repro.keyspace import Charset

#: Sentinel states of the chain.
_START = "^"
_END = "$"


class MarkovModel:
    """First-order character Markov model with Laplace smoothing.

    Probabilities are over the given charset plus an end-of-word event, so
    the model defines a proper distribution over all finite strings; with
    ``smoothing > 0`` every string in the charset has positive probability
    and the guided enumeration remains exhaustive.
    """

    def __init__(self, charset: Charset, smoothing: float = 0.1) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing must be positive (exhaustiveness needs it)")
        self.charset = charset
        self.smoothing = smoothing
        self._counts: dict[str, dict[str, float]] = {}
        self._trained_words = 0

    # ------------------------------------------------------------------ #
    def train(self, words) -> int:
        """Accumulate bigram counts from an iterable of words.

        Words containing characters outside the charset are skipped (they
        cannot be produced by the enumeration anyway).  Returns the number
        of words actually used.
        """
        used = 0
        for word in words:
            if not word or not self.charset.is_valid_key(word):
                continue
            state = _START
            for ch in word:
                self._bump(state, ch)
                state = ch
            self._bump(state, _END)
            used += 1
        self._trained_words += used
        return used

    def _bump(self, state: str, nxt: str) -> None:
        self._counts.setdefault(state, {})
        self._counts[state][nxt] = self._counts[state].get(nxt, 0.0) + 1.0

    # ------------------------------------------------------------------ #
    def log_prob_transition(self, state: str, nxt: str) -> float:
        """Smoothed ``log P(next | state)``; ``next`` may be the end event."""
        row = self._counts.get(state, {})
        vocab = len(self.charset) + 1  # + end event
        total = sum(row.values()) + self.smoothing * vocab
        count = row.get(nxt, 0.0) + self.smoothing
        return math.log(count / total)

    def log_prob(self, word: str) -> float:
        """Smoothed log probability of a complete word."""
        state = _START
        logp = 0.0
        for ch in word:
            logp += self.log_prob_transition(state, ch)
            state = ch
        return logp + self.log_prob_transition(state, _END)

    # ------------------------------------------------------------------ #
    def iter_candidates(
        self, min_length: int = 1, max_length: int = 8
    ) -> Iterator[tuple[str, float]]:
        """Yield ``(word, log_prob)`` in non-increasing probability order.

        Best-first search over prefixes: a prefix's probability is an upper
        bound on any of its completions (transition probabilities are at
        most 1), so expanding the most probable open prefix first yields
        complete words in exact descending order.  The stream is infinite
        in spirit but bounded by *max_length*; it enumerates **every** key
        in the window exactly once.
        """
        if min_length < 0 or max_length < min_length:
            raise ValueError("invalid length window")
        counter = itertools.count()  # deterministic tie-break
        heap: list[tuple[float, int, bool, str]] = [(0.0, next(counter), False, "")]
        while heap:
            neg_logp, _, complete, prefix = heapq.heappop(heap)
            if complete:
                yield prefix, -neg_logp
                continue
            state = prefix[-1] if prefix else _START
            if len(prefix) >= min_length:
                end_lp = self.log_prob_transition(state, _END)
                heapq.heappush(
                    heap, (neg_logp - end_lp, next(counter), True, prefix)
                )
            if len(prefix) < max_length:
                for ch in self.charset:
                    lp = self.log_prob_transition(state, ch)
                    heapq.heappush(
                        heap, (neg_logp - lp, next(counter), False, prefix + ch)
                    )


@dataclass
class MarkovFinding:
    """A crack produced by the guided search."""

    password: str
    rank: int  #: how many candidates were tested before (0-based)
    log_prob: float


class MarkovAttack:
    """Budgeted most-likely-first search against a crack target."""

    def __init__(self, model: MarkovModel, min_length: int = 1, max_length: int = 8) -> None:
        self.model = model
        self.min_length = min_length
        self.max_length = max_length

    def search(self, target: CrackTarget, budget: int) -> list[MarkovFinding]:
        """Test the *budget* most probable candidates against the digest."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        findings: list[MarkovFinding] = []
        stream = self.model.iter_candidates(self.min_length, self.max_length)
        for rank, (word, logp) in enumerate(itertools.islice(stream, budget)):
            if target.verify(word):
                findings.append(MarkovFinding(word, rank, logp))
        return findings

    def rank_of(self, word: str, limit: int = 1_000_000) -> int | None:
        """Position of *word* in the guided order (None if beyond *limit*).

        The "guessing rank" — the standard password-strength metric the
        auditing literature reports.
        """
        for rank, (cand, _) in enumerate(
            itertools.islice(self.model.iter_candidates(self.min_length, self.max_length), limit)
        ):
            if cand == word:
                return rank
        return None
