"""Mask key spaces: per-position charsets (hashcat-style ``?l?u?d`` masks).

The paper's space is uniform — one charset for every position.  Real
auditing policies express structure ("a capital letter, then lower case,
then two digits"), which shrinks the space dramatically while staying a
clean bijection the dispatcher can partition.  A :class:`MaskSpace` is the
mixed-radix generalization: position ``p`` draws from its own charset, the
index unpacks by mixed-radix division, and batches generate vectorized just
like the uniform space.

Mask syntax (hashcat-compatible subset):

====== =========================================
token  positions drawn from
====== =========================================
``?l`` lower-case letters
``?u`` upper-case letters
``?d`` decimal digits
``?s`` printable specials
``?a`` all printable ASCII
``X``  any other character: literal (fixed slot)
====== =========================================
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.keyspace.charset import Charset
from repro.keyspace.intervals import Interval

#: Mask token -> charset.
MASK_TOKENS: dict[str, Charset] = {
    "l": Charset(string.ascii_lowercase, name="?l"),
    "u": Charset(string.ascii_uppercase, name="?u"),
    "d": Charset(string.digits, name="?d"),
    "s": Charset(" !\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~", name="?s"),
    "a": Charset("".join(chr(c) for c in range(0x20, 0x7F)), name="?a"),
}


def parse_mask(mask: str) -> list[Charset]:
    """Parse a mask string into per-position charsets.

    >>> [len(cs) for cs in parse_mask("?u?l?l?d?d")]
    [26, 26, 26, 10, 10]
    """
    positions: list[Charset] = []
    i = 0
    while i < len(mask):
        ch = mask[i]
        if ch == "?":
            if i + 1 >= len(mask):
                raise ValueError("dangling '?' at end of mask")
            token = mask[i + 1]
            if token == "?":  # escaped literal question mark
                positions.append(Charset("?", name="literal"))
            else:
                try:
                    positions.append(MASK_TOKENS[token])
                except KeyError:
                    raise ValueError(f"unknown mask token ?{token}") from None
            i += 2
        else:
            positions.append(Charset(ch, name="literal"))
            i += 1
    if not positions:
        raise ValueError("empty mask")
    return positions


@dataclass(frozen=True)
class MaskSpace:
    """A mixed-radix key space: position ``p`` draws from ``charsets[p]``.

    Enumeration is *prefix-fastest* (position 0 varies quickest), matching
    the reversal-compatible order of the uniform space.
    """

    charsets: tuple

    def __post_init__(self) -> None:
        if not self.charsets:
            raise ValueError("mask needs at least one position")
        object.__setattr__(self, "charsets", tuple(self.charsets))

    @classmethod
    def from_mask(cls, mask: str) -> "MaskSpace":
        return cls(tuple(parse_mask(mask)))

    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        return len(self.charsets)

    @property
    def size(self) -> int:
        """Total keys: the product of the per-position radices."""
        out = 1
        for cs in self.charsets:
            out *= len(cs)
        return out

    def key_at(self, index: int) -> str:
        """Mixed-radix ``f(i)``: unpack position by position, fastest first."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside [0, {self.size})")
        chars = []
        for cs in self.charsets:
            index, digit = divmod(index, len(cs))
            chars.append(cs[digit])
        return "".join(chars)

    def index_of(self, key: str) -> int:
        """Inverse bijection; validates each position against its charset."""
        if len(key) != self.length:
            raise ValueError(f"key length {len(key)} != mask length {self.length}")
        index = 0
        for cs, ch in zip(reversed(self.charsets), reversed(key)):
            index = index * len(cs) + cs.digit_of(ch)
        return index

    def next_key(self, key: str) -> str | None:
        """Mixed-radix ripple-carry successor (``None`` at the end)."""
        chars = list(key)
        for pos, cs in enumerate(self.charsets):
            digit = cs.digit_of(chars[pos])
            if digit + 1 < len(cs):
                chars[pos] = cs[digit + 1]
                return "".join(chars)
            chars[pos] = cs[0]
        return None

    # ------------------------------------------------------------------ #
    def batch_keys(self, start: int, count: int) -> np.ndarray:
        """``(count, length)`` uint8 key-byte matrix, fully vectorized.

        The per-position digits come from chained vectorized divmods with
        position-specific radices — the mixed-radix analogue of
        :func:`repro.keyspace.vectorized.batch_digits`.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if start < 0 or start + count > self.size:
            raise IndexError(f"range [{start}, {start + count}) outside the space")
        if self.size <= 2**63:
            values = start + np.arange(count, dtype=np.int64)
            out = np.empty((count, self.length), dtype=np.uint8)
            for pos, cs in enumerate(self.charsets):
                values, digits = np.divmod(values, len(cs))
                out[:, pos] = cs.byte_table[digits]
            return out
        # Exact-integer fallback for gigantic masks.
        out = np.empty((count, self.length), dtype=np.uint8)
        row_values = [start + i for i in range(count)]
        for pos, cs in enumerate(self.charsets):
            n = len(cs)
            out[:, pos] = cs.byte_table[[v % n for v in row_values]]
            row_values = [v // n for v in row_values]
        return out

    def iter_keys(self, interval: Interval | None = None) -> Iterator[str]:
        """Scalar iteration over an interval (reference path)."""
        interval = interval if interval is not None else Interval(0, self.size)
        if interval.stop > self.size:
            raise IndexError("interval outside the mask space")
        if not interval:
            return
        key = self.key_at(interval.start)
        yield key
        for _ in range(interval.size - 1):
            key = self.next_key(key)
            yield key

    def describe(self) -> str:
        """Human-readable summary, e.g. for audit-policy reports."""
        parts = [cs.name or cs.symbols for cs in self.charsets]
        return f"mask[{' '.join(parts)}] ({self.size:,} keys)"
