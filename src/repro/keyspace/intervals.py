"""Intervals of candidate-solution identifiers and their partitioning.

Section III of the paper dispatches *intervals* of ids: the scatter payload
for a node is just ``(start, stop)`` plus the tiny space description, which
is why ``K_scatter`` is a fixed cost that becomes negligible for large
problems.  These helpers tile an id space exactly — no candidate is tested
twice and none is skipped — and support the weighted split used by the
balancing rule ``N_j = N_max * (X_j / X_max)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open range ``[start, stop)`` of candidate ids (exact ints)."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("interval start must be non-negative")
        if self.stop < self.start:
            raise ValueError("interval stop must be >= start")

    def __len__(self) -> int:
        return self.stop - self.start

    def __bool__(self) -> bool:
        return self.stop > self.start

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.stop

    def __iter__(self):
        return iter(range(self.start, self.stop))

    @property
    def size(self) -> int:
        """Number of ids in the interval."""
        return self.stop - self.start

    def take(self, count: int) -> tuple["Interval", "Interval"]:
        """Split off the first *count* ids: ``(head, rest)``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        cut = min(self.start + count, self.stop)
        return Interval(self.start, cut), Interval(cut, self.stop)

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one id."""
        return self.start < other.stop and other.start < self.stop


def split_interval(interval: Interval, chunk: int) -> list[Interval]:
    """Split into consecutive chunks of at most *chunk* ids each."""
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    out: list[Interval] = []
    pos = interval.start
    while pos < interval.stop:
        nxt = min(pos + chunk, interval.stop)
        out.append(Interval(pos, nxt))
        pos = nxt
    return out


def partition_evenly(interval: Interval, parts: int) -> list[Interval]:
    """Partition into *parts* contiguous intervals of near-equal size.

    The first ``size % parts`` intervals are one id longer, so the partition
    tiles the input exactly.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    size = interval.size
    base, extra = divmod(size, parts)
    out: list[Interval] = []
    pos = interval.start
    for j in range(parts):
        span = base + (1 if j < extra else 0)
        out.append(Interval(pos, pos + span))
        pos += span
    assert pos == interval.stop
    return out


def partition_weighted(interval: Interval, weights: Sequence[float]) -> list[Interval]:
    """Partition proportionally to *weights* (the paper's balancing rule).

    Weight ``w_j`` is the relative throughput ``X_j / X_max`` of node ``j``;
    the resulting interval sizes satisfy ``N_j ~= N_total * w_j / sum(w)``
    while tiling the input exactly (largest-remainder rounding).  Zero-weight
    nodes receive empty intervals.
    """
    if not weights:
        raise ValueError("weights must be non-empty")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total_w = float(sum(weights))
    size = interval.size
    if total_w == 0.0:
        # Degenerate: nobody can work; give everything to the first slot so
        # the partition still tiles (callers treat this as an error upstream).
        sizes = [size] + [0] * (len(weights) - 1)
    else:
        raw = [size * (w / total_w) for w in weights]
        sizes = [int(r) for r in raw]
        remainders = sorted(
            range(len(weights)), key=lambda j: raw[j] - sizes[j], reverse=True
        )
        shortfall = size - sum(sizes)
        for j in remainders[:shortfall]:
            sizes[j] += 1
    out: list[Interval] = []
    pos = interval.start
    for span in sizes:
        out.append(Interval(pos, pos + span))
        pos += span
    assert pos == interval.stop
    return out


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Coalesce overlapping/adjacent intervals into a minimal sorted list."""
    items = sorted(intervals, key=lambda iv: iv.start)
    out: list[Interval] = []
    for iv in items:
        if not iv:
            continue
        if out and iv.start <= out[-1].stop:
            out[-1] = Interval(out[-1].start, max(out[-1].stop, iv.stop))
        else:
            out.append(iv)
    return out


def subtract_interval(interval: Interval, covered: Iterable[Interval]) -> list[Interval]:
    """The parts of *interval* not covered by any interval in *covered*.

    The idempotent-gather primitive: a reply (or requeue) for an interval
    that someone else already partially completed contributes only its
    still-novel pieces, so duplicate and late deliveries can never
    double-count coverage.  Returns sorted, disjoint, non-empty intervals.
    """
    remaining = [interval] if interval else []
    for cover in merge_intervals(covered):
        next_remaining: list[Interval] = []
        for piece in remaining:
            if not piece.overlaps(cover):
                next_remaining.append(piece)
                continue
            if piece.start < cover.start:
                next_remaining.append(Interval(piece.start, cover.start))
            if cover.stop < piece.stop:
                next_remaining.append(Interval(cover.stop, piece.stop))
        remaining = next_remaining
        if not remaining:
            break
    return remaining


def is_exact_partition(whole: Interval, parts: Iterable[Interval]) -> bool:
    """True when *parts* tile *whole* exactly (no gap, no overlap)."""
    merged = merge_intervals(parts)
    total = sum(iv.size for iv in parts)
    if not whole:
        return total == 0
    return merged == [whole] and total == whole.size
