"""Closed-form search-space size algebra (Equations (2) and (3) of the paper).

Given a charset of ``N`` symbols, the number of distinct keys whose length
lies in ``[k0, k]`` is

.. math::

    S_{k_0}^{k} = \\sum_{i=k_0}^{k} N^i = \\frac{N^{k+1} - N^{k_0}}{N - 1}
    \\qquad (N > 1)

and simply ``k - k0 + 1`` when ``N == 1`` (Equation (3)).  These functions
operate on exact Python integers because realistic key spaces overflow 64-bit
arithmetic (e.g. 62 alphanumerics at length 12 already exceeds ``2**64``).
"""

from __future__ import annotations


def count_of_length(n_symbols: int, length: int) -> int:
    """Number of distinct keys of exactly *length* characters: ``N ** length``."""
    _check_n(n_symbols)
    if length < 0:
        raise ValueError("length must be non-negative")
    return n_symbols**length


def space_size(n_symbols: int, min_length: int, max_length: int) -> int:
    """Size of the search space for lengths in ``[min_length, max_length]``.

    Implements Equation (2) of the paper (and Equation (3) for the degenerate
    single-symbol alphabet).  The empty string counts as the unique key of
    length zero, exactly as in the paper's mapping (1).

    >>> space_size(3, 0, 2)   # eps, a, b, c, aa .. cc
    13
    >>> space_size(62, 1, 8)  # the paper's evaluation space (about 2.2e14)
    221919451578090
    """
    _check_n(n_symbols)
    if min_length < 0:
        raise ValueError("min_length must be non-negative")
    if max_length < min_length:
        raise ValueError("max_length must be >= min_length")
    if n_symbols == 1:
        return max_length - min_length + 1
    return (n_symbols ** (max_length + 1) - n_symbols**min_length) // (n_symbols - 1)


def length_offset(n_symbols: int, min_length: int, length: int) -> int:
    """Index of the first key of exactly *length* characters.

    Keys are enumerated shortest-first, so the stratum of length ``L`` starts
    at ``S_{min_length}^{L-1}`` (zero when ``L == min_length``).
    """
    if length == min_length:
        return 0
    return space_size(n_symbols, min_length, length - 1)


def length_of_index(n_symbols: int, min_length: int, index: int) -> tuple[int, int]:
    """Return ``(length, index_within_stratum)`` for a global key index.

    The inverse of :func:`length_offset`: finds which length stratum a global
    id falls into and the residual offset inside that stratum.
    """
    _check_n(n_symbols)
    if index < 0:
        raise ValueError("index must be non-negative")
    length = min_length
    remaining = index
    while True:
        stratum = count_of_length(n_symbols, length)
        if remaining < stratum:
            return length, remaining
        remaining -= stratum
        length += 1


def max_index_for_uint64(n_symbols: int) -> int:
    """Largest key length whose *stratum* (``N**L``) still fits in ``uint64``.

    The vectorized generator uses 64-bit arithmetic within a length stratum
    and falls back to exact Python integers beyond this limit.
    """
    _check_n(n_symbols)
    if n_symbols == 1:
        return 63  # arbitrary but harmless: every stratum has size 1
    length = 0
    while n_symbols ** (length + 1) <= 2**63:
        length += 1
    return length


def _check_n(n_symbols: int) -> None:
    if n_symbols < 1:
        raise ValueError("charset must have at least one symbol")
