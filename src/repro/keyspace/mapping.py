"""The bijection ``f(id)`` and the incremental ``next`` operator.

Implements the pseudocode of Figures 1 and 2 of the paper and their
suffix/prefix variants.  The mapping is the *bijective base-N numeration*:
with charset ``{a, b, c}``,

* mapping (1), :data:`KeyOrder.SUFFIX_FASTEST`::

      [0, 1, 2, 3, 4, 5, 6, 7, ...] -> [eps, a, b, c, aa, ab, ac, ba, ...]

* mapping (4), :data:`KeyOrder.PREFIX_FASTEST`::

      [0, 1, 2, 3, 4, 5, 6, 7, ...] -> [eps, a, b, c, aa, ba, ca, ab, ...]

Both are bijections from the natural numbers onto the set of all finite
strings over the charset; they enumerate keys shortest-first and differ only
in which end of the string carries the fastest-varying digit.  The digest
reversal optimization of Section V requires :data:`KeyOrder.PREFIX_FASTEST`,
because a GPU thread walking consecutive ids must mutate only the first
32-bit word of the packed candidate.

The ``next`` operator (Figure 2) advances a key to its successor with a
ripple-carry update touching, in the common case, a single character — much
cheaper than re-deriving the key from its id (``K_next << K_f``), which is
precisely why each thread tests a *run* of consecutive candidates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.keyspace.charset import Charset
from repro.keyspace.sizes import length_of_index, length_offset, space_size


class KeyOrder(enum.Enum):
    """Which end of the key carries the fastest-varying digit."""

    #: Paper mapping (1) / Figure 1 as printed: the last character varies
    #: fastest (``aa, ab, ac, ba, ...``).
    SUFFIX_FASTEST = "suffix"

    #: Paper mapping (4): the first character varies fastest
    #: (``aa, ba, ca, ab, ...``); required by the reversal kernel.
    PREFIX_FASTEST = "prefix"


def index_to_key(index: int, charset: Charset, order: KeyOrder = KeyOrder.SUFFIX_FASTEST) -> str:
    """The paper's ``f(id)`` (Figure 1): map a natural number to a key.

    ``index == 0`` maps to the empty string; indices are exact Python
    integers, so arbitrarily large key spaces are supported.
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    n = len(charset)
    out: list[str] = []
    while index > 0:
        index -= 1
        out.append(charset[index % n])
        index //= n
    # Digits were produced least-significant first.  For the suffix-fastest
    # order the least significant digit is the *last* character; for the
    # prefix-fastest order it is the *first*.
    if order is KeyOrder.SUFFIX_FASTEST:
        out.reverse()
    return "".join(out)


def key_to_index(key: str, charset: Charset, order: KeyOrder = KeyOrder.SUFFIX_FASTEST) -> int:
    """Inverse of :func:`index_to_key`: recover the id of a key."""
    n = len(charset)
    index = 0
    chars = key if order is KeyOrder.SUFFIX_FASTEST else reversed(key)
    for ch in chars:
        index = index * n + charset.digit_of(ch) + 1
    return index


def next_key(key: str, charset: Charset, order: KeyOrder = KeyOrder.SUFFIX_FASTEST) -> str:
    """The paper's ``next`` operator (Figure 2): the successor of *key*.

    Performs a ripple-carry increment starting from the fastest-varying end.
    When every position wraps around, the key grows by one character of the
    zero digit (e.g. ``cc -> aaa`` over ``{a, b, c}``), exactly matching
    ``index_to_key(key_to_index(key) + 1)``.
    """
    n = len(charset)
    chars = list(key)
    positions = (
        range(len(chars) - 1, -1, -1)
        if order is KeyOrder.SUFFIX_FASTEST
        else range(len(chars))
    )
    # Ripple-carry on characters directly: in the common case exactly one
    # character is inspected and replaced — this is what makes K_next small.
    for pos in positions:
        digit = charset.digit_of(chars[pos])
        if digit + 1 < n:
            chars[pos] = charset[digit + 1]
            return "".join(chars)
        chars[pos] = charset[0]
    # Full wrap-around: the successor is one character longer, all zero digits.
    return charset[0] * (len(key) + 1)


@dataclass(frozen=True)
class KeyMapping:
    """A charset bound to an enumeration order and a length window.

    This is the object the rest of the system works with: it restricts the
    global bijection to keys whose length lies in ``[min_length,
    max_length]`` and renumbers them from zero, which is what the dispatcher
    actually partitions (Section III-A: the scatter payload is just an
    interval of these indices plus this small description).
    """

    charset: Charset
    min_length: int = 0
    max_length: int = 20
    order: KeyOrder = KeyOrder.SUFFIX_FASTEST

    def __post_init__(self) -> None:
        if self.min_length < 0:
            raise ValueError("min_length must be non-negative")
        if self.max_length < self.min_length:
            raise ValueError("max_length must be >= min_length")

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Total number of keys in the window (Equations (2)/(3))."""
        return space_size(len(self.charset), self.min_length, self.max_length)

    def key_at(self, index: int) -> str:
        """Key at a window-relative index in ``[0, size)``."""
        self._check_index(index)
        length, within = length_of_index(len(self.charset), self.min_length, index)
        return self._key_of_stratum(length, within)

    def index_of(self, key: str) -> int:
        """Window-relative index of *key*; raises if outside the window."""
        if not self.min_length <= len(key) <= self.max_length:
            raise ValueError(
                f"key length {len(key)} outside window "
                f"[{self.min_length}, {self.max_length}]"
            )
        n = len(self.charset)
        within = 0
        chars = key if self.order is KeyOrder.SUFFIX_FASTEST else reversed(key)
        for ch in chars:
            within = within * n + self.charset.digit_of(ch)
        return length_offset(n, self.min_length, len(key)) + within

    def next_of(self, key: str) -> str | None:
        """Successor of *key* within the window, or ``None`` at the end."""
        nxt = next_key(key, self.charset, self.order)
        if len(nxt) > self.max_length:
            return None
        return nxt

    def stratum(self, index: int) -> tuple[int, int]:
        """Return ``(length, index_within_stratum)`` for a window index."""
        self._check_index(index)
        return length_of_index(len(self.charset), self.min_length, index)

    def iter_keys(self, start: int = 0, stop: int | None = None):
        """Iterate keys for indices ``[start, stop)`` using ``next``.

        This is the scalar reference of the paper's per-thread loop: one
        ``f(id)`` conversion at the start, then the cheap ``next`` operator —
        the pattern whose efficiency grows with the run length (Section III).
        """
        stop = self.size if stop is None else min(stop, self.size)
        if start >= stop:
            return
        key = self.key_at(start)
        yield key
        for _ in range(stop - start - 1):
            key = self.next_of(key)
            if key is None:  # pragma: no cover - guarded by stop clamp
                return
            yield key

    # ------------------------------------------------------------------ #
    def _key_of_stratum(self, length: int, within: int) -> str:
        """Key of a given exact length from its stratum-relative index."""
        n = len(self.charset)
        digits = [0] * length
        for pos in range(length - 1, -1, -1):
            digits[pos] = within % n
            within //= n
        if self.order is KeyOrder.PREFIX_FASTEST:
            digits.reverse()
        return self.charset.key_of(digits)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside [0, {self.size})")
