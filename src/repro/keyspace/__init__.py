"""Key-space enumeration substrate.

This package implements Section IV of the paper: the bijection ``f(id)``
between natural numbers and strings over a charset (Figure 1), the cheap
incremental ``next`` operator (Figure 2), the closed-form search-space size
formulas (Equations (2) and (3)), interval partitioning of the id space, and
NumPy-vectorized batch candidate generation used by the SIMT hash engine.

Two enumeration orders are provided:

* :data:`KeyOrder.SUFFIX_FASTEST` — the paper's mapping (1), produced by the
  pseudocode in Figure 1: consecutive ids differ in the *last* character
  (``[..., aa, ab, ac, ba, ...]``).
* :data:`KeyOrder.PREFIX_FASTEST` — the paper's mapping (4): consecutive ids
  differ in the *first* character (``[..., aa, ba, ca, ab, ...]``).  This is
  the order required by the digest-reversal kernel optimization (Section V),
  because a thread iterating over consecutive ids then mutates only the first
  32-bit word of the packed message.
"""

from repro.keyspace.charset import (
    Charset,
    ALPHA_LOWER,
    ALPHA_UPPER,
    ALPHA_MIXED,
    DIGITS,
    ALNUM_LOWER,
    ALNUM_MIXED,
    HEX_LOWER,
    ASCII_PRINTABLE,
)
from repro.keyspace.sizes import (
    space_size,
    count_of_length,
    length_offset,
    length_of_index,
    max_index_for_uint64,
)
from repro.keyspace.mapping import (
    KeyOrder,
    KeyMapping,
    index_to_key,
    key_to_index,
    next_key,
)
from repro.keyspace.intervals import (
    Interval,
    partition_evenly,
    partition_weighted,
    split_interval,
)
from repro.keyspace.vectorized import (
    batch_keys,
    batch_digits,
    iter_batches,
)

__all__ = [
    "Charset",
    "ALPHA_LOWER",
    "ALPHA_UPPER",
    "ALPHA_MIXED",
    "DIGITS",
    "ALNUM_LOWER",
    "ALNUM_MIXED",
    "HEX_LOWER",
    "ASCII_PRINTABLE",
    "space_size",
    "count_of_length",
    "length_offset",
    "length_of_index",
    "max_index_for_uint64",
    "KeyOrder",
    "KeyMapping",
    "index_to_key",
    "key_to_index",
    "next_key",
    "Interval",
    "partition_evenly",
    "partition_weighted",
    "split_interval",
    "batch_keys",
    "batch_digits",
    "iter_batches",
]
