"""Character sets ("charsets") used to enumerate candidate keys.

A :class:`Charset` is the alphabet of the base-``N`` numeral system used by
the bijection ``f(id)`` of the paper (Section IV): a string is interpreted as
an arbitrarily long number represented with ``N`` symbols.  The class offers
both character-level views (for the scalar reference paths) and NumPy
byte-level views (for the vectorized SIMT hash engine).
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Charset:
    """An ordered alphabet of distinct single-byte characters.

    Parameters
    ----------
    symbols:
        The alphabet, in digit order: ``symbols[0]`` is the digit of value
        zero.  All characters must be distinct and encodable in latin-1
        (the kernels pack characters into bytes, 4 per 32-bit word).
    name:
        Optional human-readable identifier used in reports.
    """

    symbols: str
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.symbols:
            raise ValueError("charset must contain at least one symbol")
        if len(set(self.symbols)) != len(self.symbols):
            raise ValueError("charset symbols must be distinct")
        try:
            self.symbols.encode("latin-1")
        except UnicodeEncodeError as exc:  # pragma: no cover - message only
            raise ValueError("charset symbols must be single-byte") from exc

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, ch: str) -> bool:
        return ch in self.symbols

    def __getitem__(self, digit: int) -> str:
        return self.symbols[digit]

    def __iter__(self):
        return iter(self.symbols)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or self.symbols[:12] + ("…" if len(self.symbols) > 12 else "")
        return f"Charset({label!r}, N={len(self.symbols)})"

    # ------------------------------------------------------------------ #
    # Digit conversions
    # ------------------------------------------------------------------ #
    def digit_of(self, ch: str) -> int:
        """Return the numeric value of a character, raising on foreign input."""
        idx = self.symbols.find(ch)
        if idx < 0:
            raise ValueError(f"character {ch!r} not in charset")
        return idx

    def digits_of(self, key: str) -> list[int]:
        """Convert a whole key to its digit sequence (most significant first)."""
        return [self.digit_of(c) for c in key]

    def key_of(self, digits) -> str:
        """Convert a digit sequence back to a string key."""
        return "".join(self.symbols[d] for d in digits)

    def is_valid_key(self, key: str) -> bool:
        """True when every character of *key* belongs to the charset."""
        return all(c in self.symbols for c in key)

    # ------------------------------------------------------------------ #
    # NumPy views for the vectorized engine
    # ------------------------------------------------------------------ #
    @property
    def byte_table(self) -> np.ndarray:
        """``uint8`` array mapping digit value -> character byte."""
        return np.frombuffer(self.symbols.encode("latin-1"), dtype=np.uint8).copy()

    @property
    def inverse_byte_table(self) -> np.ndarray:
        """``int16`` array of length 256 mapping byte -> digit value (-1 if absent)."""
        table = np.full(256, -1, dtype=np.int16)
        table[self.byte_table] = np.arange(len(self.symbols), dtype=np.int16)
        return table


# ---------------------------------------------------------------------- #
# Standard charsets used throughout the paper's evaluation
# ---------------------------------------------------------------------- #

#: Lower-case letters ``a``-``z`` (N = 26).
ALPHA_LOWER = Charset(string.ascii_lowercase, name="alpha-lower")

#: Upper-case letters ``A``-``Z`` (N = 26).
ALPHA_UPPER = Charset(string.ascii_uppercase, name="alpha-upper")

#: Mixed-case letters (N = 52) — the paper's "8 alphabetic characters, both
#: lower and upper case" example in the introduction.
ALPHA_MIXED = Charset(string.ascii_lowercase + string.ascii_uppercase, name="alpha-mixed")

#: Decimal digits ``0``-``9`` (N = 10).
DIGITS = Charset(string.digits, name="digits")

#: Lower-case alphanumerics (N = 36).
ALNUM_LOWER = Charset(string.ascii_lowercase + string.digits, name="alnum-lower")

#: Mixed-case alphanumerics (N = 62) — the search space of the paper's
#: evaluation ("up to 8 alphanumeric characters, both lower and upper cases").
ALNUM_MIXED = Charset(
    string.ascii_lowercase + string.ascii_uppercase + string.digits,
    name="alnum-mixed",
)

#: Lower-case hexadecimal digits (N = 16).
HEX_LOWER = Charset(string.hexdigits[:16], name="hex-lower")

#: All printable ASCII except whitespace beyond the space character (N = 95).
ASCII_PRINTABLE = Charset(
    "".join(chr(c) for c in range(0x20, 0x7F)),
    name="ascii-printable",
)
