"""NumPy-vectorized batch candidate generation.

The CUDA kernel of the paper maps an interval of ids onto a grid of threads,
each converting its id with ``f`` once and then walking forward with
``next``.  The CPU analogue of a warp is a NumPy array lane: these helpers
materialize a contiguous run of candidates as a ``(batch, length)`` uint8
character matrix in one shot, entirely with array arithmetic (no per-key
Python loop), ready to be packed into 64-byte message blocks.

Batches never mix key lengths: like the paper's kernels ("the kernel
optimized for strings of length 4"), the fast path is specialized per
stratum, and an id range crossing a stratum boundary is emitted as multiple
segments.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.keyspace.intervals import Interval
from repro.keyspace.mapping import KeyMapping, KeyOrder
from repro.keyspace.sizes import count_of_length, length_of_index


def batch_digits(
    mapping: KeyMapping, start: int, count: int
) -> list[tuple[int, int, np.ndarray]]:
    """Digit matrices for ids ``[start, start + count)``.

    Returns a list of ``(segment_start, length, digits)`` tuples where
    ``digits`` has shape ``(segment_size, length)`` and dtype ``int64``
    (values in ``[0, N)``), one tuple per length stratum touched.  The
    concatenation of the segments covers the requested range exactly, in
    order.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if start < 0 or start + count > mapping.size:
        raise IndexError(
            f"range [{start}, {start + count}) outside key space of size {mapping.size}"
        )
    n = len(mapping.charset)
    segments: list[tuple[int, int, np.ndarray]] = []
    pos = start
    remaining = count
    while remaining > 0:
        length, within = length_of_index(n, mapping.min_length, pos)
        stratum_size = count_of_length(n, length)
        seg = min(remaining, stratum_size - within)
        segments.append((pos, length, _stratum_digits(n, length, within, seg, mapping.order)))
        pos += seg
        remaining -= seg
    return segments


def batch_keys(
    mapping: KeyMapping, start: int, count: int
) -> list[tuple[int, int, np.ndarray]]:
    """Character-byte matrices for ids ``[start, start + count)``.

    As :func:`batch_digits`, but each segment's array is the uint8 *byte*
    matrix of the candidate keys (``digits`` passed through the charset's
    byte table) — the exact representation the packing stage consumes.
    """
    table = mapping.charset.byte_table
    return [
        (seg_start, length, table[digits])
        for seg_start, length, digits in batch_digits(mapping, start, count)
    ]


def iter_batches(
    mapping: KeyMapping, interval: Interval, batch_size: int
) -> Iterator[tuple[int, int, np.ndarray]]:
    """Stream ``(start, length, chars)`` batches covering *interval*.

    Batches hold at most *batch_size* candidates and never mix lengths; this
    is the generator the vectorized hash engine iterates, mirroring the
    paper's splitting of the computation over multiple grids to respect the
    driver watchdog (Section IV-A).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    pos = interval.start
    while pos < interval.stop:
        count = min(batch_size, interval.stop - pos)
        yield from batch_keys(mapping, pos, count)
        pos += count


def decode_keys(chars: np.ndarray) -> list[str]:
    """Decode a ``(batch, length)`` uint8 matrix back to Python strings."""
    if chars.ndim != 2:
        raise ValueError("expected a (batch, length) matrix")
    return [row.tobytes().decode("latin-1") for row in chars]


# ---------------------------------------------------------------------- #
# Internals
# ---------------------------------------------------------------------- #


def _stratum_digits(
    n: int, length: int, within: int, count: int, order: KeyOrder
) -> np.ndarray:
    """Digit matrix for *count* consecutive within-stratum indices."""
    if length == 0:
        return np.zeros((count, 0), dtype=np.int64)
    if count == 0:
        return np.zeros((0, length), dtype=np.int64)
    if n == 1:
        return np.zeros((count, length), dtype=np.int64)
    # Fast path: the whole stratum fits in signed 64-bit arithmetic.
    if n**length <= 2**63:
        values = within + np.arange(count, dtype=np.int64)
        powers = n ** np.arange(length, dtype=np.int64)  # n^0 .. n^(L-1)
        # Least-significant digit first: digit p = (v // n^p) % n.
        lsd_first = (values[:, None] // powers[None, :]) % n
        if order is KeyOrder.PREFIX_FASTEST:
            return lsd_first
        return lsd_first[:, ::-1]
    # Exact-integer fallback for gigantic strata: peel digits column by
    # column with Python ints, still vectorizing across the batch via
    # object arrays only at the boundaries.
    digits = np.empty((count, length), dtype=np.int64)
    value = within
    row_values = [value + i for i in range(count)]
    for p in range(length):
        col = [v % n for v in row_values]
        digits[:, p] = col
        row_values = [v // n for v in row_values]
    if order is KeyOrder.SUFFIX_FASTEST:
        digits = digits[:, ::-1]
    return np.ascontiguousarray(digits)
