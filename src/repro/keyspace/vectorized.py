"""NumPy-vectorized batch candidate generation.

The CUDA kernel of the paper maps an interval of ids onto a grid of threads,
each converting its id with ``f`` once and then walking forward with
``next``.  The CPU analogue of a warp is a NumPy array lane: these helpers
materialize a contiguous run of candidates as a ``(batch, length)`` uint8
character matrix in one shot, entirely with array arithmetic (no per-key
Python loop), ready to be packed into 64-byte message blocks.

Batches never mix key lengths: like the paper's kernels ("the kernel
optimized for strings of length 4"), the fast path is specialized per
stratum, and an id range crossing a stratum boundary is emitted as multiple
segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.keyspace.intervals import Interval
from repro.keyspace.mapping import KeyMapping, KeyOrder
from repro.keyspace.sizes import count_of_length, length_of_index


def batch_digits(
    mapping: KeyMapping, start: int, count: int
) -> list[tuple[int, int, np.ndarray]]:
    """Digit matrices for ids ``[start, start + count)``.

    Returns a list of ``(segment_start, length, digits)`` tuples where
    ``digits`` has shape ``(segment_size, length)`` and dtype ``int64``
    (values in ``[0, N)``), one tuple per length stratum touched.  The
    concatenation of the segments covers the requested range exactly, in
    order.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if start < 0 or start + count > mapping.size:
        raise IndexError(
            f"range [{start}, {start + count}) outside key space of size {mapping.size}"
        )
    n = len(mapping.charset)
    segments: list[tuple[int, int, np.ndarray]] = []
    pos = start
    remaining = count
    while remaining > 0:
        length, within = length_of_index(n, mapping.min_length, pos)
        stratum_size = count_of_length(n, length)
        seg = min(remaining, stratum_size - within)
        segments.append((pos, length, _stratum_digits(n, length, within, seg, mapping.order)))
        pos += seg
        remaining -= seg
    return segments


def batch_keys(
    mapping: KeyMapping, start: int, count: int
) -> list[tuple[int, int, np.ndarray]]:
    """Character-byte matrices for ids ``[start, start + count)``.

    As :func:`batch_digits`, but each segment's array is the uint8 *byte*
    matrix of the candidate keys (``digits`` passed through the charset's
    byte table) — the exact representation the packing stage consumes.
    """
    table = mapping.charset.byte_table
    return [
        (seg_start, length, table[digits])
        for seg_start, length, digits in batch_digits(mapping, start, count)
    ]


def iter_batches(
    mapping: KeyMapping, interval: Interval, batch_size: int
) -> Iterator[tuple[int, int, np.ndarray]]:
    """Stream ``(start, length, chars)`` batches covering *interval*.

    Batches hold at most *batch_size* candidates and never mix lengths; this
    is the generator the vectorized hash engine iterates, mirroring the
    paper's splitting of the computation over multiple grids to respect the
    driver watchdog (Section IV-A).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    pos = interval.start
    while pos < interval.stop:
        count = min(batch_size, interval.stop - pos)
        yield from batch_keys(mapping, pos, count)
        pos += count


def decode_keys(chars: np.ndarray) -> list[str]:
    """Decode a ``(batch, length)`` uint8 matrix back to Python strings."""
    if chars.ndim != 2:
        raise ValueError("expected a (batch, length) matrix")
    return [row.tobytes().decode("latin-1") for row in chars]


# ---------------------------------------------------------------------- #
# Allocation-free packing: ids -> padded message blocks, no intermediates
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class PackedSegment:
    """One length stratum's slice of a packed batch.

    ``blocks`` and ``chars`` are *views* into the owning
    :class:`BlockWorkspace`; they are overwritten by the workspace's next
    :meth:`~BlockWorkspace.fill` call and must be consumed before then.
    """

    start: int  #: absolute candidate id of row 0
    length: int  #: key length of every row
    blocks: np.ndarray  #: ``(rows, 16)`` native uint32 padded message blocks
    chars: np.ndarray  #: ``(rows, length)`` uint8 key bytes (for decoding hits)

    def key_at(self, lane: int) -> str:
        """Decode the candidate in row *lane* back to its string."""
        return self.chars[lane].tobytes().decode("latin-1")


class BlockWorkspace:
    """Preallocated buffers turning candidate ids into padded blocks.

    The hot-path counterpart of :func:`batch_keys` +
    :func:`repro.hashes.padding.pack_single_block`: message words are
    synthesized *directly from indices* into caller-owned storage — digits
    via ``np.floor_divide``/``np.remainder`` with ``out=``, charset bytes
    via ``np.take(..., out=...)`` straight into the 64-byte rows, and the
    final uint32 words via a single byteswapping ``np.copyto``.  No
    intermediate key-bytes array is materialized and, at steady state,
    repeated :meth:`fill` calls allocate nothing.

    A workspace of ``capacity`` rows serves any batch up to that size; a
    final partial batch simply returns shorter views of the same buffers
    (no reallocation at interval tails).
    """

    #: ``'little'``-endian word order (MD5/MD4) vs ``'big'`` (SHA family).
    _VIEW = {"little": "<u4", "big": ">u4"}

    def __init__(self, capacity: int, max_length: int = 20) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_length < 0:
            raise ValueError("max_length must be non-negative")
        self.capacity = capacity
        self._bytes = np.zeros((capacity, 64), dtype=np.uint8)
        self._words = np.empty((capacity, 16), dtype=np.uint32)
        self._digits = np.empty((capacity, max(1, max_length)), dtype=np.int64)
        self._values = np.empty(capacity, dtype=np.int64)
        self._iota = np.arange(capacity, dtype=np.int64)
        self._powers: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def fill(
        self,
        mapping: KeyMapping,
        start: int,
        count: int,
        endian_value: str,
        prefix: bytes = b"",
        suffix: bytes = b"",
    ) -> list[PackedSegment]:
        """Pack candidates ``[start, start + count)`` into the workspace.

        ``endian_value`` is ``"little"`` or ``"big"`` (pass
        ``target.endian.value``).  Returns one :class:`PackedSegment` per
        length stratum touched; their rows tile the requested range in
        order.  Raises if *count* exceeds the workspace capacity.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > self.capacity:
            raise ValueError(f"batch of {count} exceeds workspace capacity {self.capacity}")
        if start < 0 or start + count > mapping.size:
            raise IndexError(
                f"range [{start}, {start + count}) outside key space of size {mapping.size}"
            )
        view_dtype = self._VIEW[endian_value]
        n = len(mapping.charset)
        table = mapping.charset.byte_table
        p0 = len(prefix)
        rows = self._bytes[:count]
        rows.fill(0)
        segments: list[PackedSegment] = []
        offset = 0
        pos = start
        remaining = count
        while remaining > 0:
            length, within = length_of_index(n, mapping.min_length, pos)
            stratum_size = count_of_length(n, length)
            seg = min(remaining, stratum_size - within)
            seg_rows = self._bytes[offset : offset + seg]
            chars = seg_rows[:, p0 : p0 + length]
            if length:
                self._fill_chars(n, length, within, seg, mapping.order, table, chars)
            total = p0 + length + len(suffix)
            if prefix:
                seg_rows[:, :p0] = np.frombuffer(prefix, dtype=np.uint8)
            if suffix:
                seg_rows[:, p0 + length : total] = np.frombuffer(suffix, dtype=np.uint8)
            seg_rows[:, total] = 0x80
            seg_rows[:, 56:64] = np.frombuffer(
                (total * 8).to_bytes(8, endian_value), dtype=np.uint8
            )
            words = self._words[offset : offset + seg]
            np.copyto(words, seg_rows.view(view_dtype))
            segments.append(PackedSegment(pos, length, words, chars))
            offset += seg
            pos += seg
            remaining -= seg
        return segments

    # ------------------------------------------------------------------ #
    def _fill_chars(
        self,
        n: int,
        length: int,
        within: int,
        count: int,
        order: KeyOrder,
        table: np.ndarray,
        chars: np.ndarray,
    ) -> None:
        """Write the key bytes of *count* consecutive ids into *chars*."""
        if length > self._digits.shape[1]:
            # Rare: a longer stratum than planned; grow once, keep steady state.
            self._digits = np.empty((self.capacity, length), dtype=np.int64)
        if n == 1:
            chars[...] = table[0]
            return
        if n**length <= 2**63:
            values = self._values[:count]
            digits = self._digits[:count, :length]
            np.add(self._iota[:count], within, out=values)
            powers = self._powers.get((n, length))
            if powers is None:
                powers = n ** np.arange(length, dtype=np.int64)
                self._powers[(n, length)] = powers
            np.floor_divide(values[:, None], powers[None, :], out=digits)
            np.remainder(digits, n, out=digits)
        else:
            # Exact-integer fallback for gigantic strata (allocates; cold path).
            digits = _stratum_digits(n, length, within, count, KeyOrder.PREFIX_FASTEST)
        if order is KeyOrder.PREFIX_FASTEST:
            np.take(table, digits, out=chars)
        else:
            np.take(table, digits, out=chars[:, ::-1])


# ---------------------------------------------------------------------- #
# Internals
# ---------------------------------------------------------------------- #


def _stratum_digits(
    n: int, length: int, within: int, count: int, order: KeyOrder
) -> np.ndarray:
    """Digit matrix for *count* consecutive within-stratum indices."""
    if length == 0:
        return np.zeros((count, 0), dtype=np.int64)
    if count == 0:
        return np.zeros((0, length), dtype=np.int64)
    if n == 1:
        return np.zeros((count, length), dtype=np.int64)
    # Fast path: the whole stratum fits in signed 64-bit arithmetic.
    if n**length <= 2**63:
        values = within + np.arange(count, dtype=np.int64)
        powers = n ** np.arange(length, dtype=np.int64)  # n^0 .. n^(L-1)
        # Least-significant digit first: digit p = (v // n^p) % n.
        lsd_first = (values[:, None] // powers[None, :]) % n
        if order is KeyOrder.PREFIX_FASTEST:
            return lsd_first
        return lsd_first[:, ::-1]
    # Exact-integer fallback for gigantic strata: peel digits column by
    # column with Python ints, still vectorizing across the batch via
    # object arrays only at the boundaries.  Cold path — only strata
    # beyond 2**63 land here, so the comprehensions are acceptable.
    digits = np.empty((count, length), dtype=np.int64)
    value = within
    row_values = [value + i for i in range(count)]  # repro: allow(hot-path-allocation)
    for p in range(length):
        col = [v % n for v in row_values]  # repro: allow(hot-path-allocation)
        digits[:, p] = col
        row_values = [v // n for v in row_values]  # repro: allow(hot-path-allocation)
    if order is KeyOrder.SUFFIX_FASTEST:
        digits = digits[:, ::-1]
    return np.ascontiguousarray(digits)
