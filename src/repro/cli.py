"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``crack``     brute-force a hex digest on local CPU cores
``estimate``  time-to-exhaust a search space on the paper's GPU network
``mine``      scan a nonce interval for a proof-of-work winner
``tables``    reprint the paper's tables from the reproduction models
``devices``   list the modelled GPU catalog with per-kernel throughput
``serve``     run the job-service daemon (``--listen`` adds the HTTP gateway)
``jobs``      submit/status/pause/resume/cancel/tail jobs, local or remote
``tune``      sweep dispatch knobs on this host and lock in the winners

Exit codes (documented in docs/API.md; ``repro jobs`` maps HTTP statuses
onto the same codes so shell scripts behave identically against a local
store and a remote gateway)::

    0  success / password found
    1  clean miss (no preimage; empty store listing)
    2  usage error: malformed input, illegal transition, duplicate id
    3  unknown job id                       (HTTP 404)
    4  daemon/gateway unreachable           (connection failure)
    5  authentication or authorization      (HTTP 401/403)
    6  quota or rate limit exceeded         (HTTP 429)
    130 interrupted (checkpoint written)
"""

from __future__ import annotations

import argparse
import os
import sys

EXIT_OK = 0
EXIT_MISS = 1
EXIT_USAGE = 2
EXIT_NO_JOB = 3
EXIT_NO_DAEMON = 4
EXIT_AUTH = 5
EXIT_LIMIT = 6
EXIT_INTERRUPTED = 130

from repro.keyspace import (
    ALNUM_LOWER,
    ALNUM_MIXED,
    ALPHA_LOWER,
    ALPHA_MIXED,
    ASCII_PRINTABLE,
    Charset,
    DIGITS,
    HEX_LOWER,
    Interval,
)
from repro.kernels.variants import HashAlgorithm

CHARSETS: dict[str, Charset] = {
    "lower": ALPHA_LOWER,
    "alpha": ALPHA_MIXED,
    "digits": DIGITS,
    "alnum-lower": ALNUM_LOWER,
    "alnum": ALNUM_MIXED,
    "hex": HEX_LOWER,
    "printable": ASCII_PRINTABLE,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Exhaustive key search (IPPS 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    crack = sub.add_parser("crack", help="brute-force a hex digest on CPU cores")
    crack.add_argument("digest", help="target digest, hex (32 chars MD5/NTLM, 40 SHA1)")
    crack.add_argument("--algorithm", choices=["md5", "sha1", "ntlm"], default="md5")
    crack.add_argument("--charset", choices=sorted(CHARSETS), default="lower")
    crack.add_argument("--min-length", type=int, default=1)
    crack.add_argument("--max-length", type=int, default=4)
    crack.add_argument("--suffix", default="", help="salt appended to each key")
    crack.add_argument("--prefix", default="", help="salt prepended to each key")
    crack.add_argument("--workers", type=int, default=1)
    crack.add_argument(
        "--backend",
        choices=["auto", "serial", "thread", "process"],
        default="auto",
        help="execution backend (auto: process pool when --workers > 1)",
    )
    crack.add_argument("--batch-size", type=int, default=1 << 14)
    crack.add_argument(
        "--gather-batch",
        type=int,
        default=None,
        help="chunks a pool worker executes per gather reply "
        "(default: the tuned or heuristic span width)",
    )
    crack.add_argument(
        "--tuning-file",
        metavar="PATH",
        default=None,
        help="tuning.json of measured-best dispatch configs to consult "
        "(default: $REPRO_TUNING_FILE or ./tuning.json; see 'repro tune')",
    )
    crack.add_argument(
        "--adaptive",
        action="store_true",
        help="size chunks by each worker's measured throughput (tuning step)",
    )
    crack.add_argument("--all", action="store_true", help="find every preimage, not just the first")
    crack.add_argument(
        "--metrics",
        choices=["json", "summary", "off"],
        default="off",
        help="emit run metrics (repro.obs): 'json' prints the versioned "
        "payload, 'summary' a human-readable phase/throughput table",
    )
    crack.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="also write the metrics JSON payload to PATH",
    )
    crack.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="persist repro-job/v1 checkpoints under DIR: the run survives "
        "SIGINT/SIGTERM/kill and rerunning the same command resumes it",
    )
    crack.add_argument(
        "--job-id",
        default=None,
        help="job id inside --checkpoint-dir (default: derived from the digest)",
    )
    crack.add_argument(
        "--chunk-size",
        type=int,
        default=1 << 12,
        help="checkpointed dispatch granularity in candidates (chunk boundary "
        "= preemption + checkpoint boundary)",
    )
    crack.add_argument(
        "--cluster",
        metavar="tcp://HOST:PORT",
        default=None,
        help="run as a TCP cluster master: listen on HOST:PORT and dispatch "
        "to connected 'repro worker' nodes (port 0 = pick a free port)",
    )
    crack.add_argument(
        "--cluster-workers",
        type=int,
        default=1,
        help="wait for at least this many workers before dispatching",
    )
    crack.add_argument(
        "--cluster-wait",
        type=float,
        default=30.0,
        help="seconds to wait for --cluster-workers to connect",
    )
    crack.add_argument(
        "--fallback",
        choices=["none", "local"],
        default="none",
        help="when every remote worker dies: 'local' finishes the remaining "
        "keyspace on this machine instead of failing the run",
    )
    crack.add_argument(
        "--masters",
        type=int,
        default=1,
        help="shard the keyspace across N elastic masters (each owning a "
        "contiguous shard) with inter-master work stealing",
    )
    crack.add_argument(
        "--no-steal",
        action="store_true",
        help="disable inter-master work stealing in --masters mode",
    )

    worker = sub.add_parser(
        "worker", help="run a TCP worker node serving a cluster master"
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="master address (tcp://HOST:PORT or HOST:PORT)",
    )
    worker.add_argument(
        "--name", default=None, help="worker name (default: <hostname>-<pid>)"
    )
    worker.add_argument(
        "--backend", choices=["serial", "thread", "process"], default="serial"
    )
    worker.add_argument(
        "--workers", type=int, default=1, help="pool size inside this node"
    )
    worker.add_argument("--batch-size", type=int, default=1 << 14)
    worker.add_argument("--heartbeat-interval", type=float, default=0.2)
    worker.add_argument(
        "--slowdown",
        type=float,
        default=0.0,
        help="artificial per-chunk delay in seconds (straggler injection)",
    )
    worker.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="inject send-side faults, e.g. 'drop=0.1,corrupt=0.05,seed=7' "
        "(knobs: drop, delay, delay-seconds, duplicate, corrupt, seed)",
    )
    worker.add_argument(
        "--max-failures",
        type=int,
        default=8,
        help="consecutive connection failures before the worker gives up",
    )

    estimate = sub.add_parser("estimate", help="time to exhaust a space on the paper network")
    estimate.add_argument("--charset", choices=sorted(CHARSETS), default="alnum")
    estimate.add_argument("--min-length", type=int, default=1)
    estimate.add_argument("--max-length", type=int, default=8)
    estimate.add_argument("--algorithm", choices=["md5", "sha1"], default="md5")

    mine = sub.add_parser("mine", help="scan nonces for a proof-of-work winner")
    mine.add_argument("--difficulty", type=int, default=16, help="required leading zero bits")
    mine.add_argument("--scan", type=int, default=1 << 20, help="nonces to scan")
    mine.add_argument("--seed", type=int, default=0, help="header seed")

    mask = sub.add_parser("mask", help="crack a digest over a hashcat-style mask")
    mask.add_argument("digest", help="target digest, hex")
    mask.add_argument("mask", help="mask, e.g. '?u?l?l?d?d'")
    mask.add_argument("--algorithm", choices=["md5", "sha1"], default="md5")
    mask.add_argument("--suffix", default="", help="salt appended to each key")
    mask.add_argument("--prefix", default="", help="salt prepended to each key")

    serve = sub.add_parser("serve", help="run the job-service daemon over a store")
    serve.add_argument("store", help="job store directory (created if missing)")
    serve.add_argument(
        "--backend",
        choices=["auto", "serial", "thread", "process"],
        default="serial",
        help="shared execution pool every job's chunks run on",
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument(
        "--quantum",
        type=int,
        default=None,
        help="candidates per priority point per scheduling round "
        "(default: twice each job's chunk size)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=4,
        help="gathered chunks between durable checkpoint writes",
    )
    serve.add_argument(
        "--checkpoint-interval",
        type=float,
        default=0.05,
        help="minimum seconds between mid-slice checkpoint fsyncs "
        "(slice-end checkpoints are never skipped; 0 = every N chunks)",
    )
    serve.add_argument(
        "--gather-batch",
        type=int,
        default=None,
        help="chunks a pool worker executes per gather reply",
    )
    serve.add_argument(
        "--poll", type=float, default=0.25, help="idle sleep between store polls, seconds"
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="exit when no runnable jobs remain instead of idling for new ones",
    )
    serve.add_argument(
        "--max-rounds", type=int, default=None, help="hard bound on scheduling rounds"
    )
    serve.add_argument(
        "--metrics",
        choices=["json", "summary", "off"],
        default="off",
        help="emit the scheduler-level decision/checkpoint/preemption timeline",
    )
    serve.add_argument("--metrics-out", metavar="PATH", default=None)
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="also mount the multi-tenant HTTP gateway (repro-api/v1) on "
        "this address (port 0 = pick a free port); requires --api-keys",
    )
    serve.add_argument(
        "--api-keys",
        metavar="PATH",
        default=None,
        help="repro-api-keys/v1 tenant/key config file for --listen",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="gateway overload protection: concurrent requests executing "
        "before new arrivals queue (default 64)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=128,
        help="gateway overload protection: requests allowed to wait behind "
        "--max-inflight before the rest are shed with 429 + Retry-After "
        "(default 128)",
    )
    serve.add_argument(
        "--cluster",
        metavar="tcp://HOST:PORT",
        default=None,
        help="execute every job on an elastic TCP cluster: listen on "
        "HOST:PORT and dispatch to 'repro worker' nodes, which may "
        "join or leave mid-run (port 0 = pick a free port)",
    )
    serve.add_argument(
        "--cluster-workers",
        type=int,
        default=1,
        help="wait for at least this many workers before scheduling",
    )
    serve.add_argument(
        "--cluster-wait",
        type=float,
        default=30.0,
        help="seconds to wait for --cluster-workers to connect",
    )
    serve.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="TESTING ONLY: inject seeded storage faults into every store "
        "write, e.g. 'torn=0.05,enospc=0.02,eio=0.02,fsync-lie=0.05,seed=7' "
        "(see repro.service.faultfs)",
    )

    def _connect_args(p):
        p.add_argument(
            "--connect",
            metavar="http://HOST:PORT",
            default=None,
            help="drive a remote gateway instead of a local store directory",
        )
        p.add_argument(
            "--api-key",
            default=None,
            help="gateway API key (default: $REPRO_API_KEY)",
        )

    jobs = sub.add_parser(
        "jobs", help="submit/inspect/control jobs, local store or remote gateway"
    )
    jsub = jobs.add_subparsers(dest="jobs_command", required=True)
    submit = jsub.add_parser("submit", help="queue a new crack job")
    submit.add_argument(
        "store",
        nargs="?",
        default=None,
        help="job store directory (created if missing; omit with --connect)",
    )
    submit.add_argument("digest", help="target digest, hex (32 chars MD5, 40 SHA1)")
    _connect_args(submit)
    submit.add_argument("--algorithm", choices=["md5", "sha1"], default="md5")
    submit.add_argument("--charset", choices=sorted(CHARSETS), default="lower")
    submit.add_argument("--min-length", type=int, default=1)
    submit.add_argument("--max-length", type=int, default=4)
    submit.add_argument("--prefix", default="", help="salt prepended to each key")
    submit.add_argument("--suffix", default="", help="salt appended to each key")
    submit.add_argument("--batch-size", type=int, default=1 << 14)
    submit.add_argument("--chunk-size", type=int, default=1 << 12)
    submit.add_argument(
        "--all", action="store_true", help="find every preimage, not just the first"
    )
    submit.add_argument(
        "--backend", choices=["auto", "serial", "thread", "process"], default="serial"
    )
    submit.add_argument("--workers", type=int, default=1)
    submit.add_argument("--priority", type=int, default=1, help="fair-share weight (>= 1)")
    submit.add_argument("--job-id", default=None, help="explicit id (default: derived)")

    status = jsub.add_parser("status", help="per-job progress from the persisted store")
    status.add_argument("store", nargs="?", default=None)
    status.add_argument("id", nargs="?", default=None, help="one job (default: all)")
    status.add_argument(
        "--metrics",
        choices=["json", "summary", "off"],
        default="off",
        help="also show the job's persisted metrics.json (single-job form only)",
    )
    status.add_argument("--metrics-out", metavar="PATH", default=None)
    _connect_args(status)

    for name, text in (
        ("pause", "park a job (checkpointed, resumable)"),
        ("resume", "requeue a paused/cancelled/failed job from its checkpoint"),
        ("cancel", "stop a job (resumable with 'jobs resume')"),
    ):
        control = jsub.add_parser(name, help=text)
        control.add_argument("store", nargs="?", default=None)
        control.add_argument("id")
        _connect_args(control)

    tail = jsub.add_parser("tail", help="last lines of a job's event timeline")
    tail.add_argument("store", nargs="?", default=None)
    tail.add_argument("id")
    tail.add_argument("-n", "--lines", type=int, default=10)
    _connect_args(tail)

    quota = jsub.add_parser(
        "quota", help="a tenant's quota/rate state (gateway only)"
    )
    quota.add_argument("tenant", help="the tenant name your API key maps to")
    _connect_args(quota)

    tune = sub.add_parser(
        "tune",
        help="sweep dispatch knobs on this host and lock in the winners",
    )
    tune.add_argument(
        "--space", type=int, default=200_000,
        help="candidates per grid point (larger = less noisy, slower)",
    )
    tune.add_argument("--repeats", type=int, default=2, help="timed runs per point, best kept")
    tune.add_argument("--batch-size", type=int, default=1 << 14)
    tune.add_argument(
        "--backends", default="thread,process",
        help="comma-separated pool backends to grid (default: thread,process)",
    )
    tune.add_argument(
        "--workers", default=None,
        help="comma-separated worker counts to grid (default: host-derived)",
    )
    tune.add_argument(
        "--out", metavar="PATH", default=None,
        help="tuning.json to update (default: $REPRO_TUNING_FILE or ./tuning.json)",
    )
    tune.add_argument(
        "--summary", metavar="PATH", default=None,
        help="also write the markdown sweep report to PATH",
    )
    tune.add_argument(
        "--dry-run", action="store_true",
        help="measure and report but do not write the tuning file",
    )

    fsck = sub.add_parser(
        "fsck",
        help="scan a job store for corrupt records; --repair restores from "
        "the last consistent checkpoint (docs/FAULT_TOLERANCE.md)",
    )
    fsck.add_argument("store", help="job store directory to scan")
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt artifacts under <store>/.quarantine and "
        "restore checkpoints from the last consistent generation",
    )
    fsck.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if the scan produced any finding (CI gate: a healthy "
        "store must be perfectly clean)",
    )
    fsck.add_argument(
        "--json",
        action="store_true",
        help="print the full repro-fsck/v1 report as JSON instead of a summary",
    )

    check = sub.add_parser(
        "check",
        help="run the domain static-analysis suite (docs/STATIC_ANALYSIS.md)",
        add_help=False,
    )
    check.add_argument("check_args", nargs=argparse.REMAINDER)

    sub.add_parser("tables", help="reprint the paper's tables from the models")
    sub.add_parser("devices", help="list the GPU catalog with modelled throughput")
    sub.add_parser("report", help="regenerate the full paper-vs-measured report")
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["check"]:
        # Delegated wholesale: the checks CLI owns its flags, and
        # argparse.REMAINDER cannot capture leading options (bpo-17050).
        from repro.checks.cli import main as check_main

        return check_main(argv[1:])
    args = build_parser().parse_args(argv)
    return {
        "crack": _cmd_crack,
        "worker": _cmd_worker,
        "estimate": _cmd_estimate,
        "mine": _cmd_mine,
        "mask": _cmd_mask,
        "serve": _cmd_serve,
        "jobs": _cmd_jobs,
        "fsck": _cmd_fsck,
        "tune": _cmd_tune,
        "check": _cmd_check,
        "tables": _cmd_tables,
        "devices": _cmd_devices,
        "report": _cmd_report,
    }[args.command](args)


# ---------------------------------------------------------------------- #


def _cmd_crack(args) -> int:
    from repro.apps.cracking import CrackTarget
    from repro.core.session import CrackingSession

    try:
        digest = bytes.fromhex(args.digest)
    except ValueError:
        print("error: digest must be hexadecimal", file=sys.stderr)
        return 2
    if args.cluster and args.checkpoint_dir:
        print(
            "error: --cluster and --checkpoint-dir are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.masters < 1:
        print("error: --masters must be >= 1", file=sys.stderr)
        return 2
    if args.masters > 1 and (args.cluster or args.checkpoint_dir):
        print(
            "error: --masters is mutually exclusive with --cluster "
            "and --checkpoint-dir",
            file=sys.stderr,
        )
        return 2
    if args.tuning_file:
        from repro.tuning import TUNING_FILE_ENV

        os.environ[TUNING_FILE_ENV] = args.tuning_file
    if args.algorithm == "ntlm":
        if args.checkpoint_dir:
            print(
                "error: --checkpoint-dir supports md5/sha1 targets only",
                file=sys.stderr,
            )
            return 2
        if args.cluster or args.masters > 1:
            from repro.apps.ntlm import NTLMTarget

            if args.prefix or args.suffix:
                print("error: NTLM hashes are unsalted by definition", file=sys.stderr)
                return 2
            try:
                ntlm = NTLMTarget(
                    digest=digest,
                    charset=CHARSETS[args.charset],
                    min_length=args.min_length,
                    max_length=args.max_length,
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if args.cluster:
                return _crack_cluster(args, ntlm)
            return _crack_elastic(args, ntlm)
        return _crack_ntlm(args, digest)
    algorithm = HashAlgorithm(args.algorithm)
    try:
        target = CrackTarget(
            algorithm=algorithm,
            digest=digest,
            charset=CHARSETS[args.charset],
            min_length=args.min_length,
            max_length=args.max_length,
            prefix=args.prefix.encode(),
            suffix=args.suffix.encode(),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.cluster:
        return _crack_cluster(args, target)
    if args.masters > 1:
        return _crack_elastic(args, target)
    if args.checkpoint_dir:
        if args.adaptive:
            print(
                "error: --adaptive and --checkpoint-dir are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        return _crack_checkpointed(args, target)
    print(f"searching {target.space_size:,} candidates "
          f"({args.charset}, {args.min_length}-{args.max_length} chars)")
    recorder = _make_recorder(args)
    try:
        result = CrackingSession(target).run(
            args.backend,
            workers=args.workers,
            stop_on_first=not args.all,
            batch_size=args.batch_size,
            adaptive=args.adaptive,
            recorder=recorder,
            gather_batch=args.gather_batch,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"tested {result.tested:,} in {result.elapsed:.2f}s "
          f"({result.mkeys_per_second:.2f} Mkeys/s, {result.workers} workers, "
          f"{result.backend} backend)")
    _emit_metrics(args, result.metrics)
    if result.found:
        for index, key in result.found:
            print(f"FOUND: {key!r} (id {index})")
        return 0
    print("no preimage in the window")
    return 1


def _crack_cluster(args, target) -> int:
    """Run the crack as a TCP cluster master (tentpole: real transport)."""
    from repro.cluster.protocol import ControlMessage
    from repro.cluster.runtime import AllWorkersDeadError, DistributedMaster
    from repro.cluster.transport import TcpMasterTransport, parse_address

    try:
        host, port = parse_address(args.cluster)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    recorder = _make_recorder(args)
    try:
        transport = TcpMasterTransport(host=host, port=port, recorder=recorder)
    except OSError as exc:
        print(f"error: cannot listen on {host}:{port}: {exc}", file=sys.stderr)
        return 2
    transport.start()
    bound_host, bound_port = transport.address
    print(f"cluster master listening on {bound_host}:{bound_port}")
    try:
        if args.cluster_workers > 0:
            print(
                f"waiting up to {args.cluster_wait:.0f}s for "
                f"{args.cluster_workers} worker(s)..."
            )
            if not transport.wait_for_workers(
                args.cluster_workers, timeout=args.cluster_wait
            ):
                print(
                    f"error: only {len(transport.workers())} worker(s) "
                    "connected in time",
                    file=sys.stderr,
                )
                return 1
        print(f"searching {target.space_size:,} candidates over "
              f"{len(transport.workers())} worker(s)")
        master = DistributedMaster(
            target,
            transport=transport,
            chunk_size=args.chunk_size,
            adaptive=args.adaptive,
            fallback=None if args.fallback == "none" else args.fallback,
        )
        try:
            result = master.run(stop_on_first=not args.all, recorder=recorder)
        except AllWorkersDeadError as exc:
            done = exc.progress.done_count if exc.progress is not None else 0
            print(
                f"error: all workers died before completion "
                f"({done:,} candidates covered); rerun with --fallback local "
                "to finish on this machine",
                file=sys.stderr,
            )
            if exc.partial is not None:
                _emit_metrics(args, exc.partial.metrics)
            return 1
        transport.broadcast(ControlMessage("shutdown", "run complete").encode())
    finally:
        transport.close()
    print(f"tested {result.tested:,} in {result.elapsed:.2f}s "
          f"({result.mkeys_per_second:.2f} Mkeys/s, {result.chunks} chunks, "
          f"{result.heartbeats} heartbeats, {result.requeued:,} requeued)")
    if result.dead_workers:
        print(f"dead workers: {', '.join(sorted(set(result.dead_workers)))}")
    if result.fallback_used:
        print("remote workers lost; remaining keyspace finished locally")
    _emit_metrics(args, result.metrics)
    if result.found:
        for index, key in result.found:
            print(f"FOUND: {key!r} (id {index})")
        return 0
    print("no preimage in the window")
    return 1


def _crack_elastic(args, target) -> int:
    """Run the crack across N in-process elastic masters (one shard each)."""
    from repro.cluster.elastic import ShardCoordinator
    from repro.cluster.runtime import AllWorkersDeadError

    stealing = not args.no_steal
    print(f"searching {target.space_size:,} candidates over {args.masters} "
          f"master(s), {args.workers or 2} worker(s) each "
          f"(stealing {'on' if stealing else 'off'})")
    recorder = _make_recorder(args)
    try:
        coordinator = ShardCoordinator(
            target,
            masters=args.masters,
            workers_per_master=args.workers or 2,
            chunk_size=args.chunk_size,
            stealing=stealing,
            adaptive=args.adaptive,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = coordinator.run(stop_on_first=not args.all, recorder=recorder)
    except AllWorkersDeadError as exc:
        done = exc.progress.done_count if exc.progress is not None else 0
        print(
            f"error: every lane lost all its workers before completion "
            f"({done:,} candidates covered)",
            file=sys.stderr,
        )
        return 1
    print(f"tested {result.tested:,} in {result.elapsed:.2f}s "
          f"({result.mkeys_per_second:.2f} Mkeys/s, {result.chunks} chunks, "
          f"{result.steals} steals, {result.stolen_candidates:,} candidates "
          f"restolen, {result.duplicates:,} duplicate replies)")
    _emit_metrics(args, result.metrics)
    if result.found:
        for index, key in result.found:
            print(f"FOUND: {key!r} (id {index})")
        return 0
    print("no preimage in the window")
    return 1


def _cmd_worker(args) -> int:
    import os
    import socket as socket_mod

    from repro.cluster.chaos import ChaosConfig
    from repro.cluster.transport import EvictedError, WorkerClient, parse_address

    try:
        host, port = parse_address(args.connect)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    chaos = None
    if args.chaos:
        try:
            chaos = ChaosConfig.parse(args.chaos)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    name = args.name or f"{socket_mod.gethostname()}-{os.getpid()}"
    client = WorkerClient(
        name,
        host,
        port,
        backend=args.backend,
        pool_workers=args.workers,
        batch_size=args.batch_size,
        heartbeat_interval=args.heartbeat_interval,
        max_failures=args.max_failures,
        chaos=chaos,
        slowdown=args.slowdown,
    )
    print(f"worker {name!r} serving {host}:{port}")
    try:
        stats = client.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        client.stop()
        stats = client.stats
    except EvictedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        stats = client.stats
        print(
            f"worker {name!r} evicted after {stats.chunks} chunks, "
            f"{stats.tested:,} tested"
        )
        return 1
    print(
        f"worker {name!r} done: {stats.chunks} chunks, {stats.tested:,} tested, "
        f"{stats.cancelled} cancelled, {stats.reconnects} reconnects"
    )
    return 0


def _make_recorder(args):
    """One recorder when any metrics output is requested, else None."""
    if getattr(args, "metrics", "off") == "off" and not getattr(args, "metrics_out", None):
        return None
    from repro.obs import Recorder

    return Recorder()


def _emit_metrics(args, payload) -> None:
    """Print / write the recorded metrics per the --metrics flags."""
    if payload is None:
        return
    import json

    from repro.obs import render_summary, validate_metrics

    problems = validate_metrics(payload)
    for problem in problems:  # pragma: no cover - defensive
        print(f"metrics schema error: {problem}", file=sys.stderr)
    if args.metrics == "json":
        print(json.dumps(payload, indent=2))
    elif args.metrics == "summary":
        print(render_summary(payload))
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"metrics written to {args.metrics_out}")


def _crack_ntlm(args, digest: bytes) -> int:
    from repro.apps.ntlm import NTLMCrackStats, NTLMTarget, crack_ntlm

    if args.prefix or args.suffix:
        print("error: NTLM hashes are unsalted by definition", file=sys.stderr)
        return 2
    try:
        target = NTLMTarget(
            digest=digest,
            charset=CHARSETS[args.charset],
            min_length=args.min_length,
            max_length=args.max_length,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"searching {target.space_size:,} candidates (NTLM, {args.charset})")
    stats = NTLMCrackStats()
    matches = crack_ntlm(target, stats=stats)
    print(f"tested {stats.tested:,} in {stats.elapsed:.2f}s "
          f"({stats.mkeys_per_second:.2f} Mkeys/s)")
    recorder = _make_recorder(args)
    if recorder is not None:
        from repro.obs.schema import MetricNames

        recorder.counter(MetricNames.ENGINE_TESTED, stats.tested, backend="ntlm")
        recorder.span_record(MetricNames.PHASE_SEARCH, stats.elapsed, backend="ntlm")
        if matches:
            recorder.counter(MetricNames.ENGINE_HITS, len(matches), backend="ntlm")
        _emit_metrics(args, recorder.export())
    for index, key in matches:
        print(f"FOUND: {key!r} (id {index})")
    if not matches:
        print("no preimage in the window")
        return 1
    return 0


def _crack_checkpointed(args, target) -> int:
    """Resumable crack: durable ``repro-job/v1`` checkpoints + signal drain.

    SIGINT/SIGTERM stop the scan cooperatively at the next chunk boundary
    and a final checkpoint is written before exit (exit code 130);
    rerunning the identical command resumes from it.  ``kill -9`` loses at
    most the chunks gathered since the last periodic checkpoint.
    """
    import signal
    import threading

    from repro.core.progress import CorruptCheckpointError
    from repro.core.session import CrackingSession
    from repro.service import JobSpec, JobStore

    spec = JobSpec(
        digest=target.digest,
        charset=target.charset.symbols,
        algorithm=args.algorithm,
        min_length=args.min_length,
        max_length=args.max_length,
        prefix=target.prefix,
        suffix=target.suffix,
        batch_size=args.batch_size,
        chunk_size=args.chunk_size,
        stop_on_first=not args.all,
        backend=args.backend,
        workers=args.workers,
    )
    store = JobStore(args.checkpoint_dir)
    job_id = args.job_id or f"crack-{target.digest.hex()[:12]}"
    try:
        record = store.load(job_id)
        if record.spec != spec:
            print(
                f"error: job {job_id!r} exists with different parameters; "
                "rerun the original command or pass a fresh --job-id",
                file=sys.stderr,
            )
            return 2
        log = store.load_progress(job_id)
        print(f"resuming job {job_id}: {log.done_count:,}/{log.total:,} already tested")
    except KeyError:
        record = store.submit(spec, job_id=job_id)
        log = store.load_progress(job_id)
        print(f"job {job_id}: checkpointing under {store.job_dir(job_id)}")
    except CorruptCheckpointError as exc:
        # The live checkpoint is torn; fsck quarantines it and restores
        # the last consistent generation, so the resume loses at most the
        # chunks gathered since that checkpoint — never the whole run.
        from repro.service.fsck import fsck_store

        print(f"checkpoint corrupt ({exc}); repairing store", file=sys.stderr)
        fsck_store(args.checkpoint_dir, repair=True)
        try:
            record = store.load(job_id)
            log = store.load_progress(job_id)
        except (KeyError, CorruptCheckpointError, ValueError) as unrepaired:
            print(f"error: {unrepaired}", file=sys.stderr)
            return 2
        print(
            f"resuming job {job_id}: {log.done_count:,}/{log.total:,} recovered "
            "from the last consistent checkpoint"
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if log.is_complete or (spec.stop_on_first and log.found):
        print("job already complete; nothing to resume")
        for index, key in log.found:
            print(f"FOUND: {key!r} (id {index})")
        return 0 if log.found else 1

    stop = threading.Event()

    def _drain_handler(signum, frame):  # pragma: no cover - signal path
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _drain_handler)
        except ValueError:  # not the main thread
            break
    recorder = _make_recorder(args)
    if record.state != "running":
        store.set_state(job_id, "running")
    try:
        result = CrackingSession(target).run(
            args.backend,
            workers=args.workers,
            stop_on_first=spec.stop_on_first,
            batch_size=spec.batch_size,
            recorder=recorder,
            progress=log,
            checkpoint=store.checkpoint_writer(job_id),
            chunk_size=spec.chunk_size,
            preempt=stop.is_set,
            gather_batch=args.gather_batch,
        )
    except ValueError as exc:
        store.set_state(job_id, "failed", str(exc))
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    if result.metrics is not None:
        store.save_metrics(job_id, result.metrics)
    print(f"tested {result.tested:,} this run in {result.elapsed:.2f}s "
          f"({result.backend} backend); ledger {log.done_count:,}/{log.total:,}")
    _emit_metrics(args, result.metrics)
    if stop.is_set():
        store.set_state(job_id, "queued", "interrupted; checkpoint written")
        store.append_event(job_id, f"interrupted after {result.tested} this run")
        print("interrupted: checkpoint written; rerun the same command to resume")
        return 130
    if log.found:
        store.set_state(job_id, "done", f"{len(log.found)} found")
        for index, key in log.found:
            print(f"FOUND: {key!r} (id {index})")
        return 0
    store.set_state(job_id, "done", "0 found")
    print("no preimage in the window")
    return 1


def _cmd_serve(args) -> int:
    from repro.service import JobStore, Scheduler, serve

    if args.listen and not args.api_keys:
        print("error: --listen requires --api-keys", file=sys.stderr)
        return EXIT_USAGE
    recorder = _make_recorder(args)
    faults = None
    if args.faults:
        from repro.service.faultfs import FaultConfig, FaultInjector

        try:
            faults = FaultInjector(FaultConfig.parse(args.faults), recorder=recorder)
        except ValueError as exc:
            print(f"error: --faults: {exc}", file=sys.stderr)
            return EXIT_USAGE
        print(f"WARNING: storage fault injection active ({args.faults})", flush=True)
    store = JobStore(args.store, faults=faults)
    scheduler = None
    transport = None
    if args.cluster:
        from repro.cluster.elastic import ElasticBackend
        from repro.cluster.transport import TcpMasterTransport, parse_address

        try:
            host, port = parse_address(args.cluster)
            transport = TcpMasterTransport(host=host, port=port, recorder=recorder)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        transport.start()
        bound_host, bound_port = transport.address
        print(f"cluster master listening on {bound_host}:{bound_port}", flush=True)
        if args.cluster_workers > 0 and not transport.wait_for_workers(
            args.cluster_workers, timeout=args.cluster_wait
        ):
            print(
                f"error: only {len(transport.workers())} worker(s) "
                "connected in time",
                file=sys.stderr,
            )
            transport.close()
            return 1
        try:
            scheduler = Scheduler(
                store,
                backend=ElasticBackend(transport, adaptive=True),
                quantum=args.quantum,
                checkpoint_every=args.checkpoint_every,
                checkpoint_interval=args.checkpoint_interval,
                gather_batch=args.gather_batch,
                recorder=recorder,
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            transport.close()
            return EXIT_USAGE
    try:
        summary = serve(
            store,
            backend=args.backend,
            workers=args.workers,
            quantum=args.quantum,
            checkpoint_every=args.checkpoint_every,
            checkpoint_interval=args.checkpoint_interval,
            gather_batch=args.gather_batch,
            poll_interval=args.poll,
            once=args.once,
            max_rounds=args.max_rounds,
            recorder=recorder,
            scheduler=scheduler,
            listen=args.listen,
            api_keys=args.api_keys,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            on_api_start=lambda address: print(
                f"gateway listening on http://{address[0]}:{address[1]}",
                flush=True,
            ),
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        if transport is not None:
            from repro.cluster.protocol import ControlMessage

            transport.broadcast(
                ControlMessage("shutdown", "service drained").encode()
            )
            transport.close()
    outcome = "drained" if summary.drained else "idle"
    print(f"serve: {summary.rounds} rounds, exited {outcome}")
    for state in sorted(summary.states):
        print(f"  {state:9s} {summary.states[state]}")
    _emit_metrics(args, summary.metrics)
    return 0


def _cmd_fsck(args) -> int:
    """Scan (and optionally repair) a job store; print a repro-fsck/v1 report.

    Exit codes: 0 = scan ran (clean, or findings merely reported /
    repaired), 1 = ``--strict`` and the scan produced findings,
    2 = usage error (store missing, internal report invalid).
    """
    import json as _json
    from pathlib import Path

    from repro.service.fsck import fsck_store, validate_fsck_report

    if not args.store:
        print("error: fsck needs a store path", file=sys.stderr)
        return EXIT_USAGE
    root = Path(args.store)
    if not root.exists():
        print(f"error: no store at {root}", file=sys.stderr)
        return EXIT_USAGE
    report = fsck_store(root, repair=args.repair)
    problems = validate_fsck_report(report)
    if problems:  # a report we would not accept ourselves is a bug
        print(f"error: internal: invalid fsck report: {problems[0]}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(_json.dumps(report, indent=2))
    else:
        print(
            f"fsck {root}: {report['scanned']} job(s) scanned, "
            f"{len(report['findings'])} finding(s), "
            f"{report['repaired']} repaired, {report['quarantined']} quarantined, "
            f"{report['removed']} removed"
        )
        for finding in report["findings"]:
            print(
                f"  [{finding['artifact']}] {finding['path']}: "
                f"{finding['problem']} -> {finding['action']}"
            )
    if report["clean"] and not args.json:
        print("store is clean")
    if args.strict and report["findings"]:
        return 1
    return EXIT_OK


def _cmd_tune(args) -> int:
    """Grid the dispatch knobs, print the report, persist the winners."""
    from pathlib import Path

    from repro.tuning import TuningStore, default_tuning_path
    from repro.tuning.sweep import apply_best, render_summary, sweep_dispatch

    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    workers_grid = None
    if args.workers:
        try:
            workers_grid = tuple(
                int(w) for w in str(args.workers).split(",") if w.strip()
            )
        except ValueError:
            print("error: --workers must be comma-separated integers", file=sys.stderr)
            return 2
    try:
        report = sweep_dispatch(
            space=args.space,
            backends=backends,
            workers_grid=workers_grid,
            batch_size=args.batch_size,
            repeats=args.repeats,
            progress=lambda line: print(f"  {line}", file=sys.stderr),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    path = Path(args.out) if args.out else default_tuning_path()
    print(render_summary(report, store_path=None if args.dry_run else path))
    if args.summary:
        Path(args.summary).write_text(render_summary(report, store_path=path))
        print(f"summary written to {args.summary}")
    if args.dry_run:
        print("dry run: tuning file not written")
        return 0
    store = TuningStore(path)
    changed = apply_best(report, store)
    if changed:
        for entry in changed:
            print(
                f"locked in: {entry.backend} w={entry.workers} "
                f"chunk={entry.chunk_size} gather={entry.gather_batch} "
                f"({entry.keys_per_second:,.0f} keys/s)"
            )
        print(f"tuning file updated: {path}")
    else:
        print(f"no improvement over stored bests in {path}")
    return 0


def _cmd_jobs(args) -> int:
    from repro.service.client import ApiClientError, GatewayUnreachable

    handler = {
        "submit": _jobs_submit,
        "status": _jobs_status,
        "pause": _jobs_control,
        "resume": _jobs_control,
        "cancel": _jobs_control,
        "tail": _jobs_tail,
        "quota": _jobs_quota,
    }[args.jobs_command]
    client = _make_client(args)
    if client is None:
        return EXIT_USAGE
    try:
        with client:
            return handler(args, client)
    except GatewayUnreachable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_NO_DAEMON
    except ApiClientError as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        return _status_exit(exc.status)


def _status_exit(status: int) -> int:
    """Map an HTTP status onto the documented CLI exit codes."""
    if status == 404:
        return EXIT_NO_JOB
    if status in (401, 403):
        return EXIT_AUTH
    if status == 429:
        return EXIT_LIMIT
    return EXIT_USAGE


def _make_client(args):
    """A GatewayClient (``--connect``) or LocalClient (store path)."""
    from repro.service import JobStore
    from repro.service.client import GatewayClient, LocalClient

    if getattr(args, "connect", None):
        key = args.api_key or os.environ.get("REPRO_API_KEY")
        if not key:
            print(
                "error: --connect needs --api-key or $REPRO_API_KEY",
                file=sys.stderr,
            )
            return None
        # argparse fills the optional `store` positional first, so with
        # --connect a lone id lands there; shift it where it belongs.
        if getattr(args, "store", None) is not None and hasattr(args, "id"):
            if args.id is None:
                args.store, args.id = None, args.store
        try:
            return GatewayClient(args.connect, key)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None
    if getattr(args, "store", None) is None:
        print(
            "error: give a job store directory or --connect http://...",
            file=sys.stderr,
        )
        return None
    return LocalClient(JobStore(args.store))


def _jobs_submit(args, client) -> int:
    from repro.service import JobSpec

    try:
        digest = bytes.fromhex(args.digest)
    except ValueError:
        print("error: digest must be hexadecimal", file=sys.stderr)
        return EXIT_USAGE
    try:
        spec = JobSpec(
            digest=digest,
            charset=CHARSETS[args.charset].symbols,
            algorithm=args.algorithm,
            min_length=args.min_length,
            max_length=args.max_length,
            prefix=args.prefix.encode(),
            suffix=args.suffix.encode(),
            batch_size=args.batch_size,
            chunk_size=args.chunk_size,
            stop_on_first=not args.all,
            backend=args.backend,
            workers=args.workers,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.priority < 1:
        print("error: priority must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    document = client.submit(spec.to_dict(), priority=args.priority, job=args.job_id)
    print(f"submitted {document['job']} (priority {document['priority']}, "
          f"{document['space']:,} candidates)")
    return EXIT_OK


def _render_job_line(document: dict) -> str:
    progress = document["progress"]
    total = progress["total"]
    percent = 100.0 * progress["done"] / total if total else 100.0
    return (f"{document['job']:24s} {document['state']:9s} "
            f"{document['priority']:3d} {percent:6.1f}% "
            f"{progress['done']:>14,} {len(progress['found'])!s:>5s}")


def _jobs_status(args, client) -> int:
    if args.id:
        documents = [client.status(args.id)]
    else:
        documents = client.jobs()["jobs"]
    if not documents:
        where = args.connect if args.connect else args.store
        print(f"no jobs in {where}")
        return EXIT_MISS
    print(f"{'id':24s} {'state':9s} {'pri':>3s} {'done':>7s} "
          f"{'tested':>14s} {'found':>5s}")
    for document in documents:
        print(_render_job_line(document))
        if args.id:
            for index, key in document["progress"]["found"]:
                print(f"  FOUND: {key!r} (id {index})")
            if document["message"]:
                print(f"  note: {document['message']}")
    if args.id and (args.metrics != "off" or args.metrics_out):
        payload = client.metrics(args.id)["metrics"]
        _emit_metrics(args, payload if payload else None)
    return EXIT_OK


def _jobs_control(args, client) -> int:
    document = client.control(args.id, args.jobs_command)
    print(f"{document['job']}: {document['state']}")
    return EXIT_OK


def _jobs_tail(args, client) -> int:
    document = client.events(args.id, cursor=0, timeout=0.0)
    for line in document["events"][-args.lines:]:
        print(line)
    return EXIT_OK


def _jobs_quota(args, client) -> int:
    document = client.quota(args.tenant)
    print(f"tenant {document['tenant']}: weight {document['weight']}, "
          f"{document['active']}/{document['max_queued']} active jobs, "
          f"{document['tokens']:.1f}/{document['burst']:.0f} rate tokens "
          f"(refill {document['rate']:.0f}/s)")
    return EXIT_OK


def _cmd_estimate(args) -> int:
    from repro.cluster.topology import build_paper_network
    from repro.keyspace import space_size

    algorithm = HashAlgorithm(args.algorithm)
    network = build_paper_network(algorithm)
    charset = CHARSETS[args.charset]
    size = space_size(len(charset), args.min_length, args.max_length)
    rate = network.aggregate_throughput
    seconds = size / rate
    print(f"space   : {size:,} keys ({args.charset}, "
          f"{args.min_length}-{args.max_length} chars)")
    print(f"network : {rate / 1e6:,.0f} Mkeys/s ({args.algorithm}, paper cluster)")
    for label, value in [
        ("seconds", seconds),
        ("hours", seconds / 3600),
        ("days", seconds / 86400),
        ("years", seconds / (365.25 * 86400)),
    ]:
        print(f"{label:8s}: {value:,.2f}")
    from repro.core.planner import PasswordPolicy, assess, minimum_length_for

    policy = PasswordPolicy(charset, args.min_length, args.max_length)
    result = assess(policy, network)
    print(f"verdict : {result.verdict} (expected crack in "
          f"{result.seconds_expected / 3600:,.1f} h)")
    decade = minimum_length_for(charset, network, 10 * 365.25 * 86400)
    print(f"policy  : uniform length >= {decade} chars of this charset "
          f"resists this cluster for a decade")
    return 0


def _cmd_mine(args) -> int:
    import numpy as np

    from repro.apps.mining import MiningJob, mine_interval, leading_zero_bits
    from repro.hashes.sha256 import sha256d_digest

    rng = np.random.default_rng(args.seed)
    header = rng.integers(0, 256, size=80, dtype=np.uint8).tobytes()
    job = MiningJob(header=header, difficulty_bits=args.difficulty)
    print(f"difficulty {args.difficulty} bits; scanning {args.scan:,} nonces")
    winners = mine_interval(job, Interval(0, args.scan))
    for nonce in winners:
        digest = sha256d_digest(job.with_nonce(nonce))
        print(f"WINNER: nonce={nonce:#010x} zeros={leading_zero_bits(digest)} "
              f"hash={digest.hex()}")
    if not winners:
        print("no winner in this interval")
        return 1
    return 0


def _cmd_mask(args) -> int:
    from repro.apps.maskcrack import MaskCrackStats, MaskTarget, crack_mask
    from repro.keyspace.masks import MaskSpace

    try:
        digest = bytes.fromhex(args.digest)
    except ValueError:
        print("error: digest must be hexadecimal", file=sys.stderr)
        return 2
    try:
        space = MaskSpace.from_mask(args.mask)
        target = MaskTarget(
            algorithm=HashAlgorithm(args.algorithm),
            digest=digest,
            space=space,
            prefix=args.prefix.encode(),
            suffix=args.suffix.encode(),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"searching {space.describe()}")
    stats = MaskCrackStats()
    matches = crack_mask(target, stats=stats)
    print(f"tested {stats.tested:,} in {stats.elapsed:.2f}s "
          f"({stats.mkeys_per_second:.2f} Mkeys/s)")
    for index, key in matches:
        print(f"FOUND: {key!r} (id {index})")
    if not matches:
        print("no preimage matches the mask")
        return 1
    return 0


def _cmd_check(args) -> int:
    from repro.checks.cli import main as check_main

    return check_main(args.check_args)


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    print(generate_report())
    return 0


def _cmd_tables(args) -> int:
    from repro.analysis.paper_data import PAPER_TABLE_VIII
    from repro.analysis.tables import Comparison, render_comparison
    from repro.gpusim.device import PAPER_DEVICES
    from repro.gpusim.throughput import device_report

    for algo, label in ((HashAlgorithm.MD5, "MD5"), (HashAlgorithm.SHA1, "SHA1")):
        theo, ours = {}, {}
        for name, dev in PAPER_DEVICES.items():
            report = device_report(dev, algo)
            theo[name] = report.theoretical_mkeys
            ours[name] = report.achieved_mkeys
        for row, data in ((f"{label} (theoretical)", theo), (f"{label} (our approach)", ours)):
            comparisons = [
                Comparison(dev, PAPER_TABLE_VIII[row][dev], data[dev])
                for dev in PAPER_DEVICES
            ]
            print(render_comparison(f"Table VIII - {row} (Mkeys/s)", comparisons))
            print()
    return 0


def _cmd_devices(args) -> int:
    from repro.gpusim.device import DEVICES
    from repro.gpusim.throughput import device_report

    print(f"{'device':10s} {'cc':>4s} {'MPs':>4s} {'cores':>6s} {'MHz':>6s} "
          f"{'MD5 Mk/s':>9s} {'SHA1 Mk/s':>10s}")
    for name, dev in DEVICES.items():
        md5 = device_report(dev, HashAlgorithm.MD5).achieved_mkeys
        sha1 = device_report(dev, HashAlgorithm.SHA1).achieved_mkeys
        print(f"{name:10s} {str(dev.compute_capability):>4s} {dev.multiprocessors:4d} "
              f"{dev.cores:6d} {dev.clock_mhz:6.0f} {md5:9.1f} {sha1:10.1f}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
