"""Parameter sweeps and terminal plots.

The paper reports only tables; these helpers regenerate the *curves* its
arguments imply — efficiency vs interval size, throughput vs node count,
the tuning curve — as data series plus a dependency-free ASCII renderer, so
``pytest benchmarks/ -s`` can show shapes, not just endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.node import ClusterNode, GPUWorker
from repro.cluster.simulate import simulate_run
from repro.gpusim.launch import LaunchModel, efficiency_at


@dataclass(frozen=True)
class Series:
    """One labelled (x, y) series."""

    label: str
    xs: tuple
    ys: tuple

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must align")
        if not self.xs:
            raise ValueError("series must be non-empty")


def ascii_plot(series: Series, width: int = 60, height: int = 12) -> str:
    """Render a series as a fixed-width ASCII scatter/line chart.

    X positions follow the *index* of each sample (sweeps are usually
    log-spaced, so index spacing reads better than linear value spacing);
    y is scaled linearly between the observed extremes.
    """
    if width < 8 or height < 3:
        raise ValueError("plot too small")
    lo, hi = min(series.ys), max(series.ys)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    n = len(series.xs)
    for i, y in enumerate(series.ys):
        col = round(i * (width - 1) / max(n - 1, 1))
        row = height - 1 - round((y - lo) / span * (height - 1))
        grid[row][col] = "*"
    lines = [f"{series.label}  [{lo:.4g} .. {hi:.4g}]"]
    for r, row in enumerate(grid):
        edge = f"{hi:.3g}" if r == 0 else (f"{lo:.3g}" if r == height - 1 else "")
        lines.append(f"{edge:>8s} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10 + f"{series.xs[0]:<12g}" + " " * max(0, width - 26) + f"{series.xs[-1]:>12g}"
    )
    return "\n".join(lines)


def efficiency_vs_interval(
    model: LaunchModel, sizes: Sequence[int] | None = None
) -> Series:
    """The Section III curve: per-node efficiency against interval size."""
    sizes = tuple(sizes) if sizes else tuple(10**k for k in range(2, 12))
    return Series(
        label="efficiency vs interval size",
        xs=sizes,
        ys=tuple(efficiency_at(model, n) for n in sizes),
    )


def throughput_vs_nodes(
    node_rate: float = 500e6, counts: Sequence[int] = (1, 2, 4, 8, 16, 32)
) -> Series:
    """The linear-scalability curve of the abstract's headline claim."""
    ys = []
    for n in counts:
        cluster = ClusterNode(
            "master", devices=[GPUWorker(f"g{i}", node_rate) for i in range(n)]
        )
        result = simulate_run(cluster, int(node_rate * n * 10))
        ys.append(result.throughput / 1e9)
    return Series(label="Gkeys/s vs node count", xs=tuple(counts), ys=tuple(ys))


def speedup_series(series: Series) -> Series:
    """Normalize a throughput series to its first point (speedup curve)."""
    base = series.ys[0]
    if base == 0:
        raise ValueError("cannot normalize a zero baseline")
    return Series(
        label=f"{series.label} (speedup)",
        xs=series.xs,
        ys=tuple(y / base for y in series.ys),
    )
