"""Offline performance-model fitting (Section III).

"The tuning step could be skipped when a performance model that correlates
efficiency, performances, and size of the search subspace for the
considered algorithm is available.  An approximated model could be built
offline by performing a sequence of tests with increasing search size on
each node of the cluster."

This module builds exactly that model: given ``(interval size, measured
throughput)`` samples from a node, least-squares fit the two-parameter
dispatch-cost law

.. code-block:: text

    time(n) = overhead + n / peak_rate

and return a calibrated :class:`~repro.gpusim.launch.LaunchModel` whose
efficiency curve and minimum-batch answers replace the online tuning step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import curve_fit

from repro.gpusim.launch import LaunchModel, min_batch_for_efficiency


@dataclass(frozen=True)
class FittedNodeModel:
    """A node's fitted performance law plus fit diagnostics."""

    peak_rate: float  #: keys/second
    overhead: float  #: seconds of fixed cost per dispatched interval
    residual_rms: float  #: RMS of relative time residuals

    def launch_model(self, watchdog_limit: float = 2.0) -> LaunchModel:
        """The calibrated launch model the dispatcher consumes."""
        return LaunchModel(
            peak_rate=self.peak_rate,
            launch_overhead=0.0,
            watchdog_limit=watchdog_limit,
            fixed_overhead=self.overhead,
        )

    def min_batch(self, target_efficiency: float) -> int:
        """``n_j`` for a target efficiency, straight from the fitted law."""
        return min_batch_for_efficiency(self.launch_model(), target_efficiency)

    def predicted_throughput(self, n: int) -> float:
        """Expected keys/second on an interval of *n* candidates."""
        if n <= 0:
            return 0.0
        return n / (self.overhead + n / self.peak_rate)


def fit_node_model(samples: Sequence[tuple[int, float]]) -> FittedNodeModel:
    """Fit the time law from ``(interval size, throughput keys/s)`` samples.

    Needs at least three samples spanning different sizes; the small-n
    samples pin the overhead, the large-n samples pin the peak rate.
    """
    if len(samples) < 3:
        raise ValueError("need at least 3 (size, throughput) samples")
    sizes = np.array([float(n) for n, _ in samples])
    rates = np.array([float(x) for _, x in samples])
    if (sizes <= 0).any() or (rates <= 0).any():
        raise ValueError("sizes and throughputs must be positive")
    if len(set(sizes.tolist())) < 3:
        raise ValueError("samples must span at least 3 distinct sizes")
    times = sizes / rates

    def law(n, overhead, inv_rate):
        return overhead + n * inv_rate

    # Weight by 1/time so small (overhead-dominated) samples matter.
    popt, _ = curve_fit(
        law,
        sizes,
        times,
        p0=[times.min() / 2, times.max() / sizes.max()],
        sigma=times,
        bounds=([0.0, 1e-15], [np.inf, np.inf]),
    )
    overhead, inv_rate = popt
    predicted = law(sizes, *popt)
    residual_rms = float(np.sqrt(np.mean(((predicted - times) / times) ** 2)))
    return FittedNodeModel(
        peak_rate=1.0 / inv_rate, overhead=float(overhead), residual_rms=residual_rms
    )


def tuning_samples_from_model(
    model: LaunchModel, sizes: Sequence[int], noise: float = 0.0, seed: int = 0
) -> list[tuple[int, float]]:
    """Synthesize tuning-run measurements from a known launch model.

    ``noise`` adds multiplicative Gaussian jitter, modelling real timing
    variance; used by the tests to verify the fit recovers the truth.
    """
    rng = np.random.default_rng(seed)
    out = []
    for n in sizes:
        rate = model.throughput_at(n)
        if noise:
            rate *= float(1.0 + noise * rng.standard_normal())
        out.append((n, max(rate, 1.0)))
    return out
