"""Programmatic regeneration of the full paper-vs-measured report.

``generate_report()`` rebuilds every comparison of EXPERIMENTS.md from the
live models, so the document can be audited (or regenerated) with one
call — the reproduction's equivalent of the paper's evaluation section.

Run from the shell::

    python -m repro.analysis.report
"""

from __future__ import annotations

from repro.analysis.paper_data import (
    PAPER_TABLE_III,
    PAPER_TABLE_VIII,
    PAPER_TABLE_IX,
)
from repro.analysis.tables import Comparison, max_abs_delta, render_comparison
from repro.cluster.simulate import simulate_run
from repro.cluster.topology import build_paper_network
from repro.gpusim.device import PAPER_DEVICES
from repro.gpusim.throughput import device_report
from repro.gpusim.tools import BARSWF, CRYPTOHAZE, tool_throughput
from repro.kernels.trace import trace_md5_compress
from repro.kernels.variants import (
    HashAlgorithm,
    KernelVariant,
    PAPER_TABLE_IV,
    PAPER_TABLE_V,
    PAPER_TABLE_VI,
    traced_mixes,
)

DEVICE_ORDER = ("8600M", "8800", "540M", "550Ti", "660")


def table3_section() -> tuple[str, float]:
    ours = trace_md5_compress().as_table3_row()
    comparisons = [Comparison(k, PAPER_TABLE_III[k], ours[k]) for k in PAPER_TABLE_III]
    return render_comparison("Table III - MD5 source count", comparisons), max_abs_delta(comparisons)


def kernel_tables_section() -> tuple[str, float]:
    blocks = []
    worst = 0.0
    for title, paper, variant in (
        ("Table IV", PAPER_TABLE_IV, KernelVariant.NAIVE),
        ("Table V", PAPER_TABLE_V, KernelVariant.OPTIMIZED),
        ("Table VI", PAPER_TABLE_VI, KernelVariant.BYTE_PERM),
    ):
        mixes = traced_mixes(HashAlgorithm.MD5, variant)
        families = ("1.x", "2.x") if title != "Table VI" else ("1.x", "2.x", "3.0")
        for family in families:
            paper_row = {
                k: v
                for k, v in paper[family].as_table_row().items()
                if k != "SHF (funnel shift)"
            }
            ours_row = mixes[family].as_table_row()
            comparisons = [Comparison(k, paper_row[k], ours_row.get(k)) for k in paper_row]
            blocks.append(render_comparison(f"{title} ({family})", comparisons))
            worst = max(worst, max_abs_delta(comparisons))
    return "\n\n".join(blocks), worst


def table8_section() -> tuple[str, float]:
    blocks = []
    worst = 0.0
    for algo, label in ((HashAlgorithm.MD5, "MD5"), (HashAlgorithm.SHA1, "SHA1")):
        rows: dict[str, dict[str, float | None]] = {
            f"{label} (theoretical)": {},
            f"{label} (our approach)": {},
            f"{label} (BarsWF)": {},
            f"{label} (Cryptohaze)": {},
        }
        for name in DEVICE_ORDER:
            dev = PAPER_DEVICES[name]
            report = device_report(dev, algo)
            rows[f"{label} (theoretical)"][name] = report.theoretical_mkeys
            rows[f"{label} (our approach)"][name] = report.achieved_mkeys
            rows[f"{label} (BarsWF)"][name] = tool_throughput(BARSWF, dev, algo)
            rows[f"{label} (Cryptohaze)"][name] = tool_throughput(CRYPTOHAZE, dev, algo)
        for row_label, ours in rows.items():
            paper_row = PAPER_TABLE_VIII[row_label]
            if all(v is None for v in paper_row.values()):
                continue
            comparisons = [
                Comparison(name, paper_row[name], ours[name]) for name in DEVICE_ORDER
            ]
            blocks.append(render_comparison(f"Table VIII - {row_label}", comparisons))
            worst = max(worst, max_abs_delta(comparisons))
    return "\n\n".join(blocks), worst


def table9_section(work: int = 10**11) -> tuple[str, float]:
    blocks = []
    worst = 0.0
    for algo, label in ((HashAlgorithm.MD5, "MD5"), (HashAlgorithm.SHA1, "SHA1")):
        net = build_paper_network(algo)
        result = simulate_run(net, work)
        ours = {
            "theoretical": net.aggregate_theoretical / 1e6,
            "our approach": result.mkeys_per_second,
            "efficiency": result.network_efficiency,
        }
        comparisons = [
            Comparison(col, PAPER_TABLE_IX[label][col], ours[col]) for col in ours
        ]
        blocks.append(render_comparison(f"Table IX - {label}", comparisons))
        worst = max(worst, max_abs_delta(comparisons))
    return "\n\n".join(blocks), worst


def generate_report() -> str:
    """The full paper-vs-measured report as plain text."""
    sections = []
    t3, _ = table3_section()
    sections.append(t3)
    kt, _ = kernel_tables_section()
    sections.append(kt)
    t8, worst8 = table8_section()
    sections.append(t8)
    t9, _ = table9_section()
    sections.append(t9)
    sections.append(f"worst |delta| across Table VIII: {worst8:.1f}%")
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover
    print(generate_report())
