"""Plain-text table rendering for the benchmark harness.

The benchmarks print each of the paper's tables next to the reproduced
values, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
evaluation section in the terminal.  No dependency on any plotting stack —
these are the same fixed-width tables the paper prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    row_labels: Sequence[str] | None = None,
) -> str:
    """Render a fixed-width table with an optional label column."""
    header = ([""] if row_labels is not None else []) + list(columns)
    body: list[list[str]] = []
    for i, row in enumerate(rows):
        cells = [_fmt(c) for c in row]
        if row_labels is not None:
            cells = [str(row_labels[i])] + cells
        body.append(cells)
    widths = [
        max(len(header[j]), *(len(r[j]) for r in body)) if body else len(header[j])
        for j in range(len(header))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured cell."""

    label: str
    paper: float | None
    ours: float | None

    @property
    def delta_pct(self) -> float | None:
        """Relative deviation in percent (None when either side is absent)."""
        if self.paper in (None, 0) or self.ours is None:
            return None
        return 100.0 * (self.ours - self.paper) / self.paper


def compare_rows(
    paper: Mapping[str, float | None], ours: Mapping[str, float | None]
) -> list[Comparison]:
    """Pair up paper and reproduced values by key (paper's key order)."""
    return [Comparison(key, paper[key], ours.get(key)) for key in paper]


def render_comparison(title: str, comparisons: Sequence[Comparison]) -> str:
    """A paper / ours / delta% table — the EXPERIMENTS.md row format."""
    rows = [
        (c.paper, c.ours, f"{c.delta_pct:+.1f}%" if c.delta_pct is not None else "-")
        for c in comparisons
    ]
    return render_table(
        title,
        columns=["paper", "ours", "delta"],
        rows=rows,
        row_labels=[c.label for c in comparisons],
    )


def max_abs_delta(comparisons: Sequence[Comparison]) -> float:
    """Largest |delta%| across the comparable cells (0 if none compare)."""
    deltas = [abs(c.delta_pct) for c in comparisons if c.delta_pct is not None]
    return max(deltas, default=0.0)
