"""Every table of the paper, verbatim, as structured reference data.

These constants are the ground truth the benchmark harness prints next to
the reproduced values; nothing in the library *computes* from them except
the kernel catalog (which uses the published Table IV-VI instruction counts
for the MD5 kernels, as documented in DESIGN.md).
"""

from __future__ import annotations

#: Table I — multiprocessor architecture per compute capability.
PAPER_TABLE_I: dict[str, dict[str, object]] = {
    "1.*": {
        "Cores per MP": 8,
        "Groups of cores per MP": 1,
        "Group size": 8,
        "Issue time (clock cycles)": 4,
        "Warp schedulers": 1,
        "Issue mode": "single-issue",
    },
    "2.0": {
        "Cores per MP": 32,
        "Groups of cores per MP": 2,
        "Group size": 16,
        "Issue time (clock cycles)": 2,
        "Warp schedulers": 2,
        "Issue mode": "single-issue",
    },
    "2.1": {
        "Cores per MP": 48,
        "Groups of cores per MP": 3,
        "Group size": 16,
        "Issue time (clock cycles)": 2,
        "Warp schedulers": 2,
        "Issue mode": "dual-issue",
    },
    "3.0": {
        "Cores per MP": 192,
        "Groups of cores per MP": 6,
        "Group size": 32,
        "Issue time (clock cycles)": 1,
        "Warp schedulers": 4,
        "Issue mode": "dual-issue",
    },
}

#: Table II — instruction throughput (operations/cycle per multiprocessor).
PAPER_TABLE_II: dict[str, dict[str, int]] = {
    "32-bit integer ADD": {"1.*": 10, "2.0": 32, "2.1": 48, "3.0": 160},
    "32-bit bitwise AND/OR/XOR": {"1.*": 8, "2.0": 32, "2.1": 48, "3.0": 160},
    "32-bit integer shift": {"1.*": 8, "2.0": 16, "2.1": 16, "3.0": 32},
    "32-bit integer MAD": {"1.*": 8, "2.0": 16, "2.1": 16, "3.0": 32},
}

#: Table III — source-level instruction count of one MD5 hash.
PAPER_TABLE_III: dict[str, int] = {
    "32-bit integer ADD": 320,
    "32-bit bitwise AND/OR/XOR": 160,
    "32-bit NOT": 160,
    "32-bit integer shift": 128,
}

#: Tables IV-VI (compiled instruction counts) live as
#: :data:`repro.kernels.variants.PAPER_TABLE_IV` etc., because the MD5
#: kernel catalog is built directly from them.

#: Table VII — GPU specifications.
PAPER_TABLE_VII: dict[str, dict[str, object]] = {
    "8600M": {"Multiprocessors": 4, "Cores": 32, "Clock (MHz)": 950, "Compute capability": "1.1"},
    "8800": {"Multiprocessors": 16, "Cores": 128, "Clock (MHz)": 1625, "Compute capability": "1.1"},
    "540M": {"Multiprocessors": 2, "Cores": 96, "Clock (MHz)": 1344, "Compute capability": "2.1"},
    "550Ti": {"Multiprocessors": 4, "Cores": 192, "Clock (MHz)": 1800, "Compute capability": "2.1"},
    "660": {"Multiprocessors": 5, "Cores": 960, "Clock (MHz)": 1033, "Compute capability": "3.0"},
}

#: Table VIII — single-GPU throughput (Mkeys/s); None = not reported.
PAPER_TABLE_VIII: dict[str, dict[str, float | None]] = {
    "MD5 (theoretical)": {"8600M": 83, "8800": 568, "540M": 359.4, "550Ti": 962.7, "660": 1851},
    "MD5 (our approach)": {"8600M": 71, "8800": 480, "540M": 214, "550Ti": 654, "660": 1841},
    "MD5 (BarsWF)": {"8600M": 71, "8800": 490, "540M": 205, "550Ti": 560, "660": 1340},
    "MD5 (Cryptohaze)": {"8600M": 49.4, "8800": 316, "540M": 146, "550Ti": 410, "660": 1280},
    "SHA1 (theoretical)": {"8600M": 25, "8800": 170, "540M": 128, "550Ti": 345, "660": 390},
    "SHA1 (our approach)": {"8600M": 22, "8800": 137, "540M": 92, "550Ti": 310, "660": 390},
    "SHA1 (BarsWF)": {"8600M": None, "8800": None, "540M": None, "550Ti": None, "660": None},
    "SHA1 (Cryptohaze)": {"8600M": 20.8, "8800": 132, "540M": 68, "550Ti": 185, "660": 377},
}

#: Table IX — whole-network throughput (Mkeys/s) and efficiency.
PAPER_TABLE_IX: dict[str, dict[str, float]] = {
    "MD5": {"theoretical": 3824.1, "our approach": 3258.4, "efficiency": 0.852},
    "SHA1": {"theoretical": 1058.0, "our approach": 950.1, "efficiency": 0.898},
}

#: Section V prose claims worth checking programmatically.
PAPER_CLAIMS = {
    "reversal_speedup": 1.25,  # "a speedup of about 1.25 in almost all architectures"
    "md5_R_ratio": 270 / 92,  # "R = 270/92 = 2.93" on CC 2.*/3.0
    "sha1_R_ratio": 1.53,  # "an even lower ratio (~1.53)"
    "kepler_efficiency": 0.9946,  # "99.46%"
    "barswf_kepler_fraction": 0.7239,  # "72.39% of the theoretical throughput"
    "cryptohaze_kepler_fraction": 0.6915,  # "69.15%"
    "next_overhead_fraction": 0.01,  # "less than the 1% of the time spent by the hash"
}
