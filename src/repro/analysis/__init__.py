"""Analysis helpers: paper reference data and report rendering.

* :mod:`repro.analysis.paper_data` — every table of the paper, verbatim,
  as structured constants (the ground truth the benchmarks print next to
  the reproduced values);
* :mod:`repro.analysis.tables` — plain-text table rendering and
  paper-vs-measured comparison helpers used by the benchmark harness and
  EXPERIMENTS.md.
"""

from repro.analysis.paper_data import (
    PAPER_TABLE_I,
    PAPER_TABLE_II,
    PAPER_TABLE_III,
    PAPER_TABLE_VII,
    PAPER_TABLE_VIII,
    PAPER_TABLE_IX,
)
from repro.analysis.tables import Comparison, compare_rows, render_table

__all__ = [
    "PAPER_TABLE_I",
    "PAPER_TABLE_II",
    "PAPER_TABLE_III",
    "PAPER_TABLE_VII",
    "PAPER_TABLE_VIII",
    "PAPER_TABLE_IX",
    "Comparison",
    "compare_rows",
    "render_table",
]
