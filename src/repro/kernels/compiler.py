"""The compiler lowering model: source operations -> machine instructions.

Reproduces what the paper observed in ``cuobjdump -sass`` output per target
architecture (Section V-B):

* **CC 1.x** — a rotate ``(x << n) + (x >> (32 - n))`` compiles to
  ``SHL + SHR + ADD``;
* **CC 2.x / 3.0** — the same idiom compiles to ``SHL`` followed by
  ``IMAD.HI`` (or equivalently ``SHR + ISCADD``); the multiply-add
  *implicitly performs the addition*, so one ADD per rotate disappears;
* **CC 3.0 with ``__byte_perm``** — a rotation by exactly 16 bits becomes a
  single ``PRMT`` instruction;
* **CC 3.5** — every rotation becomes one *funnel shift* (``SHF``), at
  double speed ("the overall throughput is quadrupled with respect to
  compute capability 3.0");
* on every architecture the unary ``NOT`` operations are merged with
  neighbouring logical instructions and vanish from the final code.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.kernels.isa import InstructionClass, InstructionMix, SourceMix, SourceOp


class RotateLowering(enum.Enum):
    """How a target architecture compiles the 32-bit rotate idiom."""

    SHIFTS_ADD = "shl+shr+add"  #: CC 1.x
    SHIFT_MAD = "shl+imad.hi"  #: CC 2.x and 3.0
    SHIFT_MAD_PRMT16 = "shl+imad.hi / prmt for 16-bit"  #: CC 3.0 with __byte_perm
    FUNNEL = "shf"  #: CC 3.5


@dataclass(frozen=True)
class CompilerModel:
    """Lowering rules of one target architecture family."""

    name: str
    rotate: RotateLowering
    #: NOT operations are merged into adjacent logicals (true on all targets
    #: the paper examined; kept as a knob for what-if analyses).
    merges_not: bool = True

    def lower(self, source: SourceMix) -> InstructionMix:
        """Translate a traced source mix into a machine instruction mix."""
        counts: Counter = Counter()
        counts[InstructionClass.IADD] = source[SourceOp.ADD]
        counts[InstructionClass.LOP] = source[SourceOp.LOGICAL]
        if not self.merges_not:
            counts[InstructionClass.LOP] += source[SourceOp.NOT]
        counts[InstructionClass.SHIFT] = source[SourceOp.SHIFT]
        for amount, n in source.rotate_amounts.items():
            self._lower_rotates(counts, amount, n)
        return InstructionMix(counts)

    def _lower_rotates(self, counts: Counter, amount: int, n: int) -> None:
        if self.rotate is RotateLowering.SHIFTS_ADD:
            counts[InstructionClass.SHIFT] += 2 * n
            counts[InstructionClass.IADD] += n
        elif self.rotate is RotateLowering.SHIFT_MAD:
            counts[InstructionClass.SHIFT] += n
            counts[InstructionClass.IMAD] += n
        elif self.rotate is RotateLowering.SHIFT_MAD_PRMT16:
            if amount == 16:
                counts[InstructionClass.PRMT] += n
            else:
                counts[InstructionClass.SHIFT] += n
                counts[InstructionClass.IMAD] += n
        elif self.rotate is RotateLowering.FUNNEL:
            counts[InstructionClass.FUNNEL] += n
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(self.rotate)


#: The compiler models of the paper's target families.
CC_1X = CompilerModel("1.x", RotateLowering.SHIFTS_ADD)
CC_2X = CompilerModel("2.x", RotateLowering.SHIFT_MAD)
CC_30 = CompilerModel("3.0", RotateLowering.SHIFT_MAD_PRMT16)
CC_35 = CompilerModel("3.5", RotateLowering.FUNNEL)

COMPILER_MODELS: dict[str, CompilerModel] = {
    "1.x": CC_1X,
    "2.x": CC_2X,
    "3.0": CC_30,
    "3.5": CC_35,
}


def lower_mix(source: SourceMix, family: str) -> InstructionMix:
    """Lower a traced source mix for a compute-capability family name."""
    try:
        model = COMPILER_MODELS[family]
    except KeyError:
        raise ValueError(
            f"unknown compute-capability family {family!r}; "
            f"expected one of {sorted(COMPILER_MODELS)}"
        ) from None
    return model.lower(source)
