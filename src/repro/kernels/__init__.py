"""Kernel instruction accounting (Section V, Tables III-VI).

The paper identifies the cracking kernel as *arithmetic-throughput bound* and
builds its performance model from the number of instructions per hash in
each class (additions, logical operations, shifts, multiply-adds).  This
package reproduces that accounting pipeline in software:

1. :mod:`repro.kernels.isa` — the instruction classes and the
   :class:`~repro.kernels.isa.InstructionMix` container;
2. :mod:`repro.kernels.trace` — an instrumented 32-bit operations object
   that executes the *actual* compress functions of :mod:`repro.hashes`
   while counting every source-level operation (the analogue of counting
   "all the operations that cannot be evaluated at compile time", Table III);
3. :mod:`repro.kernels.compiler` — the lowering model that translates the
   traced source mix into per-compute-capability machine instructions (the
   analogue of inspecting ``cuobjdump -sass`` output, Tables IV-VI): rotate
   idioms become SHL+SHR+ADD on CC 1.*, SHL+IMAD.HI on CC 2.*/3.0, PRMT for
   16-bit rotations with ``__byte_perm`` on CC 3.0, and a single funnel
   shift on CC 3.5;
4. :mod:`repro.kernels.variants` — the kernel zoo: naive, reversed,
   early-exit, and byte-perm variants for MD5 and SHA1, each yielding the
   instruction mix per *candidate test* that the GPU simulator schedules.
"""

from repro.kernels.isa import InstructionClass, InstructionMix, SourceMix
from repro.kernels.trace import TracedOps, trace_md5_compress, trace_sha1_compress, trace_sha256_compress
from repro.kernels.compiler import CompilerModel, RotateLowering, lower_mix
from repro.kernels.variants import (
    KernelSpec,
    KernelVariant,
    HashAlgorithm,
    kernel_catalog,
    get_kernel,
)

__all__ = [
    "InstructionClass",
    "InstructionMix",
    "SourceMix",
    "TracedOps",
    "trace_md5_compress",
    "trace_sha1_compress",
    "trace_sha256_compress",
    "CompilerModel",
    "RotateLowering",
    "lower_mix",
    "KernelSpec",
    "KernelVariant",
    "HashAlgorithm",
    "kernel_catalog",
    "get_kernel",
]
