"""The kernel zoo: per-variant, per-architecture instruction mixes.

Each :class:`KernelSpec` describes one GPU kernel of the paper by the
machine-instruction mix a single candidate test executes on each
compute-capability family.  Two sources are available:

* ``source="paper"`` — the exact counts published in Tables IV-VI (MD5
  only; the paper prints no SHA1 tables).  These drive the Table VIII
  theoretical-throughput reproduction so the published numbers can be
  matched digit for digit.
* ``source="traced"`` — counts measured by executing our own compress
  functions under the instruction tracer and lowering them with the
  compiler model.  These validate the accounting *methodology* and provide
  the SHA1 mixes; deltas against the paper's hand counts are small and are
  recorded in EXPERIMENTS.md.

Kernel variants (Section V):

* :data:`KernelVariant.NAIVE` — full hash per candidate, compare digest
  (64 MD5 / 80 SHA1 steps; what Cryptohaze Multiforcer does);
* :data:`KernelVariant.REVERSED` — digest reverted 15 steps once, 49
  forward MD5 steps per candidate (BarsWF's trick, no early exit);
* :data:`KernelVariant.OPTIMIZED` — reversal plus the three-step early
  exit: 46 forward MD5 steps / 76 SHA1 steps (Table V);
* :data:`KernelVariant.BYTE_PERM` — adds the ``__byte_perm`` 16-bit-rotate
  lowering on CC 3.0 (Table VI; identical to OPTIMIZED elsewhere).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping

from repro.kernels.compiler import CC_2X, lower_mix
from repro.kernels.isa import InstructionMix, SourceMix
from repro.kernels.specialize import specialized_md5_mix, specialized_sha1_mix

#: Compute-capability family names understood by the catalog.
FAMILIES = ("1.x", "2.x", "3.0", "3.5")


class HashAlgorithm(enum.Enum):
    """Hash function a kernel targets."""

    MD5 = "md5"
    SHA1 = "sha1"


class KernelVariant(enum.Enum):
    """Optimization level of a kernel."""

    NAIVE = "naive"
    REVERSED = "reversed"
    OPTIMIZED = "optimized"
    BYTE_PERM = "byte_perm"


#: Paper Table IV — compiled counts of the length-4 MD5 kernel.
PAPER_TABLE_IV = {
    "1.x": InstructionMix.of(IADD=284, LOP=156, SHIFT=128),
    "2.x": InstructionMix.of(IADD=220, LOP=155, SHIFT=64, IMAD=64),
    "3.0": InstructionMix.of(IADD=220, LOP=155, SHIFT=64, IMAD=64),
}

#: Paper Table V — reversal + early exit.
PAPER_TABLE_V = {
    "1.x": InstructionMix.of(IADD=197, LOP=118, SHIFT=90),
    "2.x": InstructionMix.of(IADD=150, LOP=120, SHIFT=46, IMAD=46),
    "3.0": InstructionMix.of(IADD=150, LOP=120, SHIFT=46, IMAD=46),
}

#: Paper Table VI — final optimized kernel with ``__byte_perm`` on CC 3.0.
PAPER_TABLE_VI = {
    "1.x": InstructionMix.of(IADD=197, LOP=118, SHIFT=90),
    "2.x": InstructionMix.of(IADD=150, LOP=120, SHIFT=46, IMAD=46),
    "3.0": InstructionMix.of(IADD=150, LOP=120, SHIFT=43, IMAD=43, PRMT=3),
}

#: Forward steps per variant.
MD5_STEPS = {
    KernelVariant.NAIVE: 64,
    KernelVariant.REVERSED: 49,
    KernelVariant.OPTIMIZED: 46,
    KernelVariant.BYTE_PERM: 46,
}
SHA1_STEPS = {
    KernelVariant.NAIVE: 80,
    KernelVariant.REVERSED: 76,
    KernelVariant.OPTIMIZED: 76,
    KernelVariant.BYTE_PERM: 76,
}


@dataclass(frozen=True)
class KernelSpec:
    """One kernel: the instruction mix per candidate on each CC family."""

    algorithm: HashAlgorithm
    variant: KernelVariant
    mixes: Mapping[str, InstructionMix]
    source: str  #: "paper" or "traced"
    description: str = ""

    def mix_for(self, family: str) -> InstructionMix:
        """Instruction mix per candidate test on a CC family."""
        try:
            return self.mixes[family]
        except KeyError:
            raise ValueError(
                f"kernel {self.algorithm.value}/{self.variant.value} has no mix "
                f"for family {family!r}"
            ) from None

    @property
    def name(self) -> str:
        return f"{self.algorithm.value}-{self.variant.value}"


# ---------------------------------------------------------------------- #
# Traced mixes
# ---------------------------------------------------------------------- #


def _traced_source(algorithm: HashAlgorithm, variant: KernelVariant) -> SourceMix:
    """Source mix of a variant, measured by executing our compress code.

    Uses the length-4-specialized symbolic trace — the same specialization
    the paper's kernels are compiled with — so constant message words fold
    exactly as the CUDA compiler folds them.
    """
    if algorithm is HashAlgorithm.MD5:
        return specialized_md5_mix(MD5_STEPS[variant])
    return specialized_sha1_mix(SHA1_STEPS[variant])


@lru_cache(maxsize=None)
def traced_mixes(algorithm: HashAlgorithm, variant: KernelVariant) -> dict[str, InstructionMix]:
    """Machine mixes of a variant on every family, from trace + lowering.

    The ``__byte_perm`` lowering is applied on CC 3.0 only for the
    BYTE_PERM variant (matching the paper's presentation order: Table V is
    pre-PRMT, Table VI post-PRMT).
    """
    source = _traced_source(algorithm, variant)
    mixes: dict[str, InstructionMix] = {}
    for family in FAMILIES:
        if family == "3.0" and variant is not KernelVariant.BYTE_PERM:
            # Without __byte_perm, CC 3.0 code equals the 2.x lowering.
            mixes[family] = CC_2X.lower(source)
        else:
            mixes[family] = lower_mix(source, family)
    return mixes


# ---------------------------------------------------------------------- #
# Catalog
# ---------------------------------------------------------------------- #


def _paper_mixes(variant: KernelVariant) -> dict[str, InstructionMix]:
    table = {
        KernelVariant.NAIVE: PAPER_TABLE_IV,
        KernelVariant.OPTIMIZED: PAPER_TABLE_V,
        KernelVariant.BYTE_PERM: PAPER_TABLE_VI,
    }[variant]
    mixes = dict(table)
    # The paper had no CC 3.5 device; model the funnel-shift build by
    # replacing every SHIFT+IMAD rotate pair with one funnel shift.
    base = table["2.x"]
    rotates = base.shift_mad // 2
    mixes["3.5"] = InstructionMix.of(
        IADD=base.additions, LOP=base.logicals, FUNNEL=rotates
    )
    return mixes


@lru_cache(maxsize=None)
def kernel_catalog() -> dict[tuple[HashAlgorithm, KernelVariant], KernelSpec]:
    """All kernels the benchmarks and the GPU simulator can schedule."""
    catalog: dict[tuple[HashAlgorithm, KernelVariant], KernelSpec] = {}
    descriptions = {
        KernelVariant.NAIVE: "full hash per candidate, digest compare",
        KernelVariant.REVERSED: "digest reverted 15 steps, 49 forward steps",
        KernelVariant.OPTIMIZED: "reversal + 3-step early exit",
        KernelVariant.BYTE_PERM: "reversal + early exit + __byte_perm on CC 3.0",
    }
    for algorithm in HashAlgorithm:
        for variant in KernelVariant:
            if algorithm is HashAlgorithm.MD5 and variant is not KernelVariant.REVERSED:
                mixes = _paper_mixes(variant)
                source = "paper"
            else:
                mixes = traced_mixes(algorithm, variant)
                source = "traced"
            catalog[(algorithm, variant)] = KernelSpec(
                algorithm=algorithm,
                variant=variant,
                mixes=mixes,
                source=source,
                description=descriptions[variant],
            )
    return catalog


def get_kernel(algorithm: HashAlgorithm, variant: KernelVariant = KernelVariant.BYTE_PERM) -> KernelSpec:
    """Fetch a kernel spec from the catalog."""
    return kernel_catalog()[(algorithm, variant)]
