"""Kernel specialization: constant folding through the compress functions.

The paper's kernels are compiled for a *specific key length* ("the kernel
optimized for strings of length 4"): with a 4-character key, message word 0
varies per candidate while words 1..15 are compile-time constants (padding
byte, zeros, and the bit length).  The CUDA compiler exploits this heavily —
additions of zero words vanish, constant words merge into the step
constants, and entire SHA1 schedule expansions fold away when none of their
inputs depends on word 0.

This module reproduces that effect with an *abstract-interpretation* tracer:
values carry a symbolic tag (ZERO / CONST / VAR) and every operation is
counted only when it must be executed at run time.  Running the very same
compress code under these ops yields the specialized instruction mixes of
Tables IV-VI far more faithfully than the unspecialized trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hashes.md5 import MD5_INIT, md5_step
from repro.hashes.padding import Endian, pack_scalar_block
from repro.hashes.sha1 import SHA1_INIT, sha1_step
from repro.kernels.isa import SourceMix, SourceOp


class Tag(enum.Enum):
    """Symbolic class of a 32-bit value during specialization."""

    ZERO = 0  #: known to be zero at compile time
    CONST = 1  #: known at compile time, not necessarily zero
    VAR = 2  #: depends on the candidate (message word 0)


@dataclass(frozen=True)
class Sym:
    """A tagged abstract value."""

    tag: Tag

    @property
    def is_var(self) -> bool:
        return self.tag is Tag.VAR

    @property
    def is_zero(self) -> bool:
        return self.tag is Tag.ZERO


ZERO = Sym(Tag.ZERO)
CONST = Sym(Tag.CONST)
VAR = Sym(Tag.VAR)


class SymbolicOps:
    """Abstract 32-bit operations counting only run-time instructions.

    Folding rules (standard constant propagation):

    * any operation whose operands are all compile-time known folds away;
    * identity elements are free: ``x + 0``, ``x ^ 0``, ``x | 0`` pass the
      variable through, ``x & 0`` is zero;
    * everything else on a VAR operand costs one instruction.
    """

    def __init__(self, mix: SourceMix | None = None) -> None:
        self.mix = mix if mix is not None else SourceMix()

    # ------------------------------------------------------------------ #
    @staticmethod
    def const(value) -> Sym:
        if isinstance(value, Sym):
            return value
        return ZERO if int(value) == 0 else CONST

    def _lift(self, value) -> Sym:
        return value if isinstance(value, Sym) else self.const(value)

    # ------------------------------------------------------------------ #
    def add(self, a, b) -> Sym:
        a, b = self._lift(a), self._lift(b)
        if not a.is_var and not b.is_var:
            return ZERO if (a.is_zero and b.is_zero) else CONST
        if a.is_zero or b.is_zero:
            return VAR  # x + 0 folds
        self.mix.bump(SourceOp.ADD)
        return VAR

    def _logical(self, a, b, absorb_zero_to, zero_is_identity) -> Sym:
        a, b = self._lift(a), self._lift(b)
        if not a.is_var and not b.is_var:
            return CONST if not (a.is_zero and b.is_zero) else ZERO
        if a.is_zero or b.is_zero:
            # AND absorbs to zero; OR/XOR pass the other operand through.
            return absorb_zero_to if not zero_is_identity else VAR
        self.mix.bump(SourceOp.LOGICAL)
        return VAR

    def band(self, a, b) -> Sym:
        return self._logical(a, b, absorb_zero_to=ZERO, zero_is_identity=False)

    def bor(self, a, b) -> Sym:
        return self._logical(a, b, absorb_zero_to=VAR, zero_is_identity=True)

    def bxor(self, a, b) -> Sym:
        return self._logical(a, b, absorb_zero_to=VAR, zero_is_identity=True)

    def bnot(self, a) -> Sym:
        a = self._lift(a)
        if not a.is_var:
            return CONST
        self.mix.bump(SourceOp.NOT)
        return VAR

    def shl(self, a, n: int) -> Sym:
        a = self._lift(a)
        if not a.is_var:
            return ZERO if a.is_zero else CONST
        self.mix.bump(SourceOp.SHIFT)
        return VAR

    def shr(self, a, n: int) -> Sym:
        return self.shl(a, n)

    def rotl(self, x, n: int) -> Sym:
        x = self._lift(x)
        n &= 31
        if n == 0 or not x.is_var:
            return ZERO if x.is_zero else (CONST if not x.is_var else x)
        self.mix.bump_rotate(n)
        return VAR


def word_tags_for_length(key_length: int, endian: Endian) -> list[Sym]:
    """Symbolic classes of the 16 message words for a fixed-length kernel.

    Packs a probe key of *key_length* bytes and tags each word: words
    overlapping the key are VAR, remaining words are ZERO or CONST based on
    their actual padded value.  (Only the words containing key bytes vary
    between candidates of the same length.)
    """
    if not 0 <= key_length <= 55:
        raise ValueError("key_length must fit a single block (0..55)")
    probe = pack_scalar_block(b"\x01" * key_length, endian)[0]
    var_words = max(1, (key_length + 3) // 4) if key_length else 0
    tags: list[Sym] = []
    for i, value in enumerate(probe.tolist()):
        if i < var_words:
            tags.append(VAR)
        elif value == 0:
            tags.append(ZERO)
        else:
            tags.append(CONST)
    return tags


def specialized_md5_mix(
    n_steps: int = 46, key_length: int = 4, single_var_word: bool = True
) -> SourceMix:
    """Run-time source mix of the specialized MD5 kernel.

    ``single_var_word=True`` models the reversal-compatible kernel where the
    thread iterates only over message word 0 (prefix-fastest order); longer
    keys then still have exactly one VAR word per inner loop, the rest being
    loop-constant (held in constant memory, re-derived only when the outer
    suffix advances).
    """
    if not 0 <= n_steps <= 64:
        raise ValueError("MD5 has 64 steps")
    ops = SymbolicOps()
    block = word_tags_for_length(key_length, Endian.LITTLE)
    if single_var_word:
        block = [VAR] + [CONST if t.is_var else t for t in block[1:]]
    state = tuple(ops.const(x) for x in MD5_INIT)
    for step in range(n_steps):
        state = md5_step(step, state, block, ops=ops)
    return ops.mix


def specialized_sha1_mix(
    n_steps: int = 76, key_length: int = 4, single_var_word: bool = True
) -> SourceMix:
    """Run-time source mix of the specialized SHA1 kernel.

    The message-schedule expansion is folded through the same abstract
    interpretation: expansions whose inputs are all compile-time known cost
    nothing (precomputed on the host), and zero inputs drop their XORs.
    """
    if not 0 <= n_steps <= 80:
        raise ValueError("SHA1 has 80 steps")
    ops = SymbolicOps()
    block = word_tags_for_length(key_length, Endian.BIG)
    if single_var_word:
        block = [VAR] + [CONST if t.is_var else t for t in block[1:]]
    w = list(block)
    for t in range(16, n_steps):
        w.append(
            ops.rotl(ops.bxor(ops.bxor(w[t - 3], w[t - 8]), ops.bxor(w[t - 14], w[t - 16])), 1)
        )
    state = tuple(ops.const(x) for x in SHA1_INIT)
    for step in range(n_steps):
        state = sha1_step(step, state, w, ops=ops)
    return ops.mix


def schedule_taint(n_steps: int = 80, var_words: frozenset = frozenset({0})) -> list[bool]:
    """Which SHA1 schedule words depend on the varying message words.

    Pure dataflow: ``W[t]`` is tainted iff any of ``W[t-3], W[t-8],
    W[t-14], W[t-16]`` is tainted.  Untainted words are compile-time
    constants for a fixed-suffix batch.
    """
    tainted = [i in var_words for i in range(16)]
    for t in range(16, n_steps):
        tainted.append(tainted[t - 3] or tainted[t - 8] or tainted[t - 14] or tainted[t - 16])
    return tainted
