"""Instruction classes and mixes.

The paper groups machine instructions into three throughput classes on every
compute capability (Section V-A):

* **addition** instructions (``IADD``);
* **logical** instructions (``AND/OR/XOR``, and ``NOT`` before it is merged);
* **shift/MAD** instructions (``SHR/SHL``, ``IMAD/ISCADD``), plus the Kepler
  byte-permute (``PRMT``) and the 3.5 funnel shift which share their port.

A :class:`SourceMix` counts *source-level* operations (Table III); an
:class:`InstructionMix` counts *machine* instructions after lowering
(Tables IV-VI).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping


class InstructionClass(enum.Enum):
    """Machine-instruction classes tracked by the performance model."""

    IADD = "IADD"  #: 32-bit integer addition / subtraction
    LOP = "LOP"  #: 32-bit bitwise AND/OR/XOR
    SHIFT = "SHIFT"  #: 32-bit shift (SHR/SHL)
    IMAD = "IMAD"  #: integer multiply-add / scaled add (IMAD, ISCADD)
    PRMT = "PRMT"  #: byte permute (``__byte_perm``), CC >= 2.0
    FUNNEL = "FUNNEL"  #: funnel shift (SHF), CC >= 3.5

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Classes executed by the "shift/MAD" core group (the third throughput
#: class of Section V-B).
SHIFT_MAD_CLASSES = frozenset(
    {InstructionClass.SHIFT, InstructionClass.IMAD, InstructionClass.PRMT, InstructionClass.FUNNEL}
)


class SourceOp(enum.Enum):
    """Source-level operations counted by the tracer (Table III rows)."""

    ADD = "ADD"  #: ``a + b``
    LOGICAL = "LOGICAL"  #: ``a & b``, ``a | b``, ``a ^ b``
    NOT = "NOT"  #: ``~a`` (merged by the compiler into adjacent logicals)
    SHIFT = "SHIFT"  #: ``a << n``, ``a >> n`` outside a rotate idiom
    ROTATE = "ROTATE"  #: the ``(x << n) + (x >> (32 - n))`` idiom, as a unit


@dataclass
class SourceMix:
    """Counts of source-level operations executed by a compress function.

    ``rotate_amounts`` retains the rotation distances because lowering is
    distance-sensitive: a 16-bit rotation can become a single ``PRMT`` on
    CC 3.0 (Section V-B), and the funnel shift subsumes every distance on
    CC 3.5.
    """

    counts: Counter = field(default_factory=Counter)
    rotate_amounts: Counter = field(default_factory=Counter)

    def bump(self, op: SourceOp, n: int = 1) -> None:
        """Record *n* executions of a source operation."""
        self.counts[op] += n

    def bump_rotate(self, amount: int) -> None:
        """Record one rotate idiom by *amount* bits."""
        self.counts[SourceOp.ROTATE] += 1
        self.rotate_amounts[amount & 31] += 1

    def __getitem__(self, op: SourceOp) -> int:
        return self.counts[op]

    @property
    def total(self) -> int:
        """Total source operations (rotates count once)."""
        return sum(self.counts.values())

    def as_table3_row(self) -> dict[str, int]:
        """Counts in the layout of the paper's Table III.

        The paper counts each rotate idiom as its constituent two shifts and
        one addition ("we are simply counting all the operations that cannot
        be evaluated at compile time in the CUDA source code").
        """
        rotates = self[SourceOp.ROTATE]
        return {
            "32-bit integer ADD": self[SourceOp.ADD] + rotates,
            "32-bit bitwise AND/OR/XOR": self[SourceOp.LOGICAL],
            "32-bit NOT": self[SourceOp.NOT],
            "32-bit integer shift": self[SourceOp.SHIFT] + 2 * rotates,
        }

    def copy(self) -> "SourceMix":
        out = SourceMix()
        out.counts = Counter(self.counts)
        out.rotate_amounts = Counter(self.rotate_amounts)
        return out


@dataclass(frozen=True)
class InstructionMix:
    """An immutable bag of machine instructions (per candidate test)."""

    counts: Mapping[InstructionClass, int]

    def __post_init__(self) -> None:
        clean = {
            cls: int(n)
            for cls, n in self.counts.items()
            if n
        }
        if any(n < 0 for n in clean.values()):
            raise ValueError("instruction counts must be non-negative")
        object.__setattr__(self, "counts", clean)

    def __getitem__(self, cls: InstructionClass) -> int:
        return self.counts.get(cls, 0)

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        merged = Counter(self.counts)
        merged.update(other.counts)
        return InstructionMix(merged)

    def scaled(self, factor: float) -> "InstructionMix":
        """Mix scaled by a per-candidate amortization factor (rounded)."""
        return InstructionMix({cls: round(n * factor) for cls, n in self.counts.items()})

    @property
    def total(self) -> int:
        """Total machine instructions."""
        return sum(self.counts.values())

    @property
    def additions(self) -> int:
        """The paper's ``N_ADD``."""
        return self[InstructionClass.IADD]

    @property
    def logicals(self) -> int:
        """The paper's ``N_LOP``."""
        return self[InstructionClass.LOP]

    @property
    def shift_mad(self) -> int:
        """The paper's ``N_SHM`` — everything on the shift/MAD port."""
        return sum(self[cls] for cls in SHIFT_MAD_CLASSES)

    @property
    def add_lop(self) -> int:
        """Additions plus logicals — the wide-port load."""
        return self.additions + self.logicals

    @property
    def ratio_addlop_to_shiftmad(self) -> float:
        """The paper's ``R`` (2.93 for optimized MD5, ~1.53 for SHA1)."""
        shm = self.shift_mad
        if shm == 0:
            return float("inf")
        return self.add_lop / shm

    def as_table_row(self) -> dict[str, int]:
        """Counts in the layout of the paper's Tables IV-VI."""
        return {
            "IADD": self[InstructionClass.IADD],
            "AND/OR/XOR": self[InstructionClass.LOP],
            "SHR/SHL": self[InstructionClass.SHIFT],
            "IMAD/ISCADD": self[InstructionClass.IMAD],
            "PRMT (byte_perm)": self[InstructionClass.PRMT],
            "SHF (funnel shift)": self[InstructionClass.FUNNEL],
        }

    @classmethod
    def of(cls, **kwargs: int) -> "InstructionMix":
        """Build a mix from keyword class names: ``InstructionMix.of(IADD=3)``."""
        return cls({InstructionClass[name]: n for name, n in kwargs.items()})


def merge_mixes(mixes: Iterable[InstructionMix]) -> InstructionMix:
    """Sum several mixes into one."""
    total: Counter = Counter()
    for mix in mixes:
        total.update(mix.counts)
    return InstructionMix(total)
