"""Instrumented execution of the compress functions.

:class:`TracedOps` implements the same interface as
:class:`repro.hashes.common.IntOps` but records every source-level operation
it performs in a :class:`~repro.kernels.isa.SourceMix`.  Because the hash
implementations route all arithmetic through the operations object, running
``md5_compress(state, block, ops=TracedOps(mix))`` executes the *identical*
algorithm the golden tests validate against ``hashlib`` — the trace is a
measurement, not a hand count.  This reproduces the paper's Table III
methodology ("we are simply counting all the operations that cannot be
evaluated at compile time in the CUDA source code").

Rotations are recorded as single :data:`~repro.kernels.isa.SourceOp.ROTATE`
units with their distances, because the compiler model lowers them
differently per compute capability and rotation amount.
"""

from __future__ import annotations

from repro.hashes.common import IntOps
from repro.hashes.md5 import MD5_INIT, md5_compress, md5_step
from repro.hashes.sha1 import SHA1_INIT, sha1_compress, sha1_expand_schedule, sha1_step
from repro.hashes.sha256 import SHA256_INIT, sha256_compress
from repro.kernels.isa import SourceMix, SourceOp


class TracedOps(IntOps):
    """32-bit operations that count themselves into a :class:`SourceMix`."""

    def __init__(self, mix: SourceMix | None = None) -> None:
        self.mix = mix if mix is not None else SourceMix()

    # Every override performs the plain-int computation *and* the accounting.
    def const(self, value: int):
        return IntOps.const(value)

    def add(self, a, b):
        self.mix.bump(SourceOp.ADD)
        return IntOps.add(a, b)

    def band(self, a, b):
        self.mix.bump(SourceOp.LOGICAL)
        return IntOps.band(a, b)

    def bor(self, a, b):
        self.mix.bump(SourceOp.LOGICAL)
        return IntOps.bor(a, b)

    def bxor(self, a, b):
        self.mix.bump(SourceOp.LOGICAL)
        return IntOps.bxor(a, b)

    def bnot(self, a):
        self.mix.bump(SourceOp.NOT)
        return IntOps.bnot(a)

    def shl(self, a, n: int):
        self.mix.bump(SourceOp.SHIFT)
        return IntOps.shl(a, n)

    def shr(self, a, n: int):
        self.mix.bump(SourceOp.SHIFT)
        return IntOps.shr(a, n)

    def rotl(self, x, n: int):
        n &= 31
        if n == 0:
            return x
        self.mix.bump_rotate(n)
        # Perform the actual rotation without double counting its internals.
        return IntOps.add(IntOps.shl(x, n), IntOps.shr(x, 32 - n))


#: A representative all-fits-one-block message (content is irrelevant to the
#: instruction trace: the operation sequence of a compress is data-independent
#: by construction — this *is* why the kernels are SIMT-friendly).
_PROBE_BLOCK = tuple(range(16))


def trace_md5_compress() -> SourceMix:
    """Source-operation mix of one full MD5 compression (64 steps + feedforward)."""
    ops = TracedOps()
    md5_compress(MD5_INIT, _PROBE_BLOCK, ops=ops)
    return ops.mix


def trace_md5_steps(n_steps: int, include_feedforward: bool = False) -> SourceMix:
    """Source mix of the first *n_steps* MD5 steps (the optimized kernels).

    ``n_steps=49`` is the reversed kernel's forward phase; ``n_steps=46``
    adds the three-step early exit.
    """
    if not 0 <= n_steps <= 64:
        raise ValueError("MD5 has 64 steps")
    ops = TracedOps()
    state = MD5_INIT
    for step in range(n_steps):
        state = md5_step(step, state, _PROBE_BLOCK, ops=ops)
    if include_feedforward:
        for x, y in zip(state, MD5_INIT):
            ops.add(x, y)
    return ops.mix


def trace_md5_reversal(steps: int = 15) -> SourceMix:
    """Source mix of reverting the last *steps* MD5 steps (done once per
    target, amortized to ~zero over the interval)."""
    from repro.hashes.md5 import md5_message_index, md5_round_function, MD5_SHIFTS, MD5_T

    ops = TracedOps()
    state = (1, 2, 3, 4)
    for step in range(63, 63 - steps, -1):
        # Mirror md5_unstep's arithmetic through the traced ops.
        a1, b1, c1, d1 = state
        b, c, d = c1, d1, a1
        diff = ops.add(b1, -b & 0xFFFFFFFF)
        t = ops.rotl(diff, 32 - MD5_SHIFTS[step])
        f = md5_round_function(step, b, c, d, ops)
        a = ops.add(ops.add(t, -f & 0xFFFFFFFF), -(
            (_PROBE_BLOCK[md5_message_index(step)] + MD5_T[step]) & 0xFFFFFFFF
        ) & 0xFFFFFFFF)
        state = (a, b, c, d)
    return ops.mix


def trace_sha1_compress() -> SourceMix:
    """Source mix of one full SHA1 compression (schedule + 80 steps + feedforward)."""
    ops = TracedOps()
    sha1_compress(SHA1_INIT, _PROBE_BLOCK, ops=ops)
    return ops.mix


def trace_sha1_steps(n_steps: int, include_feedforward: bool = False) -> SourceMix:
    """Source mix of the schedule expansion plus the first *n_steps* SHA1 steps.

    The schedule words beyond ``n_steps`` are not expanded (the kernel never
    reads them), matching the rolling-window implementation.
    """
    if not 0 <= n_steps <= 80:
        raise ValueError("SHA1 has 80 steps")
    ops = TracedOps()
    # Expand only the schedule prefix the kernel consumes.
    w = list(_PROBE_BLOCK)
    for t in range(16, n_steps):
        w.append(
            ops.rotl(ops.bxor(ops.bxor(w[t - 3], w[t - 8]), ops.bxor(w[t - 14], w[t - 16])), 1)
        )
    state = SHA1_INIT
    for step in range(n_steps):
        state = sha1_step(step, state, w, ops=ops)
    if include_feedforward:
        for x, y in zip(state, SHA1_INIT):
            ops.add(x, y)
    return ops.mix


def trace_sha256_compress() -> SourceMix:
    """Source mix of one full SHA256 compression."""
    ops = TracedOps()
    sha256_compress(SHA256_INIT, _PROBE_BLOCK, ops=ops)
    return ops.mix


def trace_sha1_schedule() -> SourceMix:
    """Source mix of the 80-word schedule expansion alone."""
    ops = TracedOps()
    sha1_expand_schedule(_PROBE_BLOCK, ops=ops)
    return ops.mix
