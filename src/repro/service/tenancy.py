"""Tenant namespaces, quotas, and token-bucket rate limits.

A *tenant* is an isolation domain in front of the shared
:class:`~repro.service.scheduler.Scheduler`:

* **namespace** — every job a tenant submits is stored as
  ``{tenant}--{suffix}``, so one flat :class:`JobStore` serves all
  tenants while ownership stays decidable from the id alone.
* **fair-share weight** — multiplied into the requested priority, so
  the deficit-round-robin scheduler gives a weight-3 tenant three times
  the key-search budget of a weight-1 tenant at equal requested
  priority.
* **max_queued quota** — upper bound on queued+running+paused jobs;
  enforced at submit time, *before* the Scheduler ever sees the job.
* **token-bucket rate limit** — smooths request bursts per tenant;
  every authenticated request (not just submits) spends one token.

Tenant configuration ships as a ``repro-api-keys/v1`` JSON document
(see :func:`load_tenants`), the same file that carries the API keys.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.service.auth import ApiKeyring
from repro.service.jobstore import JobStore
from repro.service.wire import safe_name

KEYS_SCHEMA = "repro-api-keys/v1"

#: Separator between tenant namespace and job suffix; tenant names and
#: suffixes themselves may never contain it (enforced by safe_name).
NAMESPACE_SEP = "--"


class QuotaError(Exception):
    """The tenant is at its max_queued ceiling."""


class RateLimitError(Exception):
    """The tenant's token bucket is empty."""


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's scheduling weight and admission limits."""

    name: str
    weight: int = 1
    max_queued: int = 16
    rate: float = 50.0  # tokens (requests) refilled per second
    burst: float = 100.0  # bucket capacity

    def __post_init__(self) -> None:
        if not safe_name(self.name):
            raise ValueError(
                f"tenant name {self.name!r} must be filesystem-safe without '--'"
            )
        if self.weight < 1:
            raise ValueError(f"tenant {self.name}: weight must be >= 1")
        if self.max_queued < 1:
            raise ValueError(f"tenant {self.name}: max_queued must be >= 1")
        if self.rate <= 0 or self.burst <= 0:
            raise ValueError(f"tenant {self.name}: rate and burst must be > 0")


class TokenBucket:
    """Thread-safe token bucket on the monotonic clock."""

    def __init__(self, rate: float, burst: float) -> None:
        self._rate = rate
        self._burst = burst
        self._tokens = burst
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_take(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; never blocks."""
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                self._burst, self._tokens + (now - self._stamp) * self._rate
            )
            self._stamp = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            now = time.monotonic()
            return min(self._burst, self._tokens + (now - self._stamp) * self._rate)

    def seconds_until(self, tokens: float = 1.0) -> float:
        """How long until *tokens* will be available (0 when they already
        are) — the honest ``Retry-After`` for a rate-limited request."""
        available = self.tokens
        if available >= tokens:
            return 0.0
        return (tokens - available) / self._rate


class TenantRegistry:
    """All configured tenants plus their live rate-limit state."""

    def __init__(self, tenants: list[TenantConfig]) -> None:
        self._tenants: dict[str, TenantConfig] = {}
        self._buckets: dict[str, TokenBucket] = {}
        for config in tenants:
            if config.name in self._tenants:
                raise ValueError(f"duplicate tenant {config.name!r}")
            self._tenants[config.name] = config
            self._buckets[config.name] = TokenBucket(config.rate, config.burst)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def names(self) -> list[str]:
        return sorted(self._tenants)

    def get(self, name: str) -> TenantConfig:
        try:
            return self._tenants[name]
        except KeyError:
            raise KeyError(f"unknown tenant {name!r}") from None

    def bucket(self, name: str) -> TokenBucket:
        return self._buckets[name]

    def check_rate(self, name: str) -> None:
        """Spend one request token or raise :class:`RateLimitError`."""
        if not self._buckets[name].try_take():
            raise RateLimitError(f"tenant {name}: rate limit exceeded")

    # ------------------------------------------------------------- #
    # Namespacing.

    @staticmethod
    def job_prefix(tenant: str) -> str:
        return f"{tenant}{NAMESPACE_SEP}"

    @classmethod
    def namespaced(cls, tenant: str, suffix: str) -> str:
        return f"{tenant}{NAMESPACE_SEP}{suffix}"

    @classmethod
    def owns(cls, tenant: str, job_id: str) -> bool:
        return job_id.startswith(cls.job_prefix(tenant))

    # ------------------------------------------------------------- #
    # Quotas.

    def active_jobs(self, store: JobStore, tenant: str) -> int:
        """Jobs counting against *tenant*'s max_queued quota."""
        prefix = self.job_prefix(tenant)
        return sum(
            1
            for record in store.jobs()
            if record.id.startswith(prefix)
            and record.state in ("queued", "running", "paused")
        )

    def check_quota(self, store: JobStore, tenant: str) -> None:
        """Raise :class:`QuotaError` when one more job would breach quota."""
        config = self.get(tenant)
        active = self.active_jobs(store, tenant)
        if active >= config.max_queued:
            raise QuotaError(
                f"tenant {tenant}: {active} active jobs at max_queued="
                f"{config.max_queued}"
            )

    def effective_priority(self, tenant: str, priority: int) -> int:
        """Fair share: the DRR scheduler budgets by weight x priority."""
        return self.get(tenant).weight * priority


def load_tenants(path: str | Path) -> tuple[ApiKeyring, TenantRegistry]:
    """Parse a ``repro-api-keys/v1`` file into keyring + registry.

    Shape::

        {
          "schema": "repro-api-keys/v1",
          "tenants": {
            "acme": {"weight": 3, "max_queued": 32, "rate": 50, "burst": 100,
                     "keys": ["k-acme-1", "k-acme-2"]},
            ...
          }
        }
    """
    document = json.loads(Path(path).read_text())
    if document.get("schema") != KEYS_SCHEMA:
        raise ValueError(f"{path}: schema must be {KEYS_SCHEMA!r}")
    tenants_field = document.get("tenants")
    if not isinstance(tenants_field, dict) or not tenants_field:
        raise ValueError(f"{path}: tenants must be a non-empty object")
    configs: list[TenantConfig] = []
    keys: dict[str, str] = {}
    for name, entry in tenants_field.items():
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: tenant {name!r} must be an object")
        configs.append(
            TenantConfig(
                name=name,
                weight=entry.get("weight", 1),
                max_queued=entry.get("max_queued", 16),
                rate=entry.get("rate", 50.0),
                burst=entry.get("burst", 100.0),
            )
        )
        tenant_keys = entry.get("keys")
        if not isinstance(tenant_keys, list) or not tenant_keys:
            raise ValueError(f"{path}: tenant {name!r} needs a non-empty keys list")
        for key in tenant_keys:
            if key in keys:
                raise ValueError(f"{path}: key {key[:8]}... assigned twice")
            keys[key] = name
    return ApiKeyring(keys), TenantRegistry(configs)
