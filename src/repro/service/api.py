"""Crack-as-a-service: the asyncio multi-tenant HTTP gateway.

:class:`ApiServer` mounts an HTTP/1.1 front door on a
:class:`~repro.service.jobstore.JobStore` (and, when embedded in the
serve daemon, the live :class:`~repro.service.scheduler.Scheduler`), so
many tenants can drive the fair-share cracking service over the network
instead of sharing a same-host CLI.  The framing is hand-rolled on
``asyncio.start_server`` — stdlib only, no new dependencies — with
keep-alive connections and ``Content-Length`` bodies.

Routes (all bodies are validated ``repro-api/v1`` documents, see
:mod:`repro.service.wire` and docs/API.md)::

    POST /v1/jobs                    submit a job (kind=submit)
    GET  /v1/jobs                    list the tenant's jobs
    GET  /v1/jobs/{id}               one job's status + progress
    GET  /v1/jobs/{id}/events        long-poll the job timeline
    GET  /v1/jobs/{id}/metrics       the job's persisted metrics export
    POST /v1/jobs/{id}/pause         control (kind=control, optional body)
    POST /v1/jobs/{id}/resume
    POST /v1/jobs/{id}/cancel
    GET  /v1/tenants/{t}/quota       the tenant's own quota/rate state
    GET  /v1/metrics                 the gateway's live repro-metrics export

Every request is authenticated (``Authorization: Bearer <key>`` or
``X-Api-Key``) and mapped to a tenant namespace; admission control —
token-bucket rate limit, ``max_queued`` quota, fair-share weight — runs
*before* the Scheduler ever sees a job.  Tenants only see jobs whose ids
live under their own ``{tenant}--`` prefix; everyone else's jobs 404
rather than 403, so ids do not leak across namespaces.

Status mapping (mirrored by the CLI's exit codes, see docs/API.md):
400 malformed document, 401 bad/missing key, 403 cross-tenant quota
read, 404 unknown/foreign job, 405 wrong method, 409 illegal lifecycle
transition or duplicate id, 413 oversized body, 429 rate limit or
quota exceeded, 500 internal.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time

from urllib.parse import parse_qs, urlsplit

from repro.obs import Recorder
from repro.obs.schema import MetricNames
from repro.service import wire
from repro.service.auth import ApiKeyring, AuthError, from_header
from repro.service.jobstore import (
    _TRANSITIONS,
    JobRecord,
    JobSpec,
    JobStore,
    TERMINAL_STATES,
)
from repro.service.tenancy import TenantRegistry

#: Framing limits: a request line / header block / body beyond these is
#: rejected, not buffered — the gateway is a front door, not a proxy.
MAX_HEADERS = 64
MAX_BODY = 1 << 20

#: Long-poll bounds (seconds): requested timeouts are clamped into range.
MAX_POLL_TIMEOUT = 30.0
DEFAULT_POLL_TIMEOUT = 10.0

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Which lifecycle states each control verb may act on.  Stricter than
#: the raw ``_TRANSITIONS`` table on purpose: ``running -> queued`` is a
#: legal *store* transition (the drain path uses it) but ``resume`` of a
#: running job is a client error, not a requeue.
_CONTROL_OK = {
    "pause": ("queued", "running"),
    "resume": ("paused", "cancelled", "failed"),
    "cancel": ("queued", "running", "paused"),
}
_CONTROL_TARGET = {"pause": "paused", "resume": "queued", "cancel": "cancelled"}


#: Bound on accepted ``Idempotency-Key`` values, characters.
MAX_IDEMPOTENCY_KEY = 128


class ApiError(Exception):
    """An HTTP-visible failure; rendered as a ``repro-api/v1`` error doc.

    ``retry_after`` (seconds) rides along on overload refusals (shed or
    rate-limited 429s) and becomes both the document's ``retry_after``
    field and the HTTP ``Retry-After`` header.
    """

    def __init__(
        self, status: int, message: str, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body", "keep_alive")

    def __init__(self, method, path, query, headers, body, keep_alive) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive


class ApiServer:
    """The gateway: admission control + job-service routes over asyncio.

    Parameters
    ----------
    store:
        The shared :class:`JobStore` all tenants' jobs persist into.
    keyring, tenants:
        Authentication and tenancy config, usually from
        :func:`repro.service.tenancy.load_tenants`.
    scheduler:
        The live :class:`Scheduler` when the gateway runs inside the
        serve daemon; control verbs then preempt running slices at the
        next chunk boundary instead of waiting for the next store scan.
        ``None`` (store-only mode) still supports every route.
    host, port:
        Bind address; port 0 picks a free port (reported by
        :meth:`start`).
    recorder:
        Gateway-level :class:`Recorder`; ``GET /v1/metrics`` exports it.
    poll_interval:
        Sleep between long-poll re-checks of the events file.
    max_inflight, max_queue:
        Overload protection: at most ``max_inflight`` requests execute
        concurrently, at most ``max_queue`` more wait behind them, and
        everything beyond that is *shed* — refused immediately with 429
        and a ``Retry-After`` — so a traffic storm degrades into fast,
        honest refusals instead of unbounded queueing and timeouts.
    idempotency_cache:
        How many ``(tenant, Idempotency-Key) -> response`` entries the
        submit dedup cache retains (oldest evicted first).
    """

    def __init__(
        self,
        store: JobStore,
        keyring: ApiKeyring,
        tenants: TenantRegistry,
        scheduler=None,
        host: str = "127.0.0.1",
        port: int = 0,
        recorder: Recorder | None = None,
        poll_interval: float = 0.05,
        max_inflight: int = 64,
        max_queue: int = 128,
        idempotency_cache: int = 1024,
    ) -> None:
        if max_inflight < 1 or max_queue < 0 or idempotency_cache < 1:
            raise ValueError(
                "need max_inflight >= 1, max_queue >= 0, idempotency_cache >= 1"
            )
        self.store = store
        self.keyring = keyring
        self.tenants = tenants
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.recorder = recorder if recorder is not None else Recorder()
        self.poll_interval = poll_interval
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.idempotency_cache = idempotency_cache
        self.address: tuple[str, int] | None = None
        self._server: asyncio.base_events.Server | None = None
        self._tasks: set[asyncio.Task] = set()
        self._submit_lock: asyncio.Lock | None = None
        self._admission: asyncio.Semaphore | None = None
        self._waiting = 0  #: requests queued behind the admission semaphore
        self._open_streams = 0
        #: (tenant, Idempotency-Key) -> (status, response document),
        #: insertion-ordered so eviction drops the oldest entry.
        self._idempotency: dict[tuple[str, str], tuple[int, dict]] = {}

    # ---------------------------------------------------------------- #
    # Lifecycle.

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._submit_lock = asyncio.Lock()
        self._admission = asyncio.Semaphore(self.max_inflight)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        """Stop accepting, then cancel every open connection/stream."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    # ---------------------------------------------------------------- #
    # HTTP framing.

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ApiError as exc:
                    await self._write_response(
                        writer, exc.status,
                        wire.error_response(exc.message, exc.status),
                        keep_alive=False,
                    )
                    return
                if request is None:  # clean EOF between requests
                    return
                status, document = await self._serve(request)
                await self._write_response(
                    writer, status, document, keep_alive=request.keep_alive
                )
                if not request.keep_alive:
                    return
        except (asyncio.CancelledError, ConnectionError):
            pass
        except asyncio.IncompleteReadError:
            pass
        finally:
            if task is not None:
                self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader) -> _Request | None:
        try:
            line = await reader.readline()
        except ValueError:  # request line over the stream limit
            raise ApiError(400, "request line too long") from None
        if not line:
            return None
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ApiError(400, "malformed request line")
        method, target, version = parts
        headers: dict[str, str] = {}
        while True:
            try:
                raw = await reader.readline()
            except ValueError:
                raise ApiError(400, "header line too long") from None
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                return None  # EOF mid-headers: treat as disconnect
            if len(headers) >= MAX_HEADERS:
                raise ApiError(400, "too many headers")
            name, sep, value = raw.decode("latin-1", "replace").partition(":")
            if not sep:
                raise ApiError(400, "malformed header")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise ApiError(400, "malformed content-length") from None
        if length < 0:
            raise ApiError(400, "malformed content-length")
        if length > MAX_BODY:
            raise ApiError(413, f"body exceeds {MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" and version != "HTTP/1.0"
        split = urlsplit(target)
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        return _Request(method, split.path, query, headers, body, keep_alive)

    async def _write_response(
        self, writer, status: int, document: dict, keep_alive: bool
    ) -> None:
        body = (json.dumps(document) + "\n").encode()
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        extra = ""
        retry_after = document.get("retry_after")
        if document.get("kind") == "error" and isinstance(retry_after, (int, float)):
            # HTTP Retry-After is integer delta-seconds; round up so the
            # client never comes back before the document said it could.
            extra = f"Retry-After: {max(1, math.ceil(retry_after))}\r\n"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            f"{extra}"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ---------------------------------------------------------------- #
    # Routing + instrumentation.

    async def _serve(self, request: _Request) -> tuple[int, dict]:
        started = time.perf_counter()
        route = self._route_label(request)
        try:
            status, document = await self._admit(request)
        except ApiError as exc:
            status, document = exc.status, wire.error_response(
                exc.message, exc.status, exc.retry_after
            )
        except Exception as exc:  # noqa: BLE001 - the gateway must not die
            status = 500
            document = wire.error_response(f"internal error: {exc}", 500)
        problems = wire.validate_response(document)
        if problems:  # a response we would not accept ourselves is a bug
            status = 500
            document = wire.error_response(
                f"internal error: invalid response document: {problems[0]}", 500
            )
        elapsed = time.perf_counter() - started
        self.recorder.counter(
            MetricNames.API_REQUESTS, route=route, status=str(status)
        )
        self.recorder.span_record(
            MetricNames.API_REQUEST_SECONDS, elapsed, route=route
        )
        if status >= 400:
            self.recorder.counter(MetricNames.API_ERRORS, status=str(status))
        return status, document

    @staticmethod
    def _route_label(request: _Request) -> str:
        """Collapse ids out of the path so label cardinality stays bounded."""
        segments = [s for s in request.path.split("/") if s]
        if len(segments) >= 2 and segments[0] == "v1":
            if segments[1] == "jobs" and len(segments) >= 3:
                segments[2] = "{id}"
            elif segments[1] == "tenants" and len(segments) >= 3:
                segments[2] = "{tenant}"
        return f"{request.method} /" + "/".join(segments)

    async def _admit(self, request: _Request) -> tuple[int, dict]:
        """Admission control: bounded concurrency + bounded queue + shed.

        Runs *before* auth so an overloaded gateway spends nothing on a
        request it is about to refuse.  Shed responses carry an honest
        ``Retry-After`` instead of letting the request rot in a queue.
        """
        assert self._admission is not None
        # A request only "queues" when every inflight slot is taken; an
        # idle server admits immediately even with max_queue=0.
        if self._admission.locked() and self._waiting >= self.max_queue:
            self.recorder.counter(MetricNames.SHED_REQUESTS)
            raise ApiError(
                429,
                f"server overloaded ({self.max_inflight} in flight, "
                f"{self._waiting} queued); request shed",
                retry_after=1.0,
            )
        self._waiting += 1
        self.recorder.gauge(MetricNames.SHED_QUEUE_DEPTH, self._waiting)
        try:
            await self._admission.acquire()
        finally:
            self._waiting -= 1
            self.recorder.gauge(MetricNames.SHED_QUEUE_DEPTH, self._waiting)
        try:
            return await self._dispatch(request)
        finally:
            self._admission.release()

    async def _dispatch(self, request: _Request) -> tuple[int, dict]:
        try:
            tenant = self.keyring.authenticate(from_header(request.headers))
        except AuthError as exc:
            self.recorder.counter(MetricNames.API_AUTH_FAILURES)
            raise ApiError(401, str(exc)) from None
        if tenant not in self.tenants:
            # A key whose tenant was deconfigured is as good as unknown.
            self.recorder.counter(MetricNames.API_AUTH_FAILURES)
            raise ApiError(401, f"tenant {tenant!r} is not configured")
        bucket = self.tenants.bucket(tenant)
        if not bucket.try_take():
            self.recorder.counter(MetricNames.API_RATE_LIMITED, tenant=tenant)
            raise ApiError(
                429,
                f"tenant {tenant}: rate limit exceeded",
                retry_after=bucket.seconds_until(),
            )

        segments = [s for s in request.path.split("/") if s]
        if not segments or segments[0] != "v1":
            raise ApiError(404, f"no such route: {request.path}")
        if segments[1:] == ["jobs"]:
            if request.method == "POST":
                return await self._submit(tenant, request)
            if request.method == "GET":
                return await self._list_jobs(tenant)
            raise ApiError(405, f"{request.method} not allowed on /v1/jobs")
        if len(segments) >= 3 and segments[1] == "jobs":
            job_id = segments[2]
            if len(segments) == 3:
                if request.method != "GET":
                    raise ApiError(405, "job status is GET-only")
                return await self._status(tenant, job_id)
            if len(segments) == 4:
                verb = segments[3]
                if verb == "events":
                    if request.method != "GET":
                        raise ApiError(405, "events is GET-only")
                    return await self._events(
                        tenant, job_id, request.query, request.headers
                    )
                if verb == "metrics":
                    if request.method != "GET":
                        raise ApiError(405, "metrics is GET-only")
                    return await self._job_metrics(tenant, job_id)
                if verb in wire.CONTROL_ACTIONS:
                    if request.method != "POST":
                        raise ApiError(405, "control verbs are POST-only")
                    return await self._control(tenant, job_id, verb, request.body)
            raise ApiError(404, f"no such route: {request.path}")
        if len(segments) == 4 and segments[1] == "tenants" and segments[3] == "quota":
            if request.method != "GET":
                raise ApiError(405, "quota is GET-only")
            return await self._quota(tenant, segments[2])
        if segments[1:] == ["metrics"]:
            if request.method != "GET":
                raise ApiError(405, "metrics is GET-only")
            return 200, wire.metrics_response(self.recorder.export())
        raise ApiError(404, f"no such route: {request.path}")

    # ---------------------------------------------------------------- #
    # Handlers.

    def _parse_document(self, body: bytes, kind: str) -> dict:
        if not body:
            raise ApiError(400, f"missing {kind} request body")
        try:
            document = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"body is not valid JSON: {exc}") from None
        problems = wire.validate_request(document)
        if problems:
            raise ApiError(400, "; ".join(problems))
        if document.get("kind") != kind:
            raise ApiError(400, f"expected a {kind!r} document")
        return document

    def _idempotency_key(self, request: _Request) -> str | None:
        key = request.headers.get("idempotency-key")
        if key is None:
            return None
        if not key or len(key) > MAX_IDEMPOTENCY_KEY or not key.isprintable():
            raise ApiError(
                400,
                f"Idempotency-Key must be 1..{MAX_IDEMPOTENCY_KEY} printable "
                "characters",
            )
        return key

    async def _submit(self, tenant: str, request: _Request) -> tuple[int, dict]:
        idem = self._idempotency_key(request)
        document = self._parse_document(request.body, "submit")
        spec = JobSpec.from_dict(document["spec"])
        priority = document.get("priority", 1)
        effective = self.tenants.effective_priority(tenant, priority)
        suffix = document.get("job")
        assert self._submit_lock is not None
        async with self._submit_lock:
            if idem is not None:
                cached = self._idempotency.get((tenant, idem))
                if cached is not None:
                    # A retried submission: replay the original response
                    # verbatim instead of double-running the job.
                    self.recorder.counter(
                        MetricNames.API_IDEMPOTENT_REPLAYS, tenant=tenant
                    )
                    return cached
            # Quota check + id allocation + submit are one critical
            # section, so concurrent submitters cannot overshoot
            # max_queued between the count and the write.
            try:
                self.tenants.check_quota(self.store, tenant)
            except Exception as exc:
                self.recorder.counter(MetricNames.API_QUOTA_REJECTED, tenant=tenant)
                raise ApiError(429, str(exc)) from None
            if suffix is not None:
                job_id = TenantRegistry.namespaced(tenant, suffix)
            else:
                job_id = self._fresh_namespaced_id(tenant, spec)
            try:
                record = await asyncio.to_thread(
                    self.store.submit, spec, effective, job_id
                )
            except ValueError as exc:
                raise ApiError(409, str(exc)) from None
            depth = await asyncio.to_thread(
                self.tenants.active_jobs, self.store, tenant
            )
            response = (
                201,
                wire.submitted_response(record.id, tenant, effective, spec.space_size),
            )
            if idem is not None:
                while len(self._idempotency) >= self.idempotency_cache:
                    self._idempotency.pop(next(iter(self._idempotency)))
                self._idempotency[(tenant, idem)] = response
        self.recorder.gauge(MetricNames.API_QUEUE_DEPTH, depth, tenant=tenant)
        self.recorder.event(
            MetricNames.EVENT_API_SUBMITTED,
            tenant=tenant,
            job=record.id,
            priority=effective,
        )
        return response

    def _fresh_namespaced_id(self, tenant: str, spec: JobSpec) -> str:
        stem = spec.digest.hex()[:8]
        job_id = TenantRegistry.namespaced(tenant, f"job-{stem}")
        n = 1
        while self.store.job_dir(job_id).exists():
            n += 1
            job_id = TenantRegistry.namespaced(tenant, f"job-{stem}-{n}")
        return job_id

    async def _load_owned(self, tenant: str, job_id: str) -> JobRecord:
        """Load a record the tenant owns; foreign/unknown ids 404 alike."""
        if not TenantRegistry.owns(tenant, job_id):
            raise ApiError(404, f"no job {job_id!r}")
        try:
            return await asyncio.to_thread(self.store.load, job_id)
        except KeyError:
            raise ApiError(404, f"no job {job_id!r}") from None

    async def _job_document(self, tenant: str, record: JobRecord) -> dict:
        try:
            log = await asyncio.to_thread(self.store.load_progress, record.id)
        except KeyError:
            from repro.core.progress import ProgressLog

            log = ProgressLog(total=record.spec.space_size)
        return wire.job_response(record, log, tenant)

    async def _status(self, tenant: str, job_id: str) -> tuple[int, dict]:
        record = await self._load_owned(tenant, job_id)
        return 200, await self._job_document(tenant, record)

    async def _list_jobs(self, tenant: str) -> tuple[int, dict]:
        prefix = TenantRegistry.job_prefix(tenant)
        records = await asyncio.to_thread(self.store.jobs)
        documents = [
            await self._job_document(tenant, record)
            for record in records
            if record.id.startswith(prefix)
        ]
        return 200, wire.job_list_response(documents)

    async def _events(
        self,
        tenant: str,
        job_id: str,
        query: dict[str, str],
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict]:
        record = await self._load_owned(tenant, job_id)
        try:
            cursor = int(query.get("cursor", "0"))
            timeout = float(query.get("timeout", str(DEFAULT_POLL_TIMEOUT)))
        except ValueError:
            raise ApiError(400, "cursor and timeout must be numeric") from None
        if cursor < 0:
            raise ApiError(400, "cursor must be >= 0")
        timeout = min(max(timeout, 0.0), MAX_POLL_TIMEOUT)
        if headers and "x-request-timeout" in headers:
            # The client's own deadline, propagated so the long-poll wait
            # never outlives the caller that asked for it.
            try:
                client_budget = float(headers["x-request-timeout"])
            except ValueError:
                raise ApiError(400, "X-Request-Timeout must be numeric") from None
            if client_budget < 0:
                raise ApiError(400, "X-Request-Timeout must be >= 0")
            timeout = min(timeout, client_budget)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        self._open_streams += 1
        self.recorder.gauge(MetricNames.API_STREAMS, self._open_streams)
        try:
            while True:
                lines, new_cursor = await asyncio.to_thread(
                    self.store.events_since, job_id, cursor
                )
                record = await asyncio.to_thread(self.store.load, job_id)
                terminal = record.state in TERMINAL_STATES
                if lines or terminal or loop.time() >= deadline:
                    document = await self._job_document(tenant, record)
                    if lines:
                        self.recorder.counter(
                            MetricNames.API_STREAM_EVENTS, len(lines)
                        )
                    return 200, wire.events_response(
                        job_id,
                        new_cursor,
                        lines,
                        record.state,
                        document["progress"],
                        complete=terminal,
                    )
                await asyncio.sleep(self.poll_interval)
        finally:
            self._open_streams -= 1
            self.recorder.gauge(MetricNames.API_STREAMS, self._open_streams)

    async def _job_metrics(self, tenant: str, job_id: str) -> tuple[int, dict]:
        await self._load_owned(tenant, job_id)
        payload = await asyncio.to_thread(self.store.load_metrics, job_id)
        return 200, wire.metrics_response(payload)

    async def _control(
        self, tenant: str, job_id: str, action: str, body: bytes
    ) -> tuple[int, dict]:
        if body:  # optional body, but when present it must agree with the URL
            document = self._parse_document(body, "control")
            if document["action"] != action:
                raise ApiError(
                    400, f"body action {document['action']!r} != URL verb {action!r}"
                )
        record = await self._load_owned(tenant, job_id)
        if record.state not in _CONTROL_OK[action]:
            raise ApiError(
                409, f"cannot {action} a {record.state} job ({job_id})"
            )
        target = _CONTROL_TARGET[action]
        assert target in _TRANSITIONS[record.state] or record.state == target
        if self.scheduler is not None:
            control = getattr(self.scheduler, action)
            await asyncio.to_thread(control, job_id)
        else:
            await asyncio.to_thread(
                self.store.set_state, job_id, target, f"{action} via api"
            )
        record = await asyncio.to_thread(self.store.load, job_id)
        return 200, await self._job_document(tenant, record)

    async def _quota(self, tenant: str, requested: str) -> tuple[int, dict]:
        if requested != tenant:
            raise ApiError(403, "quota is visible to the owning tenant only")
        config = self.tenants.get(tenant)
        active = await asyncio.to_thread(
            self.tenants.active_jobs, self.store, tenant
        )
        self.recorder.gauge(MetricNames.API_QUEUE_DEPTH, active, tenant=tenant)
        return 200, wire.quota_response(
            tenant,
            config.weight,
            config.max_queued,
            active,
            config.rate,
            config.burst,
            self.tenants.bucket(tenant).tokens,
        )


class ApiServerThread:
    """Run an :class:`ApiServer` event loop in a daemon thread.

    The serve daemon, tests, and benchmarks are synchronous; this wrapper
    owns the asyncio loop so they can ``start()`` (returns the bound
    address), drive the gateway over real sockets, and ``stop()``.
    """

    def __init__(self, server: ApiServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._error: BaseException | None = None

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-api", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("API server failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"API server failed to start: {self._error}")
        assert self.server.address is not None
        return self.server.address

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._error = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        await self.server.start()
        self._started.set()
        await self._shutdown.wait()
        await self.server.stop()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(timeout)
        self._thread = None
