"""Multi-job fair-share scheduling over one shared backend pool.

One machine, many concurrent searches: the scheduler multiplexes every
runnable job in a :class:`~repro.service.jobstore.JobStore` onto a single
execution backend (:mod:`repro.core.backend`) using **deficit round
robin** weighted by priority.  Each round, every runnable job's deficit
counter grows by ``priority * quantum`` candidates; the job then receives
a *slice* — consecutive chunks of its remaining key space totalling at
most its deficit — and the unspent remainder carries to the next round.
Over any window the candidates served to two jobs converge to the ratio
of their priorities, which is the fairness target the acceptance tests
measure.

Preemption is cooperative and chunk-grained: pause/cancel/drain requests
set a flag the backend's ``preempt`` hook checks at chunk boundaries, so
in-flight chunks finish, the job's :class:`~repro.core.progress.
ProgressLog` is checkpointed, and the job parks in a resumable state —
never a half-scanned interval.

Every scheduling decision, checkpoint write, and preemption is recorded
through :class:`repro.obs.Recorder`: the scheduler-level recorder carries
the cross-job timeline, and each job gets its own recorder whose export is
persisted to the store (``metrics.json``) so ``repro jobs status
--metrics`` works per job.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.cluster.runtime import AllWorkersDeadError
from repro.core.backend import resolve_backend
from repro.core.progress import CorruptCheckpointError, ProgressLog, pending_chunks
from repro.obs import Recorder
from repro.obs.schema import MetricNames
from repro.service.jobstore import JobRecord, JobStore, RUNNABLE_STATES


@dataclass
class SliceResult:
    """Accounting for one dispatched scheduler slice."""

    job_id: str
    tested: int = 0
    chunks: int = 0
    preempted: bool = False
    state: str = "running"  #: job state after the slice
    found: list = field(default_factory=list)


class Scheduler:
    """Deficit-round-robin dispatcher for persisted crack jobs.

    Parameters
    ----------
    store:
        The durable :class:`JobStore` of job records and checkpoints.
    backend, workers:
        The shared execution pool every job's chunks run on (resolved via
        :func:`repro.core.backend.resolve_backend`).
    quantum:
        Base candidates per priority point per round; a priority-``p`` job
        accrues ``p * quantum`` per round.  Defaults to twice the job's
        own ``chunk_size`` so each round dispatches a couple of chunks per
        priority point.
    checkpoint_every:
        Durable :class:`ProgressLog` writes happen every this many
        gathered chunks (and always at slice end).
    checkpoint_interval:
        Minimum seconds between *mid-slice* durable writes.  Each
        checkpoint is an fsync'd file replace, which dominates scheduler
        overhead when chunks complete in microseconds; the throttle keeps
        the every-N-chunks cadence but skips writes arriving faster than
        this.  The slice-end checkpoint is never skipped, so pause/drain/
        crash recovery semantics are unchanged (worst-case replay is still
        bounded by one slice).  ``0`` restores pure count-based writes.
    gather_batch:
        Chunks a pool worker executes per gather reply (see
        :meth:`repro.core.backend.ExecutionBackend.run`); ``None`` uses
        the backend's tuned/heuristic span width.
    recorder:
        Optional scheduler-level :class:`repro.obs.Recorder` for the
        cross-job decision/checkpoint/preemption timeline.

    The backend pool is persistent — every job's slices reuse the same
    warm workers.  Call :meth:`close` (or use the scheduler as a context
    manager) to release it.
    """

    def __init__(
        self,
        store: JobStore,
        backend: str = "serial",
        workers: int | None = None,
        quantum: int | None = None,
        checkpoint_every: int = 4,
        checkpoint_interval: float = 0.05,
        gather_batch: int | None = None,
        recorder: Recorder | None = None,
    ) -> None:
        if quantum is not None and quantum <= 0:
            raise ValueError("quantum must be positive")
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        self.store = store
        self.backend = resolve_backend(backend, workers=workers)
        self.quantum = quantum
        self.checkpoint_every = checkpoint_every
        self.checkpoint_interval = checkpoint_interval
        self.gather_batch = gather_batch
        self.recorder = recorder
        self._deficit: dict[str, int] = {}
        self._served: dict[str, int] = {}
        self._job_recorders: dict[str, Recorder] = {}
        # Continuously-running jobs keep their ProgressLog in memory
        # between slices (a pure read cache: the durable checkpoint at
        # every slice end stays authoritative, so dropping an entry is
        # always safe).  Re-parsing the checkpoint JSON per slice was
        # measurable overhead on fast jobs.
        self._live_logs: dict[str, ProgressLog] = {}
        self._metrics_dirty: set[str] = set()
        # pause/cancel requests land from other threads (the serve
        # daemon's signal handler, tests driving the scheduler while a
        # slice runs), so every _control access goes through the
        # _request/_pending/_take/_clear helpers below, under this lock.
        self._control_lock = threading.Lock()
        self._control: dict[str, str] = {}  # job_id -> "pause" | "cancel"
        self._drain = threading.Event()

    # -- job lifecycle (thin wrappers over the store) ------------------- #
    def submit(self, spec, priority: int = 1, job_id: str | None = None) -> JobRecord:
        record = self.store.submit(spec, priority=priority, job_id=job_id)
        self._record_event(MetricNames.EVENT_JOB_STATE, job=record.id, state="queued")
        return record

    def pause(self, job_id: str) -> None:
        """Park a job at the next chunk boundary (checkpointed, resumable)."""
        self._request_control(job_id, "pause")
        record = self.store.load(job_id)
        if record.state == "queued":  # not mid-slice: takes effect now
            self._apply_control(job_id)

    def cancel(self, job_id: str) -> None:
        """Stop a job at the next chunk boundary; terminal unless resumed."""
        self._request_control(job_id, "cancel")
        record = self.store.load(job_id)
        if record.state in ("queued", "paused"):
            self._apply_control(job_id)

    def resume(self, job_id: str) -> JobRecord:
        """Requeue a paused/cancelled/failed job from its last checkpoint."""
        self._clear_control(job_id)
        record = self.store.set_state(job_id, "queued", "resumed")
        self._record_event(MetricNames.EVENT_JOB_STATE, job=job_id, state="queued")
        return record

    def drain(self) -> None:
        """Graceful stop: in-flight chunks finish, checkpoint, then park."""
        self._drain.set()

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def served(self, job_id: str) -> int:
        """Candidates dispatched-and-gathered for a job by this scheduler."""
        return self._served.get(job_id, 0)

    # -- the round loop -------------------------------------------------- #
    def runnable_jobs(self) -> list[JobRecord]:
        return [r for r in self.store.jobs() if r.state in RUNNABLE_STATES]

    def step(self) -> list[SliceResult]:
        """One DRR round: grow every runnable job's deficit, slice each.

        Returns the per-job slice accounting (empty when nothing ran).
        Reloads records from the store first, so state changes made by
        another process (``repro jobs pause``) take effect here.
        """
        results: list[SliceResult] = []
        runnable = self.runnable_jobs()
        for record in runnable:
            if self._drain.is_set():
                break
            try:
                results.append(self._run_slice(record))
            except OSError as exc:
                # Storage faults on the bookkeeping writes (state files,
                # event log) fail the *slice*, never the scheduler loop;
                # the job stays runnable and the next round retries.
                if self.recorder is not None:
                    self.recorder.counter(
                        MetricNames.SERVICE_STORE_ERRORS, job=record.id
                    )
                self._record_event(
                    MetricNames.EVENT_JOB_STATE,
                    job=record.id,
                    state=record.state,
                    store_error=f"{type(exc).__name__}: {exc}",
                )
        # Jobs whose deficit grew but never got a slice keep nothing: the
        # deficit only exists for jobs with pending work, so prune.  The
        # round's own accounting tells us who left the runnable set — no
        # need for a second store scan.
        scanned = {r.id for r in runnable}
        ended = {r.job_id for r in results if r.state not in RUNNABLE_STATES}
        for job_id in list(self._deficit):
            if job_id not in scanned or job_id in ended:
                del self._deficit[job_id]
        return results

    def run_until_idle(self, max_rounds: int | None = None) -> list[JobRecord]:
        """Round-robin until no runnable work remains (or drained).

        Returns the final records of every job in the store.  ``max_rounds``
        bounds the loop for tests and fairness measurements.
        """
        rounds = 0
        while not self._drain.is_set():
            if max_rounds is not None and rounds >= max_rounds:
                break
            # step() scans the store itself; an empty round means no
            # runnable work remained, so a separate pre-scan would only
            # double the per-round record parsing.
            if not self.step():
                break
            rounds += 1
        if self._drain.is_set():
            self._finish_drain()
        return self.store.jobs()

    def _finish_drain(self) -> None:
        """Park still-running jobs as queued so a later serve resumes them."""
        for record in self.store.jobs():
            if record.state == "running":
                try:
                    self.store.set_state(record.id, "queued", "drained")
                except OSError:
                    # Drain is best-effort bookkeeping; a resuming serve
                    # treats a leftover "running" record as runnable.
                    if self.recorder is not None:
                        self.recorder.counter(
                            MetricNames.SERVICE_STORE_ERRORS, job=record.id
                        )
                self._live_logs.pop(record.id, None)
                self._flush_metrics(record.id)
                self._record_event(
                    MetricNames.EVENT_JOB_STATE, job=record.id, state="queued"
                )

    # -- one slice -------------------------------------------------------- #
    def _run_slice(self, record: JobRecord) -> SliceResult:
        job_id = record.id
        spec = record.spec
        out = SliceResult(job_id=job_id)
        if self._pending_control(job_id):  # pause/cancel landed between slices
            out.state = self._apply_control(job_id)
            return out
        try:
            log = self._live_logs.get(job_id)
            if log is None:
                log = self.store.load_progress(job_id)
        except KeyError:
            log = ProgressLog(total=spec.space_size)
        except CorruptCheckpointError as exc:
            # A torn/invalid checkpoint must fail the *job* loudly, never
            # the daemon, and never silently resume with broken coverage.
            self.store.set_state(job_id, "failed", f"corrupt checkpoint: {exc}")
            self._record_event(MetricNames.EVENT_JOB_STATE, job=job_id, state="failed")
            out.state = "failed"
            return out
        if self._slice_done(record, log, out):
            return out

        base = self.quantum if self.quantum is not None else spec.chunk_size * 2
        allowance = self._deficit.get(job_id, 0) + record.priority * base
        chunks = pending_chunks(log, spec.chunk_size, budget=allowance)
        self._record_event(
            MetricNames.EVENT_SCHED_DECISION,
            job=job_id,
            priority=record.priority,
            allowance=allowance,
            chunks=len(chunks),
        )
        if record.state != "running":
            record = self.store.set_state(job_id, "running")
            self._record_event(MetricNames.EVENT_JOB_STATE, job=job_id, state="running")

        job_recorder = self._job_recorders.setdefault(job_id, Recorder())
        chunks_since_checkpoint = 0
        last_checkpoint = time.perf_counter()

        def gathered(result) -> None:
            nonlocal chunks_since_checkpoint, last_checkpoint
            log.mark_done(result.interval, result.matches)
            chunks_since_checkpoint += 1
            # Count-triggered but time-throttled: the fsync'd write is the
            # expensive part, so never pay it more often than the interval.
            if chunks_since_checkpoint >= self.checkpoint_every and (
                time.perf_counter() - last_checkpoint >= self.checkpoint_interval
            ):
                self._checkpoint(job_id, log, job_recorder)
                chunks_since_checkpoint = 0
                last_checkpoint = time.perf_counter()

        def preempt() -> bool:
            return self._drain.is_set() or self._pending_control(job_id)

        target = spec.to_target()
        slice_started = time.perf_counter()
        try:
            outcome = self.backend.run(
                target,
                chunks,
                batch_size=spec.batch_size,
                stop_on_first=spec.stop_on_first,
                recorder=job_recorder,
                preempt=preempt,
                on_result=gathered,
                gather_batch=self.gather_batch,
            )
        except AllWorkersDeadError as exc:
            # The distributed layer lost every worker but hands back the
            # exact coverage it achieved: checkpoint *that* log, so the
            # failed job records precisely how far it got and a later
            # ``resume`` re-dispatches only the remaining gaps.
            failed_log = exc.progress if exc.progress is not None else log
            self._checkpoint(job_id, failed_log, job_recorder)
            self.store.set_state(
                job_id,
                "failed",
                f"all workers died: {failed_log.done_count}/{failed_log.total} done",
            )
            self._record_event(
                MetricNames.EVENT_JOB_STATE,
                job=job_id,
                state="failed",
                done=failed_log.done_count,
                total=failed_log.total,
            )
            out.state = "failed"
            out.found = list(failed_log.found)
            return out
        except Exception as exc:  # noqa: BLE001 - job faults must not kill the service
            self._checkpoint(job_id, log, job_recorder)
            self.store.set_state(job_id, "failed", f"{type(exc).__name__}: {exc}")
            self._record_event(
                MetricNames.EVENT_JOB_STATE, job=job_id, state="failed"
            )
            out.state = "failed"
            return out
        elapsed = time.perf_counter() - slice_started

        out.tested = outcome.tested
        out.chunks = outcome.chunks
        out.preempted = bool(outcome.unfinished) and not (
            spec.stop_on_first and outcome.found
        )
        out.found = list(log.found)
        self._served[job_id] = self._served.get(job_id, 0) + outcome.tested
        leftover = max(0, allowance - outcome.tested)
        # Standard DRR: carry the unspent allowance while the job still has
        # backlog, reset it once the queue empties (or the job parks).
        self._deficit[job_id] = min(leftover, record.priority * base)

        self._checkpoint(job_id, log, job_recorder)
        if self.recorder is not None:
            self.recorder.span_record(MetricNames.PHASE_SLICE, elapsed, job=job_id)
            self.recorder.counter(MetricNames.SERVICE_SLICES, job=job_id)
            self.recorder.counter(
                MetricNames.SERVICE_JOB_TESTED, outcome.tested, job=job_id
            )
        if out.preempted:
            self._record_event(
                MetricNames.EVENT_JOB_PREEMPTED,
                job=job_id,
                unfinished=len(outcome.unfinished),
            )
            if self.recorder is not None:
                self.recorder.counter(MetricNames.SERVICE_PREEMPTIONS, job=job_id)

        out.state = self._transition_after_slice(record, log)
        if out.state == "running":
            # Metrics persistence rides state transitions (and close());
            # a per-slice fsync'd write of a growing export was the other
            # half of the scheduler's overhead.
            self._live_logs[job_id] = log
            self._metrics_dirty.add(job_id)
        else:
            self._live_logs.pop(job_id, None)
            self._metrics_dirty.discard(job_id)
            self.store.save_metrics(job_id, job_recorder.export())
        return out

    def _finalize_checkpoint(self, job_id: str, log: ProgressLog) -> bool:
        """Durably persist the *final* checkpoint, read-back verified.

        A job may only go ``done`` once the checkpoint carrying its found
        keys provably survives on disk: a write that failed — or one a
        lying fsync left truncated while reporting success — would
        otherwise produce a ``done`` job whose durable record has no
        result.  The read-back digest comparison is paid once per job
        completion, not per checkpoint.
        """
        try:
            self.store.save_progress(job_id, log)
            durable = self.store.load_progress(job_id)
            if durable.digest() != log.digest():
                raise OSError(
                    f"final checkpoint for {job_id} failed read-back verification"
                )
        except (OSError, CorruptCheckpointError) as exc:
            if self.recorder is not None:
                self.recorder.counter(MetricNames.SERVICE_STORE_ERRORS, job=job_id)
            self._record_event(
                MetricNames.EVENT_JOB_CHECKPOINT,
                job=job_id,
                failed=f"{type(exc).__name__}: {exc}",
            )
            return False
        return True

    def _slice_done(self, record: JobRecord, log: ProgressLog, out: SliceResult) -> bool:
        """Handle already-satisfied jobs before dispatching anything."""
        spec = record.spec
        satisfied = log.is_complete or (spec.stop_on_first and log.found)
        if satisfied:
            if not self._finalize_checkpoint(record.id, log):
                # Keep the job runnable; the next round retries the final
                # write (the in-memory log stays authoritative).
                self._live_logs[record.id] = log
                out.state = record.state
                return True
            self.store.set_state(record.id, "done", f"{len(log.found)} found")
            self._record_event(MetricNames.EVENT_JOB_STATE, job=record.id, state="done")
            self._deficit.pop(record.id, None)
            self._live_logs.pop(record.id, None)
            out.state = "done"
            out.found = list(log.found)
            return True
        return False

    def _transition_after_slice(self, record: JobRecord, log: ProgressLog) -> str:
        job_id = record.id
        spec = record.spec
        if log.is_complete or (spec.stop_on_first and log.found):
            if not self._finalize_checkpoint(job_id, log):
                return "running"  # stays runnable; next round retries
            self.store.set_state(job_id, "done", f"{len(log.found)} found")
            self._deficit.pop(job_id, None)
            self._clear_control(job_id)
            self._record_event(MetricNames.EVENT_JOB_STATE, job=job_id, state="done")
            return "done"
        if self._pending_control(job_id):
            return self._apply_control(job_id)
        if self._drain.is_set():
            self.store.set_state(job_id, "queued", "drained")
            self._record_event(MetricNames.EVENT_JOB_STATE, job=job_id, state="queued")
            return "queued"
        return "running"

    def _flush_metrics(self, job_id: str) -> None:
        if job_id in self._metrics_dirty:
            self._metrics_dirty.discard(job_id)
            recorder = self._job_recorders.get(job_id)
            if recorder is not None:
                try:
                    self.store.save_metrics(job_id, recorder.export())
                except OSError:
                    # A metrics export is replaceable; mark it dirty again
                    # so the next flush retries.
                    self._metrics_dirty.add(job_id)
                    if self.recorder is not None:
                        self.recorder.counter(
                            MetricNames.SERVICE_STORE_ERRORS, job=job_id
                        )

    # -- cross-thread control requests ------------------------------------ #
    def _request_control(self, job_id: str, request: str) -> None:
        with self._control_lock:
            self._control[job_id] = request

    def _pending_control(self, job_id: str) -> bool:
        with self._control_lock:
            return job_id in self._control

    def _take_control(self, job_id: str) -> str | None:
        with self._control_lock:
            return self._control.pop(job_id, None)

    def _clear_control(self, job_id: str) -> None:
        with self._control_lock:
            self._control.pop(job_id, None)

    def _apply_control(self, job_id: str) -> str:
        request = self._take_control(job_id)
        if request is None:
            # A concurrent resume() withdrew the request between our
            # pending-check and the take: nothing to apply.  (The
            # unlocked dict used to raise KeyError here.)
            return self.store.load(job_id).state
        self._live_logs.pop(job_id, None)
        self._flush_metrics(job_id)
        state = "paused" if request == "pause" else "cancelled"
        record = self.store.load(job_id)
        if record.state not in ("done", state):
            self.store.set_state(job_id, state, f"{request} requested")
        self._record_event(MetricNames.EVENT_JOB_STATE, job=job_id, state=state)
        self._deficit.pop(job_id, None)
        return state

    # -- plumbing --------------------------------------------------------- #
    def close(self) -> None:
        """Flush deferred metrics and release the warm pool (idempotent)."""
        for job_id in list(self._metrics_dirty):
            self._flush_metrics(job_id)
        self.backend.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _checkpoint(self, job_id: str, log: ProgressLog, job_recorder: Recorder) -> None:
        try:
            self.store.save_progress(job_id, log)
        except OSError as exc:
            # A failed checkpoint write (disk full, injected fault) must
            # not kill the slice: the in-memory log stays authoritative
            # and the next checkpoint persists the full coverage again.
            job_recorder.counter(MetricNames.SERVICE_STORE_ERRORS)
            if self.recorder is not None:
                self.recorder.counter(MetricNames.SERVICE_STORE_ERRORS, job=job_id)
            self._record_event(
                MetricNames.EVENT_JOB_CHECKPOINT,
                job=job_id,
                failed=f"{type(exc).__name__}: {exc}",
            )
            return
        job_recorder.counter(MetricNames.SERVICE_CHECKPOINTS)
        self._record_event(
            MetricNames.EVENT_JOB_CHECKPOINT,
            job=job_id,
            done=log.done_count,
            total=log.total,
        )
        if self.recorder is not None:
            self.recorder.counter(MetricNames.SERVICE_CHECKPOINTS, job=job_id)

    def _record_event(self, name: str, **fields) -> None:
        if self.recorder is not None:
            self.recorder.event(name, **fields)
