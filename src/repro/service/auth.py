"""API-key authentication for the ``repro-api/v1`` gateway.

Keys are opaque bearer tokens mapped to tenant names.  Lookup compares
the presented key against *every* registered key with
:func:`hmac.compare_digest` so the comparison cost is independent of
which (if any) key matches — a timing probe cannot bisect the keyring.
"""

from __future__ import annotations

import hmac


class AuthError(Exception):
    """The request carried no credential, or one we do not recognise."""


class ApiKeyring:
    """Immutable-ish key -> tenant map with constant-time lookup."""

    def __init__(self, keys: dict[str, str]) -> None:
        for key, tenant in keys.items():
            if not isinstance(key, str) or not key:
                raise ValueError("API keys must be non-empty strings")
            if not isinstance(tenant, str) or not tenant:
                raise ValueError(f"key {key[:8]}...: tenant must be a non-empty string")
        self._keys = dict(keys)

    def __len__(self) -> int:
        return len(self._keys)

    def tenants(self) -> set[str]:
        return set(self._keys.values())

    def authenticate(self, presented: str | None) -> str:
        """Return the tenant owning *presented*, or raise :class:`AuthError`.

        Scans the whole keyring unconditionally: the matched tenant is
        recorded but the loop never exits early.
        """
        if not presented or not isinstance(presented, str):
            raise AuthError("missing API key")
        matched: str | None = None
        for key, tenant in self._keys.items():
            if hmac.compare_digest(key.encode(), presented.encode()):
                matched = tenant
        if matched is None:
            raise AuthError("unknown API key")
        return matched

    def revoke(self, key: str) -> bool:
        """Drop *key*; returns True when it existed (replay tests use this)."""
        return self._keys.pop(key, None) is not None


def from_header(headers: dict[str, str]) -> str | None:
    """Extract the API key from ``Authorization: Bearer X`` or ``X-Api-Key``.

    *headers* must already be lower-cased keys (the HTTP layer does this).
    """
    authorization = headers.get("authorization", "")
    if authorization.lower().startswith("bearer "):
        return authorization[7:].strip() or None
    api_key = headers.get("x-api-key", "").strip()
    return api_key or None
