"""The ``repro-api/v1`` wire contract: document builders and validators.

Every body that crosses the HTTP gateway — request or response — is a
versioned JSON document carrying ``"schema": "repro-api/v1"`` and a
``"kind"`` discriminator, validated with the same discipline as
``repro-job/v1`` (:func:`repro.service.jobstore.validate_job`) and
``repro-metrics/v2`` (:func:`repro.obs.validate_metrics`): one builder
and one validator per document type, referenced by the server, the
client, the CLI, CI's api-smoke job, and the fuzz tests.

The registries :data:`REQUEST_VALIDATORS` and :data:`RESPONSE_VALIDATORS`
are the machine-checkable index of the contract: the
``protocol-symmetry`` static-analysis rule requires every kind to map to
a validator function defined in this module and to be named by at least
one test — exactly the ``*Message`` encode/decode/test discipline of
:mod:`repro.cluster.protocol`, applied to the HTTP layer.

Document kinds
--------------
Requests:  ``submit``, ``control``.
Responses: ``submitted``, ``job``, ``job-list``, ``events``, ``quota``,
``metrics``, ``error``.
"""

from __future__ import annotations

import re

API_SCHEMA = "repro-api/v1"

#: Job lifecycle states a response may carry (mirrors ``repro-job/v1``).
from repro.service.jobstore import JOB_STATES, TERMINAL_STATES, JobRecord, JobSpec

#: Control verbs a ``control`` request may carry.
CONTROL_ACTIONS = ("pause", "resume", "cancel")

#: Client-supplied job suffixes and tenant names must be filesystem-safe
#: single path components; ``--`` is reserved as the tenant/job separator.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


def safe_name(value: object) -> bool:
    """True when *value* is usable as a tenant name or job-id suffix."""
    return (
        isinstance(value, str)
        and bool(_NAME_RE.match(value))
        and "--" not in value
        and len(value) <= 64
    )


def _document(kind: str, **fields) -> dict:
    return {"schema": API_SCHEMA, "kind": kind, **fields}


# --------------------------------------------------------------------- #
# Builders — the only way the server/client construct wire documents.


def submit_request(spec: dict, priority: int = 1, job: str | None = None) -> dict:
    """Body of ``POST /v1/jobs``: a job spec plus scheduling hints."""
    document = _document("submit", spec=dict(spec), priority=priority)
    if job is not None:
        document["job"] = job
    return document


def control_request(action: str) -> dict:
    """Body of ``POST /v1/jobs/{id}/pause|resume|cancel``."""
    return _document("control", action=action)


def submitted_response(job_id: str, tenant: str, priority: int, space: int) -> dict:
    return _document(
        "submitted", job=job_id, tenant=tenant, priority=priority, space=space
    )


def progress_fields(log) -> dict:
    """The ``progress`` sub-object shared by job/events documents."""
    return {
        "done": log.done_count,
        "total": log.total,
        "found": [[index, key] for index, key in log.found],
    }


def job_response(record: JobRecord, log, tenant: str) -> dict:
    """One job's status document, built from the durable record + ledger."""
    return _document(
        "job",
        job=record.id,
        tenant=tenant,
        state=record.state,
        priority=record.priority,
        message=record.message,
        progress=progress_fields(log),
    )


def job_list_response(jobs: list[dict]) -> dict:
    return _document("job-list", jobs=list(jobs))


def events_response(
    job_id: str,
    cursor: int,
    events: list[str],
    state: str,
    progress: dict,
    complete: bool,
) -> dict:
    """One long-poll delta of a job's timeline + checkpointed progress."""
    return _document(
        "events",
        job=job_id,
        cursor=cursor,
        events=list(events),
        state=state,
        progress=dict(progress),
        complete=complete,
    )


def quota_response(
    tenant: str,
    weight: int,
    max_queued: int,
    active: int,
    rate: float,
    burst: float,
    tokens: float,
) -> dict:
    return _document(
        "quota",
        tenant=tenant,
        weight=weight,
        max_queued=max_queued,
        active=active,
        rate=rate,
        burst=burst,
        tokens=tokens,
    )


def metrics_response(payload: dict | None) -> dict:
    """A persisted or live ``repro-metrics`` export, wrapped for the wire."""
    return _document("metrics", metrics=payload if payload is not None else {})


def error_response(message: str, status: int, retry_after: float | None = None) -> dict:
    """An error document; *retry_after* (seconds) rides along on 429s so
    shed/rate-limited clients know when the gateway wants them back."""
    if retry_after is None:
        return _document("error", error=message, status=status)
    return _document("error", error=message, status=status, retry_after=retry_after)


# --------------------------------------------------------------------- #
# Validators — one per kind; each returns a list of problems (empty = ok).


def _validate_submit(document: dict) -> list[str]:
    problems: list[str] = []
    spec = document.get("spec")
    if not isinstance(spec, dict):
        problems.append("submit needs a spec object")
    else:
        try:
            JobSpec.from_dict(spec)
        except (KeyError, TypeError, ValueError) as exc:
            problems.append(f"spec does not describe a valid job: {exc}")
    priority = document.get("priority", 1)
    if not isinstance(priority, int) or not 1 <= priority <= 100:
        problems.append("priority must be an integer in [1, 100]")
    if "job" in document and not safe_name(document["job"]):
        problems.append("job must be a filesystem-safe name without '--'")
    return problems


def _validate_control(document: dict) -> list[str]:
    if document.get("action") not in CONTROL_ACTIONS:
        return [f"action must be one of {CONTROL_ACTIONS}"]
    return []


def _validate_submitted(document: dict) -> list[str]:
    problems: list[str] = []
    if not isinstance(document.get("job"), str) or not document.get("job"):
        problems.append("submitted needs a non-empty job id")
    if not isinstance(document.get("tenant"), str):
        problems.append("submitted needs the owning tenant")
    if not isinstance(document.get("priority"), int) or document.get("priority", 0) < 1:
        problems.append("priority must be an integer >= 1")
    if not isinstance(document.get("space"), int) or document.get("space", -1) < 0:
        problems.append("space must be a non-negative integer")
    return problems


def _validate_progress(progress: object, problems: list[str]) -> None:
    if not isinstance(progress, dict):
        problems.append("progress must be an object")
        return
    for key in ("done", "total"):
        if not isinstance(progress.get(key), int) or progress.get(key, -1) < 0:
            problems.append(f"progress.{key} must be a non-negative integer")
    found = progress.get("found")
    if not isinstance(found, list) or not all(
        isinstance(pair, (list, tuple)) and len(pair) == 2 for pair in found
    ):
        problems.append("progress.found must be a list of [index, key] pairs")


def _validate_job(document: dict) -> list[str]:
    problems: list[str] = []
    if not isinstance(document.get("job"), str) or not document.get("job"):
        problems.append("job document needs a non-empty job id")
    if not isinstance(document.get("tenant"), str):
        problems.append("job document needs the owning tenant")
    if document.get("state") not in JOB_STATES:
        problems.append(f"state must be one of {JOB_STATES}")
    if not isinstance(document.get("priority"), int) or document.get("priority", 0) < 1:
        problems.append("priority must be an integer >= 1")
    if not isinstance(document.get("message"), str):
        problems.append("message must be a string")
    _validate_progress(document.get("progress"), problems)
    return problems


def _validate_job_list(document: dict) -> list[str]:
    jobs = document.get("jobs")
    if not isinstance(jobs, list):
        return ["job-list needs a jobs array"]
    problems: list[str] = []
    for entry in jobs:
        if not isinstance(entry, dict) or entry.get("kind") != "job":
            problems.append("job-list entries must be kind='job' documents")
            continue
        problems.extend(_validate_job(entry))
    return problems


def _validate_events(document: dict) -> list[str]:
    problems: list[str] = []
    if not isinstance(document.get("job"), str) or not document.get("job"):
        problems.append("events needs a non-empty job id")
    if not isinstance(document.get("cursor"), int) or document.get("cursor", -1) < 0:
        problems.append("cursor must be a non-negative integer")
    events = document.get("events")
    if not isinstance(events, list) or not all(isinstance(e, str) for e in events):
        problems.append("events must be a list of timeline lines")
    if document.get("state") not in JOB_STATES:
        problems.append(f"state must be one of {JOB_STATES}")
    if not isinstance(document.get("complete"), bool):
        problems.append("complete must be a boolean")
    _validate_progress(document.get("progress"), problems)
    return problems


def _validate_quota(document: dict) -> list[str]:
    problems: list[str] = []
    if not isinstance(document.get("tenant"), str) or not document.get("tenant"):
        problems.append("quota needs a non-empty tenant")
    for key in ("weight", "max_queued"):
        if not isinstance(document.get(key), int) or document.get(key, 0) < 1:
            problems.append(f"{key} must be an integer >= 1")
    if not isinstance(document.get("active"), int) or document.get("active", -1) < 0:
        problems.append("active must be a non-negative integer")
    for key in ("rate", "burst", "tokens"):
        if not isinstance(document.get(key), (int, float)):
            problems.append(f"{key} must be a number")
    return problems


def _validate_metrics(document: dict) -> list[str]:
    payload = document.get("metrics")
    if not isinstance(payload, dict):
        return ["metrics must carry a metrics object"]
    if payload:  # empty export means "nothing persisted yet"
        from repro.obs import validate_metrics

        return [f"metrics: {p}" for p in validate_metrics(payload)]
    return []


def _validate_error(document: dict) -> list[str]:
    problems: list[str] = []
    if not isinstance(document.get("error"), str) or not document.get("error"):
        problems.append("error needs a non-empty message")
    status = document.get("status")
    if not isinstance(status, int) or not 400 <= status <= 599:
        problems.append("status must be an HTTP error code (400-599)")
    retry_after = document.get("retry_after")
    if retry_after is not None and (
        not isinstance(retry_after, (int, float)) or retry_after < 0
    ):
        problems.append("retry_after must be a non-negative number of seconds")
    return problems


#: kind -> validator for every request body the gateway accepts.  The
#: protocol-symmetry check requires each entry to reference a function
#: defined in this module and to be exercised by name in a test.
REQUEST_VALIDATORS = {
    "submit": _validate_submit,
    "control": _validate_control,
}

#: kind -> validator for every response body the gateway emits.
RESPONSE_VALIDATORS = {
    "submitted": _validate_submitted,
    "job": _validate_job,
    "job-list": _validate_job_list,
    "events": _validate_events,
    "quota": _validate_quota,
    "metrics": _validate_metrics,
    "error": _validate_error,
}


def _validate(document: object, registry: dict, side: str) -> list[str]:
    if not isinstance(document, dict):
        return [f"{side} body must be a JSON object"]
    problems: list[str] = []
    if document.get("schema") != API_SCHEMA:
        problems.append(f"schema must be {API_SCHEMA!r}")
    kind = document.get("kind")
    validator = registry.get(kind) if isinstance(kind, str) else None
    if validator is None:
        problems.append(f"kind must be one of {sorted(registry)}")
        return problems
    problems.extend(validator(document))
    return problems


def validate_request(document: object) -> list[str]:
    """Validate a ``repro-api/v1`` request body; empty list means valid."""
    return _validate(document, REQUEST_VALIDATORS, "request")


def validate_response(document: object) -> list[str]:
    """Validate a ``repro-api/v1`` response body; empty list means valid."""
    return _validate(document, RESPONSE_VALIDATORS, "response")


def is_terminal(state: str) -> bool:
    """True when no scheduler will pick the job up again on its own."""
    return state in TERMINAL_STATES
