"""The ``repro serve`` daemon: a front door that keeps jobs moving.

One process per machine: it watches a :class:`~repro.service.jobstore.
JobStore` directory, schedules every runnable job over one shared backend
pool (:class:`~repro.service.scheduler.Scheduler`), and exits cleanly on
SIGINT/SIGTERM by draining — in-flight chunks finish, every job's
:class:`~repro.core.progress.ProgressLog` is checkpointed, running jobs
park as ``queued`` — so the next ``repro serve`` resumes with no lost and
no duplicated coverage.

Job control happens through the same directory: ``repro jobs submit``
drops a new job in, ``repro jobs pause/resume/cancel`` rewrite the job's
state, and the daemon picks the changes up at the next scheduling round
(records are reloaded every round).  No sockets by default — the
filesystem is the queue, which is exactly what the atomic-rename
checkpoint discipline makes safe.

With ``listen`` + ``api_keys`` the daemon additionally mounts the
multi-tenant HTTP gateway (:mod:`repro.service.api`) on the same store
and the live scheduler, so remote tenants submit and control jobs over
``repro-api/v1`` while the scheduling loop keeps running unchanged —
gateway control verbs preempt running slices at the next chunk boundary
through the scheduler handle instead of waiting for a store re-scan.
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass, field

from repro.obs import MetricNames, Recorder
from repro.service.jobstore import JobStore, RUNNABLE_STATES
from repro.service.scheduler import Scheduler


@dataclass
class ServeSummary:
    """What one daemon lifetime accomplished."""

    rounds: int = 0
    drained: bool = False
    states: dict = field(default_factory=dict)  #: state -> count at exit
    served: dict = field(default_factory=dict)  #: job id -> candidates run
    metrics: dict | None = None  #: scheduler-level repro-metrics/v2 export
    api_address: tuple | None = None  #: (host, port) the gateway bound to
    api_metrics: dict | None = None  #: gateway-level repro-metrics/v2 export


def serve(
    store: JobStore | str,
    backend: str = "serial",
    workers: int | None = None,
    quantum: int | None = None,
    checkpoint_every: int = 4,
    checkpoint_interval: float = 0.05,
    gather_batch: int | None = None,
    poll_interval: float = 0.25,
    once: bool = False,
    max_rounds: int | None = None,
    recorder: Recorder | None = None,
    install_signal_handlers: bool = True,
    scheduler: Scheduler | None = None,
    listen: str | None = None,
    api_keys: str | None = None,
    max_inflight: int = 64,
    max_queue: int = 128,
    on_api_start=None,
) -> ServeSummary:
    """Run the scheduling loop until idle (``once``), drained, or stopped.

    ``once`` exits as soon as no runnable jobs remain — the mode CI's
    service smoke and the tests use.  Without it the daemon idles at
    ``poll_interval`` waiting for new submissions, forever, until a
    drain signal arrives.  ``max_rounds`` is a hard bound for tests.

    SIGINT/SIGTERM trigger a graceful drain when
    ``install_signal_handlers`` is set (previous handlers are restored on
    exit); embedders can instead call ``scheduler.drain()`` from any
    thread.

    ``listen`` (``"HOST:PORT"``, port 0 for ephemeral) mounts the HTTP
    gateway; it requires ``api_keys``, a ``repro-api-keys/v1`` tenant
    config file (:func:`repro.service.tenancy.load_tenants`).
    ``on_api_start`` is called with the bound ``(host, port)`` once the
    gateway accepts connections — tests and the CLI banner use it.
    ``max_inflight``/``max_queue`` bound the gateway's admission control
    (see :class:`~repro.service.api.ApiServer`): beyond them requests are
    shed with 429 + ``Retry-After`` instead of queueing unboundedly.
    """
    store = store if isinstance(store, JobStore) else JobStore(store)
    owns_scheduler = scheduler is None
    sched = scheduler or Scheduler(
        store,
        backend=backend,
        workers=workers,
        quantum=quantum,
        checkpoint_every=checkpoint_every,
        checkpoint_interval=checkpoint_interval,
        gather_batch=gather_batch,
        recorder=recorder,
    )
    summary = ServeSummary()

    api_thread = None
    if listen is not None:
        if api_keys is None:
            raise ValueError("serving an HTTP gateway requires an api_keys file")
        from repro.service.api import ApiServer, ApiServerThread
        from repro.service.tenancy import load_tenants

        host, _, port_text = listen.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(f"listen wants HOST:PORT, got {listen!r}")
        keyring, tenants = load_tenants(api_keys)
        api_server = ApiServer(
            store,
            keyring,
            tenants,
            scheduler=sched,
            host=host,
            port=int(port_text),
            recorder=Recorder(),
            max_inflight=max_inflight,
            max_queue=max_queue,
        )
        api_thread = ApiServerThread(api_server)
        summary.api_address = api_thread.start()
        if on_api_start is not None:
            on_api_start(summary.api_address)

    previous_handlers = {}
    if install_signal_handlers:
        def _drain_handler(signum, frame):  # pragma: no cover - signal path
            sched.drain()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous_handlers[signum] = signal.signal(signum, _drain_handler)
            except ValueError:  # not the main thread
                break

    store_failures = 0  #: consecutive rounds lost to storage faults
    try:
        while not sched.draining:
            if max_rounds is not None and summary.rounds >= max_rounds:
                break
            try:
                runnable = sched.runnable_jobs()
                if not runnable:
                    if once:
                        break
                    time.sleep(poll_interval)
                    continue
                sched.step()
            except (OSError, ValueError):
                # A storage fault escaped the scheduler's slice guards —
                # e.g. a torn job.json breaking the store scan.  The
                # daemon is the wrong place to die: repair the store in
                # place and resume.  Only a fault that survives repeated
                # repairs (a genuinely broken disk) still propagates.
                from repro.service.fsck import fsck_store

                store_failures += 1
                if store_failures > 3:
                    raise
                if recorder is not None:
                    recorder.counter(MetricNames.SERVICE_STORE_ERRORS)
                fsck_store(store.root, repair=True)
                continue
            store_failures = 0
            summary.rounds += 1
        if sched.draining:
            summary.drained = True
            try:
                sched.run_until_idle(max_rounds=0)  # parks running jobs as queued
            except (OSError, ValueError):
                from repro.service.fsck import fsck_store

                # Parking tripped over a storage fault; leave the store
                # consistent for the restart even if some jobs stay
                # marked running (the next serve resumes them anyway).
                fsck_store(store.root, repair=True)
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        if api_thread is not None:
            summary.api_metrics = api_thread.server.recorder.export()
            api_thread.stop()
        if owns_scheduler:
            sched.close()  # release the warm backend pool we started

    for record in store.jobs():
        summary.states[record.state] = summary.states.get(record.state, 0) + 1
        summary.served[record.id] = sched.served(record.id)
    if recorder is not None:
        summary.metrics = recorder.export()
    return summary


def runnable_count(store: JobStore) -> int:
    """How many jobs a serve loop would currently pick up."""
    return sum(1 for r in store.jobs() if r.state in RUNNABLE_STATES)
