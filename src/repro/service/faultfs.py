"""Seeded filesystem fault injection for the job-service storage layer.

The cluster layer earned its crash-safety claims through seeded chaos
(:mod:`repro.cluster.chaos`); this module gives the *storage* path the
same treatment.  A :class:`FaultInjector` threads through
:func:`repro.service.jobstore.atomic_write_json` and fires one of four
storage failure modes, each chosen deterministically from a seed:

* ``enospc`` — the write fails up front with ``OSError(ENOSPC)``; the
  target file is untouched (disk-full before anything landed);
* ``eio`` — the temp file is half-written, then the write fails with
  ``OSError(EIO)``; the target is untouched but an orphan ``.tmp`` is
  left behind for ``repro fsck`` to sweep;
* ``torn`` — a truncated document lands *in the target itself* and the
  process "crashes" (:class:`InjectedFault` is raised): the storage
  stack reordered the rename ahead of the data blocks, the classic
  rename-without-barrier corruption;
* ``fsync_lie`` — the call reports success but the target holds a
  truncated document: the drive acknowledged a flush it never did.
  This is the silent case — nothing raises, so only a later read (or
  ``repro fsck``) can notice.

At most one fault fires per write (a single uniform draw partitioned
across the configured rates), so a fault schedule is reproducible from
``(seed, write sequence)`` alone.  Every injection increments the
``fault.injected`` counter (labelled ``kind=``) on the recorder, and the
injector keeps its own per-kind tally for tests to assert on.

All of this is opt-in: a ``JobStore`` without an injector pays zero
overhead, and nothing in the production path constructs one.
"""

from __future__ import annotations

import errno
import os
import random
from dataclasses import dataclass
from pathlib import Path

from repro.obs import MetricNames, Recorder

#: The storage failure modes an injector can fire, in draw order.
FAULT_KINDS = ("torn", "enospc", "eio", "fsync_lie")


class InjectedFault(OSError):
    """A deliberately injected storage failure (simulated crash or I/O error).

    Subclasses :class:`OSError` so production code that already guards
    storage with ``except OSError`` treats injected faults exactly like
    real ones; tests can still catch :class:`InjectedFault` specifically
    to distinguish injection from genuine disk trouble.
    """

    def __init__(self, kind: str, path: Path, message: str) -> None:
        number = {
            "enospc": errno.ENOSPC,
            "eio": errno.EIO,
        }.get(kind, errno.EIO)
        super().__init__(number, message, str(path))
        self.kind = kind
        self.fault_path = Path(path)


@dataclass(frozen=True)
class FaultConfig:
    """Per-write probabilities for each storage failure mode.

    Rates are independent probabilities in ``[0, 1]``; their sum must not
    exceed 1 because a single uniform draw is partitioned across them
    (at most one fault per write).  ``seed`` makes the schedule
    reproducible.
    """

    torn: float = 0.0
    enospc: float = 0.0
    eio: float = 0.0
    fsync_lie: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1], got {rate}")
        if self.total_rate > 1.0:
            raise ValueError(
                f"fault rates sum to {self.total_rate}; at most one fault "
                "fires per write so the sum must be <= 1"
            )

    @property
    def total_rate(self) -> float:
        return self.torn + self.enospc + self.eio + self.fsync_lie

    @property
    def enabled(self) -> bool:
        return self.total_rate > 0.0

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Parse a ``torn=0.05,eio=0.02,seed=7`` spec string.

        Mirrors :meth:`repro.cluster.chaos.ChaosConfig.parse` so the two
        fault surfaces share one CLI idiom (``repro serve --faults ...``).
        Dashes in knob names normalize to underscores.
        """
        kwargs: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"fault spec {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = key.strip().replace("-", "_")
            value = value.strip()
            if key == "seed":
                kwargs[key] = int(value)
            elif key in FAULT_KINDS:
                kwargs[key] = float(value)
            else:
                raise ValueError(
                    f"unknown fault knob {key!r} (expected one of "
                    f"{', '.join(FAULT_KINDS)} or seed)"
                )
        return cls(**kwargs)  # type: ignore[arg-type]


class FaultInjector:
    """Draws from a seeded RNG and fires storage faults at write sites.

    The two hooks are called by :func:`~repro.service.jobstore.atomic_write_json`:
    :meth:`before_write` may fail the operation before the data lands
    (``enospc``/``eio``), :meth:`after_replace` may corrupt the freshly
    renamed target (``torn`` raises, ``fsync_lie`` stays silent).  One
    draw in :meth:`before_write` decides the whole write's fate, so the
    schedule is a pure function of the seed and the write sequence.
    """

    def __init__(self, config: FaultConfig, recorder: Recorder | None = None) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._recorder = recorder
        self.counts: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._pending: str | None = None

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def _record(self, kind: str) -> None:
        self.counts[kind] += 1
        if self._recorder is not None:
            self._recorder.counter(MetricNames.FAULT_INJECTED, kind=kind)

    def _draw(self) -> str | None:
        if not self.config.enabled:
            return None
        roll = self._rng.random()
        edge = 0.0
        for kind in FAULT_KINDS:
            edge += getattr(self.config, kind)
            if roll < edge:
                return kind
        return None

    # -- hooks called by atomic_write_json ------------------------------ #
    def before_write(self, path: Path, tmp: Path, payload: str) -> None:
        """Decide this write's fate; raise for the pre-rename failures.

        ``enospc`` raises with nothing on disk.  ``eio`` half-writes the
        temp file first — the orphan ``.tmp`` is what a real interrupted
        write leaves for ``repro fsck`` to sweep.  ``torn``/``fsync_lie``
        are remembered for :meth:`after_replace`.
        """
        kind = self._draw()
        self._pending = None
        if kind is None:
            return
        if kind == "enospc":
            self._record(kind)
            raise InjectedFault(kind, path, "injected ENOSPC: no space left on device")
        if kind == "eio":
            self._record(kind)
            with open(tmp, "w") as handle:
                handle.write(payload[: max(1, len(payload) // 2)])
            raise InjectedFault(kind, path, "injected EIO: I/O error mid-write")
        self._pending = kind

    def after_replace(self, path: Path, payload: str) -> None:
        """Fire a post-rename fault decided in :meth:`before_write`.

        ``torn`` truncates the target and raises (the simulated crash);
        ``fsync_lie`` truncates and returns success — the caller learns
        nothing, which is precisely the failure ``repro fsck`` exists
        to catch.
        """
        kind, self._pending = self._pending, None
        if kind is None:
            return
        truncated = payload[: max(1, len(payload) // 2)]
        with open(path, "w") as handle:
            handle.write(truncated)
            handle.flush()
            os.fsync(handle.fileno())
        self._record(kind)
        if kind == "torn":
            raise InjectedFault(
                kind, path, "injected torn write: rename reordered ahead of data"
            )

    def before_append(self, path: Path) -> None:
        """Gate an ``events.log`` append; only the raising kinds apply.

        Appends are not atomic-rename writes, so ``torn``/``fsync_lie``
        draws are counted against the raising modes' semantics: a torn
        append simply fails like EIO (the half-line never lands).
        """
        kind = self._draw()
        if kind is None:
            return
        if kind == "enospc":
            self._record(kind)
            raise InjectedFault(kind, path, "injected ENOSPC: no space left on device")
        self._record("eio")
        raise InjectedFault("eio", path, "injected EIO: append failed")
