"""One client interface, two transports: HTTP gateway or local store.

``repro jobs`` drives a :class:`LocalClient` when given a store path and
a :class:`GatewayClient` when given ``--connect http://...`` — the same
rendering code consumes the same ``repro-api/v1`` documents either way,
so nothing in the CLI (or in scripts built on it) needs to know whether
the daemon is in-process, on the same host, or across the network.

Both clients raise the same exceptions:

* :class:`ApiClientError` — the request was understood and refused;
  carries the HTTP status (LocalClient synthesizes the matching status
  for the same failure: 404 unknown job, 409 illegal transition, ...).
* :class:`GatewayUnreachable` — nobody answered at the address
  (connection refused/reset, DNS failure); LocalClient never raises it.
  Its subclass :class:`CircuitOpenError` means the client's per-host
  circuit breaker is refusing to even try.

:class:`GatewayClient` holds one keep-alive connection and is **not**
thread-safe — concurrent submitters each construct their own (the
benchmark and the concurrency tests do exactly this).  What it *is* is
resilient: transport failures retry under a jittered
:class:`~repro.service.resilience.RetryPolicy`, a per-host
:class:`~repro.service.resilience.CircuitBreaker` fast-fails while the
gateway is sick, and every ``submit`` carries an ``Idempotency-Key`` so
a retried submission can never double-run a job.  The retry rules are
deliberately asymmetric:

* a *connect* failure (nothing was ever sent) retries for any verb;
* a *mid-request* failure (stale keep-alive socket, reset after send —
  the server may already have acted) retries only when the request is
  idempotent: ``GET``, or a ``POST`` carrying an ``Idempotency-Key``.
  Non-idempotent verbs surface the error immediately.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import time
from urllib.parse import quote, urlsplit

from repro.service import wire
from repro.service.jobstore import TERMINAL_STATES, JobSpec, JobStore
from repro.service.resilience import DEFAULT_BREAKERS, BreakerRegistry, RetryPolicy


class ApiClientError(Exception):
    """The service refused the request; ``status`` is the HTTP code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class GatewayUnreachable(Exception):
    """No gateway answered at the configured address."""


class CircuitOpenError(GatewayUnreachable):
    """The per-host circuit breaker is open; the request was not sent."""


class _ConnectFailed(Exception):
    """Transport failure before anything was sent — retry-safe for any verb."""


class _MidRequestFailed(Exception):
    """Transport failure after (part of) the request may have been sent."""


class GatewayClient:
    """Drive a remote ``repro-api/v1`` gateway over one keep-alive socket."""

    def __init__(
        self,
        base_url: str,
        api_key: str,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        breakers: BreakerRegistry | None = None,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(
                f"--connect wants http://HOST:PORT, got {base_url!r}"
            )
        self.host = split.hostname
        self.port = split.port if split.port is not None else 80
        self.api_key = api_key
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self._breaker = (breakers or DEFAULT_BREAKERS).breaker_for(
            f"{self.host}:{self.port}"
        )
        self._rng = random.Random()
        self._connection: http.client.HTTPConnection | None = None
        #: Observable resilience counters (asserted on by tests, surfaced
        #: nowhere else): retries, reconnects, breaker fast-fails.
        self.stats = {"retries": 0, "reconnects": 0, "breaker_fast_fails": 0}

    # ------------------------------------------------------------- #
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _once(self, method: str, path: str, body, headers) -> tuple:
        """One request attempt on the current (or a fresh) connection."""
        if self._connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                connection.connect()
            except OSError as exc:
                raise _ConnectFailed(
                    f"cannot reach gateway at {self.host}:{self.port}: {exc}"
                ) from None
            self._connection = connection
            self.stats["reconnects"] += 1
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            payload = response.read()
        except (
            http.client.RemoteDisconnected,
            http.client.BadStatusLine,
            ConnectionResetError,
            BrokenPipeError,
        ):
            self.close()
            raise _MidRequestFailed(
                f"gateway at {self.host}:{self.port} closed the connection"
            ) from None
        except OSError as exc:
            self.close()
            raise _MidRequestFailed(
                f"gateway at {self.host}:{self.port} failed mid-request: {exc}"
            ) from None
        return response, payload

    def _request(
        self,
        method: str,
        path: str,
        document: dict | None = None,
        idempotency_key: str | None = None,
        request_timeout: float | None = None,
    ) -> dict:
        body = json.dumps(document).encode() if document is not None else None
        headers = {"Authorization": f"Bearer {self.api_key}"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        if idempotency_key is not None:
            headers["Idempotency-Key"] = idempotency_key
        if request_timeout is not None:
            headers["X-Request-Timeout"] = f"{request_timeout:.3f}"
        idempotent = method == "GET" or idempotency_key is not None

        last_error: Exception | None = None
        response = payload = None
        for attempt in range(self.retry.attempts):
            if attempt:
                self.stats["retries"] += 1
                time.sleep(self.retry.delay(attempt - 1, self._rng))
            if not self._breaker.allow():
                self.stats["breaker_fast_fails"] += 1
                raise CircuitOpenError(
                    f"circuit open for {self.host}:{self.port}; next probe in "
                    f"{self._breaker.seconds_until_probe():.1f}s"
                ) from last_error
            try:
                response, payload = self._once(method, path, body, headers)
            except _ConnectFailed as exc:
                self._breaker.record_failure()
                last_error = GatewayUnreachable(str(exc))
            except _MidRequestFailed as exc:
                self._breaker.record_failure()
                last_error = GatewayUnreachable(str(exc))
                if not idempotent:
                    # The server may already have acted on this request;
                    # a blind replay could double-run it.
                    raise last_error from None
            else:
                self._breaker.record_success()
                break
        if response is None:
            assert last_error is not None
            raise last_error

        try:
            parsed = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ApiClientError(
                502, f"gateway returned non-JSON ({response.status}): {exc}"
            ) from None
        if response.status >= 400:
            message = parsed.get("error", payload.decode("utf-8", "replace"))
            raise ApiClientError(response.status, message)
        problems = wire.validate_response(parsed)
        if problems:
            raise ApiClientError(
                502, f"gateway response failed validation: {problems[0]}"
            )
        return parsed

    # ------------------------------------------------------------- #
    def submit(
        self,
        spec: dict,
        priority: int = 1,
        job: str | None = None,
        idempotency_key: str | None = None,
    ) -> dict:
        """Submit a job; always idempotent.

        A fresh ``Idempotency-Key`` is generated per call when none is
        supplied and reused across that call's internal retries, so a
        submission that raced a dropped connection can be replayed safely
        — the gateway returns the original job instead of a duplicate.
        """
        if idempotency_key is None:
            idempotency_key = os.urandom(16).hex()
        return self._request(
            "POST",
            "/v1/jobs",
            wire.submit_request(spec, priority, job),
            idempotency_key=idempotency_key,
        )

    def jobs(self) -> dict:
        return self._request("GET", "/v1/jobs")

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{quote(job_id)}")

    def control(self, job_id: str, action: str) -> dict:
        return self._request(
            "POST",
            f"/v1/jobs/{quote(job_id)}/{action}",
            wire.control_request(action),
        )

    def events(self, job_id: str, cursor: int = 0, timeout: float = 10.0) -> dict:
        # X-Request-Timeout propagates the client's deadline so the
        # server's long-poll wait never outlives the caller's patience.
        return self._request(
            "GET",
            f"/v1/jobs/{quote(job_id)}/events?cursor={cursor}&timeout={timeout}",
            request_timeout=timeout,
        )

    def metrics(self, job_id: str | None = None) -> dict:
        if job_id is None:
            return self._request("GET", "/v1/metrics")
        return self._request("GET", f"/v1/jobs/{quote(job_id)}/metrics")

    def quota(self, tenant: str) -> dict:
        return self._request("GET", f"/v1/tenants/{quote(tenant)}/quota")


#: Control legality for the store-backed client: mirror of the gateway's
#: rules so both transports refuse the same requests with the same status.
_CONTROL_OK = {
    "pause": ("queued", "running"),
    "resume": ("paused", "cancelled", "failed"),
    "cancel": ("queued", "running", "paused"),
}
_CONTROL_TARGET = {"pause": "paused", "resume": "queued", "cancel": "cancelled"}

LOCAL_TENANT = "local"


class LocalClient:
    """The same interface served straight from a :class:`JobStore`.

    Job ids are un-namespaced (no ``tenant--`` prefix): the store path
    *is* the trust boundary, exactly as ``repro jobs`` has always
    worked.  Failures raise :class:`ApiClientError` with the status the
    gateway would have used, so the CLI's exit-code mapping is one code
    path for both transports.
    """

    def __init__(self, store: JobStore) -> None:
        self.store = store

    def close(self) -> None:  # interface parity with GatewayClient
        pass

    def __enter__(self) -> "LocalClient":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    # ------------------------------------------------------------- #
    def _load(self, job_id: str):
        try:
            return self.store.load(job_id)
        except KeyError:
            raise ApiClientError(404, f"no job {job_id!r}") from None

    def _document(self, record) -> dict:
        try:
            log = self.store.load_progress(record.id)
        except KeyError:
            from repro.core.progress import ProgressLog

            log = ProgressLog(total=record.spec.space_size)
        return wire.job_response(record, log, LOCAL_TENANT)

    # ------------------------------------------------------------- #
    def submit(self, spec: dict, priority: int = 1, job: str | None = None) -> dict:
        document = wire.submit_request(spec, priority, job)
        problems = wire.validate_request(document)
        if problems:
            raise ApiClientError(400, "; ".join(problems))
        parsed = JobSpec.from_dict(spec)
        try:
            record = self.store.submit(parsed, priority=priority, job_id=job)
        except ValueError as exc:
            raise ApiClientError(409, str(exc)) from None
        return wire.submitted_response(
            record.id, LOCAL_TENANT, priority, parsed.space_size
        )

    def jobs(self) -> dict:
        return wire.job_list_response(
            [self._document(record) for record in self.store.jobs()]
        )

    def status(self, job_id: str) -> dict:
        return self._document(self._load(job_id))

    def control(self, job_id: str, action: str) -> dict:
        if action not in _CONTROL_OK:
            raise ApiClientError(400, f"unknown action {action!r}")
        record = self._load(job_id)
        if record.state not in _CONTROL_OK[action]:
            raise ApiClientError(
                409, f"cannot {action} a {record.state} job ({job_id})"
            )
        self.store.set_state(job_id, _CONTROL_TARGET[action], f"{action} via cli")
        return self._document(self._load(job_id))

    def events(self, job_id: str, cursor: int = 0, timeout: float = 0.0) -> dict:
        if cursor < 0:
            # Gateway parity: a negative cursor is a 400, never a replay.
            raise ApiClientError(400, "cursor must be >= 0")
        record = self._load(job_id)
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            lines, new_cursor = self.store.events_since(job_id, cursor)
            record = self._load(job_id)
            terminal = record.state in TERMINAL_STATES
            if lines or terminal or time.monotonic() >= deadline:
                document = self._document(record)
                return wire.events_response(
                    job_id,
                    new_cursor,
                    lines,
                    record.state,
                    document["progress"],
                    complete=terminal,
                )
            time.sleep(0.05)

    def metrics(self, job_id: str | None = None) -> dict:
        if job_id is None:
            return wire.metrics_response({})
        self._load(job_id)
        return wire.metrics_response(self.store.load_metrics(job_id))

    def quota(self, tenant: str) -> dict:
        raise ApiClientError(
            400, "quota is a gateway feature; use --connect http://..."
        )
