"""One client interface, two transports: HTTP gateway or local store.

``repro jobs`` drives a :class:`LocalClient` when given a store path and
a :class:`GatewayClient` when given ``--connect http://...`` — the same
rendering code consumes the same ``repro-api/v1`` documents either way,
so nothing in the CLI (or in scripts built on it) needs to know whether
the daemon is in-process, on the same host, or across the network.

Both clients raise the same exceptions:

* :class:`ApiClientError` — the request was understood and refused;
  carries the HTTP status (LocalClient synthesizes the matching status
  for the same failure: 404 unknown job, 409 illegal transition, ...).
* :class:`GatewayUnreachable` — nobody answered at the address
  (connection refused/reset, DNS failure); LocalClient never raises it.

:class:`GatewayClient` holds one keep-alive connection and is **not**
thread-safe — concurrent submitters each construct their own (the
benchmark and the concurrency tests do exactly this).
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import quote, urlsplit

from repro.service import wire
from repro.service.jobstore import TERMINAL_STATES, JobSpec, JobStore


class ApiClientError(Exception):
    """The service refused the request; ``status`` is the HTTP code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class GatewayUnreachable(Exception):
    """No gateway answered at the configured address."""


class GatewayClient:
    """Drive a remote ``repro-api/v1`` gateway over one keep-alive socket."""

    def __init__(self, base_url: str, api_key: str, timeout: float = 60.0) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(
                f"--connect wants http://HOST:PORT, got {base_url!r}"
            )
        self.host = split.hostname
        self.port = split.port if split.port is not None else 80
        self.api_key = api_key
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------- #
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, document: dict | None = None) -> dict:
        body = json.dumps(document).encode() if document is not None else None
        headers = {"Authorization": f"Bearer {self.api_key}"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        for attempt in (1, 2):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._connection.request(method, path, body=body, headers=headers)
                response = self._connection.getresponse()
                payload = response.read()
                break
            except (
                http.client.RemoteDisconnected,
                http.client.BadStatusLine,
                ConnectionResetError,
                BrokenPipeError,
            ):
                # The server closed our idle keep-alive socket; one clean
                # retry on a fresh connection, then give up.
                self.close()
                if attempt == 2:
                    raise GatewayUnreachable(
                        f"gateway at {self.host}:{self.port} closed the connection"
                    ) from None
            except OSError as exc:
                self.close()
                raise GatewayUnreachable(
                    f"cannot reach gateway at {self.host}:{self.port}: {exc}"
                ) from None
        try:
            parsed = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ApiClientError(
                502, f"gateway returned non-JSON ({response.status}): {exc}"
            ) from None
        if response.status >= 400:
            message = parsed.get("error", payload.decode("utf-8", "replace"))
            raise ApiClientError(response.status, message)
        problems = wire.validate_response(parsed)
        if problems:
            raise ApiClientError(
                502, f"gateway response failed validation: {problems[0]}"
            )
        return parsed

    # ------------------------------------------------------------- #
    def submit(self, spec: dict, priority: int = 1, job: str | None = None) -> dict:
        return self._request(
            "POST", "/v1/jobs", wire.submit_request(spec, priority, job)
        )

    def jobs(self) -> dict:
        return self._request("GET", "/v1/jobs")

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{quote(job_id)}")

    def control(self, job_id: str, action: str) -> dict:
        return self._request(
            "POST",
            f"/v1/jobs/{quote(job_id)}/{action}",
            wire.control_request(action),
        )

    def events(self, job_id: str, cursor: int = 0, timeout: float = 10.0) -> dict:
        return self._request(
            "GET",
            f"/v1/jobs/{quote(job_id)}/events?cursor={cursor}&timeout={timeout}",
        )

    def metrics(self, job_id: str | None = None) -> dict:
        if job_id is None:
            return self._request("GET", "/v1/metrics")
        return self._request("GET", f"/v1/jobs/{quote(job_id)}/metrics")

    def quota(self, tenant: str) -> dict:
        return self._request("GET", f"/v1/tenants/{quote(tenant)}/quota")


#: Control legality for the store-backed client: mirror of the gateway's
#: rules so both transports refuse the same requests with the same status.
_CONTROL_OK = {
    "pause": ("queued", "running"),
    "resume": ("paused", "cancelled", "failed"),
    "cancel": ("queued", "running", "paused"),
}
_CONTROL_TARGET = {"pause": "paused", "resume": "queued", "cancel": "cancelled"}

LOCAL_TENANT = "local"


class LocalClient:
    """The same interface served straight from a :class:`JobStore`.

    Job ids are un-namespaced (no ``tenant--`` prefix): the store path
    *is* the trust boundary, exactly as ``repro jobs`` has always
    worked.  Failures raise :class:`ApiClientError` with the status the
    gateway would have used, so the CLI's exit-code mapping is one code
    path for both transports.
    """

    def __init__(self, store: JobStore) -> None:
        self.store = store

    def close(self) -> None:  # interface parity with GatewayClient
        pass

    def __enter__(self) -> "LocalClient":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    # ------------------------------------------------------------- #
    def _load(self, job_id: str):
        try:
            return self.store.load(job_id)
        except KeyError:
            raise ApiClientError(404, f"no job {job_id!r}") from None

    def _document(self, record) -> dict:
        try:
            log = self.store.load_progress(record.id)
        except KeyError:
            from repro.core.progress import ProgressLog

            log = ProgressLog(total=record.spec.space_size)
        return wire.job_response(record, log, LOCAL_TENANT)

    # ------------------------------------------------------------- #
    def submit(self, spec: dict, priority: int = 1, job: str | None = None) -> dict:
        document = wire.submit_request(spec, priority, job)
        problems = wire.validate_request(document)
        if problems:
            raise ApiClientError(400, "; ".join(problems))
        parsed = JobSpec.from_dict(spec)
        try:
            record = self.store.submit(parsed, priority=priority, job_id=job)
        except ValueError as exc:
            raise ApiClientError(409, str(exc)) from None
        return wire.submitted_response(
            record.id, LOCAL_TENANT, priority, parsed.space_size
        )

    def jobs(self) -> dict:
        return wire.job_list_response(
            [self._document(record) for record in self.store.jobs()]
        )

    def status(self, job_id: str) -> dict:
        return self._document(self._load(job_id))

    def control(self, job_id: str, action: str) -> dict:
        if action not in _CONTROL_OK:
            raise ApiClientError(400, f"unknown action {action!r}")
        record = self._load(job_id)
        if record.state not in _CONTROL_OK[action]:
            raise ApiClientError(
                409, f"cannot {action} a {record.state} job ({job_id})"
            )
        self.store.set_state(job_id, _CONTROL_TARGET[action], f"{action} via cli")
        return self._document(self._load(job_id))

    def events(self, job_id: str, cursor: int = 0, timeout: float = 0.0) -> dict:
        record = self._load(job_id)
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            lines, new_cursor = self.store.events_since(job_id, cursor)
            record = self._load(job_id)
            terminal = record.state in TERMINAL_STATES
            if lines or terminal or time.monotonic() >= deadline:
                document = self._document(record)
                return wire.events_response(
                    job_id,
                    new_cursor,
                    lines,
                    record.state,
                    document["progress"],
                    complete=terminal,
                )
            time.sleep(0.05)

    def metrics(self, job_id: str | None = None) -> dict:
        if job_id is None:
            return wire.metrics_response({})
        self._load(job_id)
        return wire.metrics_response(self.store.load_metrics(job_id))

    def quota(self, tenant: str) -> dict:
        raise ApiClientError(
            400, "quota is a gateway feature; use --connect http://..."
        )
