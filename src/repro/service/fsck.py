"""``repro fsck`` — scan, quarantine, and repair a job store.

The storage layer promises that every document is either absent or whole
(:func:`~repro.service.jobstore.atomic_write_json`), but
:mod:`~repro.service.faultfs` exists precisely because disks break that
promise: a lying fsync leaves a truncated ``checkpoint.json`` that nothing
notices until a resume explodes hours later.  ``fsck_store`` is the offline
recovery tool for that world.  It walks a store directory, checks every
artifact a :class:`~repro.service.jobstore.JobStore` owns, and — in repair
mode — quarantines what is corrupt and restores what it can:

* ``job.json`` unreadable/invalid → restored from the previous generation
  (``job.prev.json``, retained by :meth:`JobStore.save`) when one survives;
  with no usable previous generation the spec is unrecoverable and the
  whole job directory is quarantined (moved under ``<root>/.quarantine/``);
* ``checkpoint.json`` unreadable/invalid → the corrupt file is quarantined
  and the last consistent generation (``checkpoint.prev.json``, retained by
  :meth:`JobStore.save_progress`) is restored; with no usable previous
  generation the job gets a fresh empty checkpoint (coverage restarts, but
  correctness — every candidate tested at least once — is preserved);
* a stale ``checkpoint.prev.json`` that is itself corrupt → removed;
* ``metrics.json`` unreadable → removed (it is a replaceable export);
* orphan ``*.tmp`` files (an interrupted write) → removed.

Every run produces a ``repro-fsck/v1`` report; :func:`validate_fsck_report`
is its schema gate, mirroring ``validate_job``/``validate_metrics``.  A
*clean* store — one a healthy service produced — yields zero findings, a
property the test suite asserts so fsck can never train operators to
ignore it.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from repro.core.progress import ProgressLog
from repro.obs import NULL_RECORDER, MetricNames, Recorder
from repro.service.jobstore import JobSpec, validate_job

FSCK_SCHEMA = "repro-fsck/v1"

#: Artifact classes a finding can name.
FSCK_ARTIFACTS = ("job", "job_prev", "checkpoint", "checkpoint_prev", "metrics", "tmp")

#: What repair mode did about a finding.
FSCK_ACTIONS = ("none", "repaired", "quarantined", "removed")

_QUARANTINE_DIR = ".quarantine"


def _finding(job: str, artifact: str, path: Path, root: Path, problem: str) -> dict:
    try:
        rel = str(path.relative_to(root))
    except ValueError:  # pragma: no cover - paths always live under root
        rel = str(path)
    return {
        "job": job,
        "artifact": artifact,
        "path": rel,
        "problem": problem,
        "action": "none",
    }


def _quarantine_path(root: Path, name: str) -> Path:
    """A fresh destination under ``<root>/.quarantine`` (never clobbers)."""
    base = root / _QUARANTINE_DIR
    base.mkdir(parents=True, exist_ok=True)
    dest = base / name
    n = 1
    while dest.exists():
        n += 1
        dest = base / f"{name}.{n}"
    return dest


def _load_json(path: Path) -> tuple[dict | None, str | None]:
    """Parse a JSON document; returns ``(document, problem)``."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        return None, f"unreadable: {exc}"
    if not isinstance(document, dict):
        return None, "not a JSON object"
    return document, None


def _job_record_problem(document: dict, job_id: str) -> str | None:
    """Validate one job-record document against its directory."""
    problems = validate_job(document)
    if problems:
        return "; ".join(problems)
    if document.get("kind") != "job":
        return f"kind is {document.get('kind')!r}, expected 'job'"
    if document.get("id") != job_id:
        return f"record id {document.get('id')!r} does not match directory name"
    return None


def _checkpoint_problem(document: dict, job_id: str, space_size: int | None) -> str | None:
    """Validate one checkpoint document against its owning job."""
    problems = validate_job(document)
    if problems:
        return "; ".join(problems)
    if document.get("kind") != "checkpoint":
        return f"kind is {document.get('kind')!r}, expected 'checkpoint'"
    if document.get("job") != job_id:
        return f"belongs to job {document.get('job')!r}, found under {job_id!r}"
    if space_size is not None:
        total = document["progress"].get("total")
        if total != space_size:
            return f"progress total {total} does not match the spec's space of {space_size}"
    return None


def _fresh_checkpoint(store, job_id: str, space_size: int) -> None:
    store.save_progress(job_id, ProgressLog(total=space_size))


def fsck_store(
    root: str | Path,
    repair: bool = False,
    recorder: Recorder | None = None,
) -> dict:
    """Scan (and optionally repair) a job store; return a ``repro-fsck/v1`` report.

    With ``repair=False`` this is a pure read-only audit — nothing on disk
    moves.  With ``repair=True`` corrupt artifacts are quarantined under
    ``<root>/.quarantine/`` (never deleted outright, except replaceable
    metrics exports and orphan temp files) and checkpoints are restored
    from the last consistent generation where one survives.
    """
    from repro.service.jobstore import JobStore

    recorder = recorder or NULL_RECORDER
    root = Path(root)
    findings: list[dict] = []
    scanned = 0
    store = JobStore(root) if repair else None

    job_dirs = sorted(
        path
        for path in (root.iterdir() if root.exists() else [])
        if path.is_dir() and path.name != _QUARANTINE_DIR
    )
    for job_dir in job_dirs:
        scanned += 1
        recorder.counter(MetricNames.FSCK_SCANNED)
        findings.extend(_fsck_job_dir(job_dir, root, repair, store, recorder))

    repaired = sum(1 for f in findings if f["action"] == "repaired")
    quarantined = sum(1 for f in findings if f["action"] == "quarantined")
    removed = sum(1 for f in findings if f["action"] == "removed")
    return {
        "schema": FSCK_SCHEMA,
        "store": str(root),
        "scanned": scanned,
        "clean": not findings,
        "findings": findings,
        "repaired": repaired,
        "quarantined": quarantined,
        "removed": removed,
    }


def _fsck_job_dir(
    job_dir: Path, root: Path, repair: bool, store, recorder: Recorder
) -> list[dict]:
    job_id = job_dir.name
    findings: list[dict] = []
    job_path = job_dir / "job.json"
    job_prev_path = job_dir / "job.prev.json"
    checkpoint_path = job_dir / "checkpoint.json"
    prev_path = job_dir / "checkpoint.prev.json"
    metrics_path = job_dir / "metrics.json"

    def flag(artifact: str, path: Path, problem: str) -> dict:
        finding = _finding(job_id, artifact, path, root, problem)
        findings.append(finding)
        recorder.counter(MetricNames.FSCK_CORRUPT, artifact=artifact)
        return finding

    # -- the previous job-record generation ------------------------------ #
    job_prev_ok = False
    if job_prev_path.exists():
        prev_doc, prev_problem = _load_json(job_prev_path)
        if prev_problem is None:
            prev_problem = _job_record_problem(prev_doc, job_id)
        if prev_problem is None:
            job_prev_ok = True
        else:
            finding = flag("job_prev", job_prev_path, prev_problem)
            if repair:
                job_prev_path.unlink()
                finding["action"] = "removed"
                recorder.counter(MetricNames.FSCK_QUARANTINED)

    # -- the job record: restore from prev, else the spec is gone -------- #
    problem = None
    if not job_path.exists():
        problem = "missing job.json (orphan job directory)"
        job_doc = None
    else:
        job_doc, problem = _load_json(job_path)
        if job_doc is not None and problem is None:
            problem = _job_record_problem(job_doc, job_id)
    if problem is not None:
        finding = flag("job", job_path, problem)
        if repair:
            if job_prev_ok:
                # A single bad rewrite of job.json must never lose the
                # submission: quarantine the corpse, restore the previous
                # generation (an older lifecycle state is safe — the
                # scheduler simply resumes from the durable checkpoint).
                if job_path.exists():
                    shutil.move(
                        str(job_path),
                        str(_quarantine_path(root, f"{job_id}.job.json")),
                    )
                shutil.copy2(job_prev_path, job_path)
                finding["action"] = "repaired"
                recorder.counter(MetricNames.FSCK_REPAIRED)
                job_doc, _ = _load_json(job_path)
            else:
                shutil.move(str(job_dir), str(_quarantine_path(root, job_id)))
                finding["action"] = "quarantined"
                recorder.counter(MetricNames.FSCK_QUARANTINED)
                return findings
        else:
            return findings

    spec = JobSpec.from_dict(job_doc["spec"])
    space_size = spec.space_size

    # -- the previous checkpoint generation ----------------------------- #
    prev_ok = False
    if prev_path.exists():
        prev_doc, prev_problem = _load_json(prev_path)
        if prev_problem is None:
            prev_problem = _checkpoint_problem(prev_doc, job_id, space_size)
        if prev_problem is None:
            prev_ok = True
        else:
            finding = flag("checkpoint_prev", prev_path, prev_problem)
            if repair:
                prev_path.unlink()
                finding["action"] = "removed"
                recorder.counter(MetricNames.FSCK_QUARANTINED)

    # -- the live checkpoint -------------------------------------------- #
    checkpoint_restored = False
    if not checkpoint_path.exists():
        finding = flag("checkpoint", checkpoint_path, "missing checkpoint.json")
        if repair:
            if prev_ok:
                shutil.copy2(prev_path, checkpoint_path)
                finding["action"] = "repaired"
                recorder.counter(MetricNames.FSCK_REPAIRED)
            else:
                _fresh_checkpoint(store, job_id, space_size)
                finding["action"] = "repaired"
                recorder.counter(MetricNames.FSCK_REPAIRED)
            checkpoint_restored = True
    else:
        ck_doc, ck_problem = _load_json(checkpoint_path)
        if ck_problem is None:
            ck_problem = _checkpoint_problem(ck_doc, job_id, space_size)
        if ck_problem is not None:
            finding = flag("checkpoint", checkpoint_path, ck_problem)
            if repair:
                dest = _quarantine_path(root, f"{job_id}.checkpoint.json")
                shutil.move(str(checkpoint_path), str(dest))
                if prev_ok:
                    shutil.copy2(prev_path, checkpoint_path)
                    finding["action"] = "repaired"
                    recorder.counter(MetricNames.FSCK_REPAIRED)
                else:
                    _fresh_checkpoint(store, job_id, space_size)
                    finding["action"] = "quarantined"
                    recorder.counter(MetricNames.FSCK_QUARANTINED)
                checkpoint_restored = True

    # -- reconcile a terminal record with a rolled-back checkpoint -------- #
    # ``done`` has no outbound transitions, so a job whose checkpoint was
    # restored to an earlier (unsatisfied) generation would be stuck
    # claiming completion its ledger no longer backs.  Requeue it: the
    # record write goes through JobStore.save directly, which is exactly
    # the transition-table bypass an offline repair tool is licensed to use.
    if checkpoint_restored and job_doc.get("state") == "done":
        restored_doc, _ = _load_json(checkpoint_path)
        log = ProgressLog.from_json(json.dumps(restored_doc["progress"]))
        if not (log.is_complete or (spec.stop_on_first and log.found)):
            record = store.load(job_id)
            record.state = "queued"
            record.message = "requeued by fsck: checkpoint rolled back before completion"
            store.save(record)
            finding = flag(
                "job", job_path, "state 'done' is ahead of the restored checkpoint"
            )
            finding["action"] = "repaired"
            recorder.counter(MetricNames.FSCK_REPAIRED)

    # -- the metrics export: replaceable, so corrupt means remove -------- #
    if metrics_path.exists():
        _, metrics_problem = _load_json(metrics_path)
        if metrics_problem is not None:
            finding = flag("metrics", metrics_path, metrics_problem)
            if repair:
                metrics_path.unlink()
                finding["action"] = "removed"
                recorder.counter(MetricNames.FSCK_QUARANTINED)

    # -- orphan temp files from interrupted writes ----------------------- #
    for tmp in sorted(job_dir.glob("*.tmp")):
        finding = flag("tmp", tmp, "orphan temp file from an interrupted write")
        if repair:
            tmp.unlink()
            finding["action"] = "removed"
            recorder.counter(MetricNames.FSCK_QUARANTINED)

    return findings


def validate_fsck_report(document: object) -> list[str]:
    """Validate a ``repro-fsck/v1`` report; returns a list of problems."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["fsck report must be an object"]
    if document.get("schema") != FSCK_SCHEMA:
        problems.append(f"schema must be {FSCK_SCHEMA!r}")
    if not isinstance(document.get("store"), str) or not document.get("store"):
        problems.append("store must be a non-empty path string")
    for count in ("scanned", "repaired", "quarantined", "removed"):
        value = document.get(count)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{count} must be a non-negative integer")
    if not isinstance(document.get("clean"), bool):
        problems.append("clean must be a boolean")
    findings = document.get("findings")
    if not isinstance(findings, list):
        problems.append("findings must be a list")
        return problems
    if document.get("clean") is True and findings:
        problems.append("clean is true but findings is non-empty")
    for finding in findings:
        if not isinstance(finding, dict):
            problems.append("findings entries must be objects")
            continue
        for key in ("job", "path", "problem"):
            if not isinstance(finding.get(key), str) or not finding.get(key):
                problems.append(f"finding missing a non-empty {key!r}")
        if finding.get("artifact") not in FSCK_ARTIFACTS:
            problems.append(
                f"finding artifact {finding.get('artifact')!r} must be one of "
                f"{FSCK_ARTIFACTS}"
            )
        if finding.get("action") not in FSCK_ACTIONS:
            problems.append(
                f"finding action {finding.get('action')!r} must be one of {FSCK_ACTIONS}"
            )
    return problems
