"""Client-side retry, backoff, and circuit breaking for the gateway path.

The cluster layer already knows how to live with flaky peers: workers
reconnect under :class:`~repro.cluster.health.BackoffPolicy` and the
master quarantines repeat offenders
(:class:`~repro.cluster.health.HealthMonitor`).  This module ports those
exact semantics to the *client* side of the HTTP gateway so a burst of
connection errors neither gives up on the first drop nor hammers a sick
server in a tight loop:

* :class:`RetryPolicy` — how many attempts an operation gets and the
  jittered exponential delay between them (delegating the delay math to
  the shared :class:`BackoffPolicy`, one backoff idiom repo-wide);
* :class:`CircuitBreaker` — per-host closed → open → half-open state
  machine mirroring the health monitor's quarantine: ``failures``
  errors within ``window`` seconds open the circuit for ``period``
  seconds, then exactly one probe request is let through, and only its
  success restores full traffic;
* :class:`BreakerRegistry` — the per-host breaker table a process-wide
  client shares, with a ``reset()`` for tests.

Everything takes an explicit clock so the whole state machine is
unit-testable without sleeping, exactly like ``HealthMonitor``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.cluster.health import BackoffPolicy

#: Circuit states, named after the electrical metaphor: a *closed*
#: circuit conducts (requests flow), an *open* one does not.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """How a gateway operation retries: attempt budget + jittered backoff."""

    #: Total attempts including the first (1 disables retries).
    attempts: int = 4
    #: Delay schedule between attempts; the defaults keep a full retry
    #: cycle under ~2 s so an interactive CLI stays responsive.
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(base=0.05, cap=1.0, jitter=0.5)
    )

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Seconds to sleep before retry *attempt* (0-based, i.e. after
        the ``attempt + 1``-th failure)."""
        return self.backoff.delay(attempt, rng)


@dataclass(frozen=True)
class BreakerConfig:
    """Quarantine knobs, defaulting to the health monitor's shape."""

    #: Failures within ``window`` that open the circuit.
    failures: int = 3
    #: Sliding window (seconds) the failure count is evaluated over.
    window: float = 30.0
    #: How long the circuit stays open before one probe is allowed.
    period: float = 5.0

    def __post_init__(self) -> None:
        if self.failures < 1:
            raise ValueError("failures must be >= 1")
        if self.window <= 0 or self.period < 0:
            raise ValueError("window/period must be positive")


class CircuitBreaker:
    """One host's closed → open → half-open quarantine state machine.

    Thread-safe; all transitions take an explicit ``now`` (falling back
    to the injected clock) so tests drive it deterministically.
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures: list[float] = []  #: recent failure timestamps
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self, now: float | None = None) -> bool:
        """May a request go out right now?

        Open circuits fast-fail until ``period`` elapses; then the
        breaker goes half-open and admits exactly one probe — concurrent
        callers keep fast-failing until that probe reports back.
        """
        now = self._clock() if now is None else now
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if now - self._opened_at < self.config.period:
                    return False
                self._state = HALF_OPEN
                self._probing = False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self, now: float | None = None) -> None:
        """A request completed; a successful probe restores full duty."""
        with self._lock:
            self._failures.clear()
            self._state = CLOSED
            self._probing = False

    def record_failure(self, now: float | None = None) -> None:
        """A request failed at the transport level.

        A failed probe re-opens the circuit for a fresh ``period``;
        otherwise failures accumulate in the sliding window until they
        cross the threshold.
        """
        now = self._clock() if now is None else now
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = now
                self._probing = False
                self._failures.clear()
                return
            self._failures.append(now)
            self._failures = [
                t for t in self._failures if now - t <= self.config.window
            ]
            if len(self._failures) >= self.config.failures:
                self._state = OPEN
                self._opened_at = now
                self._failures.clear()

    def seconds_until_probe(self, now: float | None = None) -> float:
        """How long until an open circuit will admit its probe (0 if now)."""
        now = self._clock() if now is None else now
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self.config.period - (now - self._opened_at))


class BreakerRegistry:
    """The per-host breaker table shared by every client in a process.

    One breaker per ``host:port`` string means two clients talking to the
    same sick gateway share its quarantine state instead of each paying
    the full failure budget independently.
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker_for(self, host: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(host)
            if breaker is None:
                breaker = CircuitBreaker(self.config, self._clock)
                self._breakers[host] = breaker
            return breaker

    def reset(self) -> None:
        """Forget all breaker state (test isolation)."""
        with self._lock:
            self._breakers.clear()


#: The process-wide registry :class:`~repro.service.client.GatewayClient`
#: uses by default; tests construct their own.
DEFAULT_BREAKERS = BreakerRegistry()
