"""Durable crack jobs: specs, states, and checkpoints on disk.

The paper's dispatch pattern assumes a live master that either finishes a
search or re-scatters it; a production auditing service needs runs that
survive process death.  This module is the persistence layer for that:

* :class:`JobSpec` — everything needed to reconstruct a search (target,
  charset, length window, backend config), JSON-serializable;
* :class:`JobRecord` — a spec plus scheduling state (priority, lifecycle
  state, timestamps);
* :class:`JobStore` — a directory of jobs, one subdirectory each, holding
  ``job.json`` (the record), ``checkpoint.json`` (the serialized
  :class:`~repro.core.progress.ProgressLog`), ``metrics.json`` (the job's
  latest ``repro-metrics/v2`` export) and ``events.log`` (an appended
  human-readable timeline for ``repro jobs tail``).

Every document carries the versioned ``repro-job/v1`` schema tag and is
written atomically — serialize to a temp file in the same directory,
``fsync``, then ``os.replace`` — so a reader (or a resuming process) never
observes a torn write.  :func:`validate_job` is the schema gate: CI runs it
over every checkpoint the service smoke test produces, and
:meth:`JobStore.load` runs it on every read so corruption surfaces as a
clear error instead of a silently wrong resume.
"""

from __future__ import annotations

import errno
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.cracking import CrackTarget
from repro.core.progress import CorruptCheckpointError, ProgressLog
from repro.kernels.variants import HashAlgorithm

JOB_SCHEMA = "repro-job/v1"

#: Lifecycle states and the legal transitions between them.
JOB_STATES = ("queued", "running", "paused", "done", "cancelled", "failed")
_TRANSITIONS = {
    "queued": {"running", "paused", "cancelled", "done", "failed"},
    "running": {"queued", "paused", "done", "cancelled", "failed"},
    "paused": {"queued", "cancelled"},
    "done": set(),
    "cancelled": {"queued"},  # an operator may resurrect a cancelled job
    "failed": {"queued"},  # ...or retry a failed one
}

#: States the scheduler considers for dispatch.
RUNNABLE_STATES = ("queued", "running")
#: States no scheduler will ever pick up again (without an explicit resume).
TERMINAL_STATES = ("done", "cancelled", "failed")


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory so a rename survives power loss.

    Directories cannot be opened for fsync on every platform; failure to
    flush metadata must never fail the write that already landed.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: Path, document: dict, faults=None) -> None:
    """Durably replace *path* with *document*: write-temp + fsync + rename.

    ``os.replace`` is atomic on POSIX within one filesystem, so a reader
    sees either the old complete document or the new complete document —
    never a prefix.  The temp file lives next to the target to stay on the
    same filesystem, and the parent directory is fsynced after the rename
    so a crash immediately afterwards cannot roll the entry back.

    *faults* is an optional :class:`~repro.service.faultfs.FaultInjector`;
    when set, the write may fail with an injected :class:`OSError` or land
    corrupted, exactly as a failing disk would make it.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    payload = json.dumps(document, indent=2) + "\n"
    if faults is not None:
        faults.before_write(path, tmp, payload)
    with open(tmp, "w") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    if faults is not None:
        faults.after_replace(path, payload)


@dataclass(frozen=True)
class JobSpec:
    """The reconstructible description of one crack search.

    Mirrors :class:`~repro.apps.cracking.CrackTarget` plus the execution
    knobs a scheduler needs (backend config, chunk/batch sizing, stop
    condition).  Bytes fields travel as latin-1 strings in JSON, the
    digest as hex.
    """

    digest: bytes
    charset: str  #: the alphabet, in digit order
    algorithm: str = "md5"  #: "md5" | "sha1"
    min_length: int = 1
    max_length: int = 4
    prefix: bytes = b""
    suffix: bytes = b""
    batch_size: int = 1 << 14
    chunk_size: int = 1 << 12
    stop_on_first: bool = True
    backend: str = "serial"  #: execution backend the job's chunks run on
    workers: int = 1

    def __post_init__(self) -> None:
        if self.chunk_size <= 0 or self.batch_size <= 0:
            raise ValueError("chunk_size and batch_size must be positive")
        self.to_target()  # fail submission-time, not dispatch-time

    def to_target(self) -> CrackTarget:
        """Rebuild the :class:`CrackTarget` this spec describes."""
        from repro.keyspace import Charset

        return CrackTarget(
            algorithm=HashAlgorithm(self.algorithm),
            digest=self.digest,
            charset=Charset(self.charset),
            min_length=self.min_length,
            max_length=self.max_length,
            prefix=self.prefix,
            suffix=self.suffix,
        )

    @property
    def space_size(self) -> int:
        return self.to_target().space_size

    def to_dict(self) -> dict:
        return {
            "digest": self.digest.hex(),
            "charset": self.charset,
            "algorithm": self.algorithm,
            "min_length": self.min_length,
            "max_length": self.max_length,
            "prefix": self.prefix.decode("latin-1"),
            "suffix": self.suffix.decode("latin-1"),
            "batch_size": self.batch_size,
            "chunk_size": self.chunk_size,
            "stop_on_first": self.stop_on_first,
            "backend": self.backend,
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return cls(
            digest=bytes.fromhex(data["digest"]),
            charset=data["charset"],
            algorithm=data.get("algorithm", "md5"),
            min_length=data.get("min_length", 1),
            max_length=data.get("max_length", 4),
            prefix=data.get("prefix", "").encode("latin-1"),
            suffix=data.get("suffix", "").encode("latin-1"),
            batch_size=data.get("batch_size", 1 << 14),
            chunk_size=data.get("chunk_size", 1 << 12),
            stop_on_first=data.get("stop_on_first", True),
            backend=data.get("backend", "serial"),
            workers=data.get("workers", 1),
        )


@dataclass
class JobRecord:
    """One job's durable identity: spec + scheduling state."""

    id: str
    spec: JobSpec
    priority: int = 1
    state: str = "queued"
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)
    message: str = ""  #: last state-change annotation (e.g. failure reason)

    def to_document(self) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "kind": "job",
            "id": self.id,
            "spec": self.spec.to_dict(),
            "priority": self.priority,
            "state": self.state,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "message": self.message,
        }

    @classmethod
    def from_document(cls, document: dict) -> "JobRecord":
        problems = validate_job(document)
        if problems:
            raise ValueError(f"invalid {JOB_SCHEMA} job document: {'; '.join(problems)}")
        return cls(
            id=document["id"],
            spec=JobSpec.from_dict(document["spec"]),
            priority=document["priority"],
            state=document["state"],
            created_at=document["created_at"],
            updated_at=document["updated_at"],
            message=document.get("message", ""),
        )


def validate_job(document: object) -> list[str]:
    """Validate a ``repro-job/v1`` document (job record or checkpoint).

    Returns a list of problems; empty means the document conforms.  The
    same gate guards :meth:`JobStore.load`, the CLI, and CI's service
    smoke job — one validator, referenced everywhere, like
    :func:`repro.obs.validate_metrics`.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["job document must be an object"]
    if document.get("schema") != JOB_SCHEMA:
        problems.append(f"schema must be {JOB_SCHEMA!r}")
    kind = document.get("kind")
    if kind == "job":
        if not isinstance(document.get("id"), str) or not document.get("id"):
            problems.append("job needs a non-empty string id")
        if not isinstance(document.get("priority"), int) or document.get("priority", 0) < 1:
            problems.append("priority must be an integer >= 1")
        if document.get("state") not in JOB_STATES:
            problems.append(f"state must be one of {JOB_STATES}")
        for ts in ("created_at", "updated_at"):
            if not isinstance(document.get(ts), (int, float)):
                problems.append(f"{ts} must be a unix timestamp")
        spec = document.get("spec")
        if not isinstance(spec, dict):
            problems.append("spec must be an object")
        else:
            try:
                JobSpec.from_dict(spec)
            except (KeyError, TypeError, ValueError) as exc:
                problems.append(f"spec does not describe a valid target: {exc}")
    elif kind == "checkpoint":
        if not isinstance(document.get("job"), str) or not document.get("job"):
            problems.append("checkpoint needs the owning job id")
        progress = document.get("progress")
        if not isinstance(progress, dict):
            problems.append("checkpoint needs a progress object")
        else:
            try:
                log = ProgressLog.from_json(json.dumps(progress))
            except CorruptCheckpointError as exc:
                problems.append(f"progress: {exc}")
            else:
                checksum = document.get("progress_sha256")
                if checksum is not None and checksum != log.digest():
                    problems.append(
                        "progress_sha256 does not match the progress payload"
                    )
    else:
        problems.append("kind must be 'job' or 'checkpoint'")
    return problems


class JobStore:
    """A directory of persisted jobs; every write is atomic.

    Layout::

        <root>/<job-id>/job.json         # JobRecord (repro-job/v1, kind=job)
        <root>/<job-id>/checkpoint.json  # ProgressLog (kind=checkpoint)
        <root>/<job-id>/metrics.json     # latest repro-metrics/v2 export
        <root>/<job-id>/events.log       # appended timeline lines
    """

    def __init__(self, root: str | Path, faults=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: optional :class:`~repro.service.faultfs.FaultInjector`; every
        #: durable write in this store flows through it when set.
        self.faults = faults

    # -- paths --------------------------------------------------------- #
    def job_dir(self, job_id: str) -> Path:
        return self.root / job_id

    def _job_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def _checkpoint_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "checkpoint.json"

    def _checkpoint_prev_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "checkpoint.prev.json"

    def _job_prev_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.prev.json"

    def _metrics_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "metrics.json"

    def _events_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "events.log"

    # -- lifecycle ------------------------------------------------------ #
    def submit(
        self, spec: JobSpec, priority: int = 1, job_id: str | None = None
    ) -> JobRecord:
        """Persist a new queued job (record + a fresh empty checkpoint)."""
        if priority < 1:
            raise ValueError("priority must be >= 1")
        if job_id is None:
            job_id = self._fresh_id(spec)
        try:
            self.job_dir(job_id).mkdir(parents=True, exist_ok=False)
        except FileExistsError:
            raise ValueError(f"job {job_id!r} already exists in {self.root}") from None
        record = JobRecord(id=job_id, spec=spec, priority=priority)
        atomic_write_json(self._job_path(job_id), record.to_document(), self.faults)
        # Read-back gate: an *accepted* submission must be durably whole.
        # A lying fsync can leave job.json truncated while the write
        # reported success; without this check the client would treat the
        # submission as accepted and fsck would later have nothing to
        # repair it from.  Failing the submit here keeps the contract
        # "accepted means never lost" — the caller retries.
        try:
            self.load(job_id)
        except (ValueError, json.JSONDecodeError) as exc:
            raise OSError(
                errno.EIO, f"job record for {job_id!r} failed read-back: {exc}"
            ) from None
        self.save_progress(job_id, ProgressLog(total=spec.space_size))
        self.append_event(
            job_id,
            f"submitted priority={priority} space={spec.space_size} "
            f"backend={spec.backend}",
        )
        return record

    def _fresh_id(self, spec: JobSpec) -> str:
        stem = spec.digest.hex()[:8]
        job_id = f"job-{stem}"
        n = 1
        while self.job_dir(job_id).exists():
            n += 1
            job_id = f"job-{stem}-{n}"
        return job_id

    def load(self, job_id: str) -> JobRecord:
        """Read and validate one job record."""
        path = self._job_path(job_id)
        if not path.exists():
            raise KeyError(f"no job {job_id!r} in {self.root}")
        with open(path) as handle:
            return JobRecord.from_document(json.load(handle))

    def save(self, record: JobRecord) -> None:
        record.updated_at = time.time()
        path = self._job_path(record.id)
        if path.exists():
            # Same retention as checkpoints: if this rewrite lands torn
            # (or a lying fsync truncates it), ``repro fsck`` restores the
            # previous generation instead of quarantining the whole job —
            # an accepted submission survives any single bad write.
            self._retain_previous(path, self._job_prev_path(record.id))
        atomic_write_json(path, record.to_document(), self.faults)

    def jobs(self) -> list[JobRecord]:
        """All valid job records, sorted by id."""
        out = []
        for path in sorted(self.root.iterdir()) if self.root.exists() else []:
            if (path / "job.json").exists():
                out.append(self.load(path.name))
        return out

    def set_state(self, job_id: str, state: str, message: str = "") -> JobRecord:
        """Transition a job's lifecycle state (legal transitions only)."""
        record = self.load(job_id)
        if state == record.state:
            return record
        if state not in _TRANSITIONS[record.state]:
            raise ValueError(
                f"job {job_id} cannot go {record.state} -> {state}"
            )
        record.state = state
        record.message = message
        self.save(record)
        self.append_event(job_id, f"state -> {state}" + (f" ({message})" if message else ""))
        return record

    def set_priority(self, job_id: str, priority: int) -> JobRecord:
        if priority < 1:
            raise ValueError("priority must be >= 1")
        record = self.load(job_id)
        record.priority = priority
        self.save(record)
        self.append_event(job_id, f"priority -> {priority}")
        return record

    # -- checkpoints ---------------------------------------------------- #
    def save_progress(self, job_id: str, log: ProgressLog) -> None:
        """Atomically persist one job's coverage ledger.

        The outgoing generation is retained as ``checkpoint.prev.json``
        (via a hard link, so retention is atomic and costs no copy)
        before the new one replaces ``checkpoint.json``.  If the new
        write lands corrupted — a torn write or a lying fsync —
        ``repro fsck`` repairs from that last consistent generation
        instead of resetting the job to zero coverage.
        """
        document = {
            "schema": JOB_SCHEMA,
            "kind": "checkpoint",
            "job": job_id,
            "written_at": time.time(),
            "progress": json.loads(log.to_json()),
            "progress_sha256": log.digest(),
        }
        current = self._checkpoint_path(job_id)
        if current.exists():
            self._retain_previous(current, self._checkpoint_prev_path(job_id))
        atomic_write_json(current, document, self.faults)

    @staticmethod
    def _retain_previous(current: Path, prev: Path) -> None:
        """Keep *current* as *prev* via a hard link (atomic, no copy)."""
        tmp = prev.with_name(prev.name + ".tmp")
        try:
            if tmp.exists():
                tmp.unlink()
            os.link(current, tmp)
            os.replace(tmp, prev)
        except OSError:
            # Retention is an optimization for fsck repair; it must never
            # block the write itself (e.g. no hard links on this
            # filesystem).
            pass

    def load_progress(self, job_id: str) -> ProgressLog:
        """Restore one job's ledger; corrupt checkpoints raise clearly."""
        path = self._checkpoint_path(job_id)
        if not path.exists():
            raise KeyError(f"job {job_id!r} has no checkpoint in {self.root}")
        try:
            with open(path) as handle:
                document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CorruptCheckpointError(
                f"checkpoint for {job_id!r} is not valid JSON: {exc}"
            ) from exc
        problems = validate_job(document)
        if problems:
            raise CorruptCheckpointError(
                f"checkpoint for {job_id!r} is invalid: {'; '.join(problems)}"
            )
        return ProgressLog.from_json(json.dumps(document["progress"]))

    def checkpoint_writer(self, job_id: str):
        """A ``checkpoint(log)`` callable bound to this job — the hook
        :meth:`repro.core.session.CrackingSession.run` and
        :meth:`repro.cluster.runtime.DistributedMaster.run` accept."""
        return lambda log: self.save_progress(job_id, log)

    # -- metrics + events ----------------------------------------------- #
    def save_metrics(self, job_id: str, payload: dict) -> None:
        atomic_write_json(self._metrics_path(job_id), payload, self.faults)

    def load_metrics(self, job_id: str) -> dict | None:
        path = self._metrics_path(job_id)
        if not path.exists():
            return None
        with open(path) as handle:
            return json.load(handle)

    def append_event(self, job_id: str, text: str) -> None:
        path = self._events_path(job_id)
        if self.faults is not None:
            self.faults.before_append(path)
        with open(path, "a") as handle:
            handle.write(f"{time.time():.3f} {text}\n")

    def events_since(self, job_id: str, cursor: int = 0) -> tuple[list[str], int]:
        """Timeline lines after *cursor*, plus the new cursor (line count).

        The long-poll gateway stream is built on this: a client holds the
        cursor from its last delta and asks again.  A cursor beyond the
        file (e.g. after a store rebuild) restarts from the beginning
        rather than silently dropping lines forever.
        """
        path = self._events_path(job_id)
        if not path.exists():
            return [], 0
        with open(path) as handle:
            lines = [line.rstrip("\n") for line in handle]
        if cursor > len(lines) or cursor < 0:
            cursor = 0
        return lines[cursor:], len(lines)

    def tail_events(self, job_id: str, count: int = 10) -> list[str]:
        path = self._events_path(job_id)
        if not path.exists():
            return []
        with open(path) as handle:
            lines = [line.rstrip("\n") for line in handle]
        return lines[-count:]
