"""Persistent job service: checkpointed crack jobs over one backend pool.

The missing production layer around the paper's dispatch pattern — runs
that survive process death and a front door that multiplexes many
concurrent searches over one machine's execution backends:

* :mod:`repro.service.jobstore` — durable ``repro-job/v1`` job specs and
  atomic :class:`~repro.core.progress.ProgressLog` checkpoints
  (write-temp + fsync + rename), with a schema validator;
* :mod:`repro.service.scheduler` — deficit-round-robin fair sharing of a
  shared backend pool across prioritized jobs, with cooperative
  chunk-boundary preemption (pause/resume/cancel/drain);
* :mod:`repro.service.daemon` — the ``repro serve`` loop: poll the store,
  schedule, drain gracefully on SIGINT/SIGTERM.

Typical embedding::

    from repro.service import JobSpec, JobStore, Scheduler

    store = JobStore("jobs/")
    store.submit(JobSpec(digest=..., charset="abc..."), priority=4)
    Scheduler(store, backend="process", workers=8).run_until_idle()
"""

from repro.service.jobstore import (
    JOB_SCHEMA,
    JOB_STATES,
    RUNNABLE_STATES,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    JobStore,
    atomic_write_json,
    validate_job,
)
from repro.service.scheduler import Scheduler, SliceResult
from repro.service.daemon import ServeSummary, serve

__all__ = [
    "JOB_SCHEMA",
    "JOB_STATES",
    "RUNNABLE_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "atomic_write_json",
    "validate_job",
    "Scheduler",
    "SliceResult",
    "ServeSummary",
    "serve",
]
