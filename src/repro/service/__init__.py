"""Persistent job service: checkpointed crack jobs over one backend pool.

The missing production layer around the paper's dispatch pattern — runs
that survive process death and a front door that multiplexes many
concurrent searches over one machine's execution backends:

* :mod:`repro.service.jobstore` — durable ``repro-job/v1`` job specs and
  atomic :class:`~repro.core.progress.ProgressLog` checkpoints
  (write-temp + fsync + rename), with a schema validator;
* :mod:`repro.service.scheduler` — deficit-round-robin fair sharing of a
  shared backend pool across prioritized jobs, with cooperative
  chunk-boundary preemption (pause/resume/cancel/drain);
* :mod:`repro.service.daemon` — the ``repro serve`` loop: poll the store,
  schedule, drain gracefully on SIGINT/SIGTERM;
* :mod:`repro.service.api` — the multi-tenant asyncio HTTP gateway
  (``repro serve --listen``): API-key auth, per-tenant quotas and rate
  limits, ``repro-api/v1`` wire documents (:mod:`repro.service.wire`,
  :mod:`repro.service.auth`, :mod:`repro.service.tenancy`);
* :mod:`repro.service.client` — :class:`GatewayClient` (HTTP) and
  :class:`LocalClient` (direct store) behind one interface, so the CLI
  drives either with the same code paths;
* :mod:`repro.service.faultfs` / :mod:`repro.service.fsck` /
  :mod:`repro.service.resilience` — the storm-proofing layer: seeded
  storage fault injection, the ``repro fsck`` scan/quarantine/repair
  machinery (``repro-fsck/v1`` reports), and the client-side retry +
  circuit-breaker policies (docs/FAULT_TOLERANCE.md).

Typical embedding::

    from repro.service import JobSpec, JobStore, Scheduler

    store = JobStore("jobs/")
    store.submit(JobSpec(digest=..., charset="abc..."), priority=4)
    Scheduler(store, backend="process", workers=8).run_until_idle()
"""

from repro.service.jobstore import (
    JOB_SCHEMA,
    JOB_STATES,
    RUNNABLE_STATES,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    JobStore,
    atomic_write_json,
    validate_job,
)
from repro.service.scheduler import Scheduler, SliceResult
from repro.service.daemon import ServeSummary, serve
from repro.service.wire import API_SCHEMA, validate_request, validate_response
from repro.service.auth import ApiKeyring, AuthError
from repro.service.tenancy import (
    KEYS_SCHEMA,
    QuotaError,
    RateLimitError,
    TenantConfig,
    TenantRegistry,
    load_tenants,
)
from repro.service.api import ApiServer, ApiServerThread
from repro.service.client import (
    ApiClientError,
    CircuitOpenError,
    GatewayClient,
    GatewayUnreachable,
    LocalClient,
)
from repro.service.faultfs import FaultConfig, FaultInjector, InjectedFault
from repro.service.fsck import FSCK_SCHEMA, fsck_store, validate_fsck_report
from repro.service.resilience import (
    BreakerConfig,
    BreakerRegistry,
    CircuitBreaker,
    RetryPolicy,
)

__all__ = [
    "JOB_SCHEMA",
    "JOB_STATES",
    "RUNNABLE_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "atomic_write_json",
    "validate_job",
    "Scheduler",
    "SliceResult",
    "ServeSummary",
    "serve",
    "API_SCHEMA",
    "validate_request",
    "validate_response",
    "ApiKeyring",
    "AuthError",
    "KEYS_SCHEMA",
    "QuotaError",
    "RateLimitError",
    "TenantConfig",
    "TenantRegistry",
    "load_tenants",
    "ApiServer",
    "ApiServerThread",
    "ApiClientError",
    "CircuitOpenError",
    "GatewayClient",
    "GatewayUnreachable",
    "LocalClient",
    "FaultConfig",
    "FaultInjector",
    "InjectedFault",
    "FSCK_SCHEMA",
    "fsck_store",
    "validate_fsck_report",
    "BreakerConfig",
    "BreakerRegistry",
    "CircuitBreaker",
    "RetryPolicy",
]
