"""The paper's primary contribution: the exhaustive-search pattern.

* :mod:`repro.core.search` — the formal pattern of Section III-A: a
  bijection ``f``, a cheap incremental ``next``, a test ``C``, an optional
  merge, and a sequential reference driver that measures the
  ``K_next << K_f`` efficiency claim;
* :mod:`repro.core.costs` — the cost model: ``K_search`` closed forms and
  the ``K_D`` dispatch bounds;
* :mod:`repro.core.backend` — pluggable execution backends (serial /
  thread pool / process pool) with picklable work units and per-worker
  measured throughput;
* :mod:`repro.core.session` — the user-facing API tying a crack target to
  a backend (local CPU pool, simulated GPU cluster, or the sequential
  reference);
* :mod:`repro.core.results` — result/estimate types.
"""

from repro.core.search import ExhaustiveSearch, SearchProblem, SearchOutcome, keyspace_problem
from repro.core.backend import (
    BackendOutcome,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkUnit,
    execute_work_unit,
    measure_backend_throughput,
    resolve_backend,
)
from repro.core.costs import (
    CostModel,
    DispatchCosts,
    dispatch_bounds,
    process_efficiency,
    sequential_search_cost,
)
from repro.core.session import CrackingSession, SessionEstimate, SessionResult
from repro.core.planner import (
    Assessment,
    PasswordPolicy,
    assess,
    minimum_length_for,
    scaling_outlook,
)

__all__ = [
    "BackendOutcome",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "WorkUnit",
    "execute_work_unit",
    "measure_backend_throughput",
    "resolve_backend",
    "ExhaustiveSearch",
    "SearchProblem",
    "SearchOutcome",
    "keyspace_problem",
    "CostModel",
    "DispatchCosts",
    "dispatch_bounds",
    "process_efficiency",
    "sequential_search_cost",
    "CrackingSession",
    "SessionEstimate",
    "SessionResult",
    "Assessment",
    "PasswordPolicy",
    "assess",
    "minimum_length_for",
    "scaling_outlook",
]
