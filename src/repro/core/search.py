"""The exhaustive-search pattern (Section III-A), as an executable contract.

An exhaustive search exists whenever there are:

* a bijection ``f`` from the naturals into the (finite or countable)
  solution set ``S``;
* a test function ``C : S -> {0, 1}``.

Optionally, an operator ``next`` with ``next(i, f(i)) = f(i + 1)`` that is
much cheaper than re-deriving ``f(i + 1)`` from scratch, and a merge
function for problems where a local ``1`` is only a *candidate* answer
(e.g. distributed minimization).

:class:`ExhaustiveSearch` is the sequential reference driver: it walks an
interval using ``f`` once and ``next`` thereafter, counts how often each
operator ran (making the ``K_next << K_f`` efficiency claim measurable) and
collects accepted solutions.  The distributed drivers in
:mod:`repro.cluster` ship intervals of the same problem.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

from repro.core.results import ResultMixin
from repro.keyspace import Interval, KeyMapping

S = TypeVar("S")


@dataclass(frozen=True)
class SearchProblem(Generic[S]):
    """The (f, C, next, merge) quadruple of Section III-A."""

    f: Callable[[int], S]
    test: Callable[[S], bool]
    size: int  #: |S| (use a window of a countable space)
    next_op: Callable[[int, S], S] | None = None
    #: Merge for problems where node-local acceptance is only tentative;
    #: receives all accepted candidates and returns the survivors.
    merge: Callable[[list[S]], list[S]] | None = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be non-negative")

    def candidate(self, index: int) -> S:
        if not 0 <= index < self.size:
            raise IndexError(index)
        return self.f(index)


@dataclass
class SearchOutcome(ResultMixin, Generic[S]):
    """What a search run reports back (the gather payload).

    Exposes the unified :class:`~repro.core.results.RunResult` surface:
    ``found`` (alias of :attr:`accepted`), ``tested``, ``elapsed``,
    ``backend``, ``metrics``.
    """

    accepted: list = field(default_factory=list)  #: (index, solution) pairs
    tested: int = 0
    f_calls: int = 0
    next_calls: int = 0
    elapsed: float = 0.0
    backend: str = "sequential"
    metrics: dict | None = None

    @property
    def found(self) -> list:
        """Unified-protocol alias of :attr:`accepted`."""
        return self.accepted

    @property
    def conversion_fraction(self) -> float:
        """Fraction of candidates derived by the expensive ``f``.

        The pattern's efficiency claim: this tends to zero as intervals
        grow, because ``next`` supplies all but the first candidate.
        """
        if self.tested == 0:
            return 0.0
        return self.f_calls / self.tested


class ExhaustiveSearch(Generic[S]):
    """Sequential reference driver for a :class:`SearchProblem`."""

    def __init__(self, problem: SearchProblem[S]) -> None:
        self.problem = problem

    def run(
        self,
        interval: Interval | None = None,
        stop_after: int | None = None,
    ) -> SearchOutcome[S]:
        """Test every candidate in *interval* (default: the whole space).

        ``stop_after`` implements the paper's stop condition ("a
        satisfactory number of solutions has been found"): the scan ends
        early once that many candidates are accepted.
        """
        problem = self.problem
        interval = interval if interval is not None else Interval(0, problem.size)
        if interval.stop > problem.size:
            raise IndexError(f"interval {interval} outside space of {problem.size}")
        outcome: SearchOutcome[S] = SearchOutcome()
        if not interval:
            return outcome
        started = time.perf_counter()
        index = interval.start
        solution = problem.f(index)
        outcome.f_calls += 1
        while True:
            outcome.tested += 1
            if problem.test(solution):
                outcome.accepted.append((index, solution))
                if stop_after is not None and len(outcome.accepted) >= stop_after:
                    break
            index += 1
            if index >= interval.stop:
                break
            if problem.next_op is not None:
                solution = problem.next_op(index - 1, solution)
                outcome.next_calls += 1
            else:
                solution = problem.f(index)
                outcome.f_calls += 1
        if problem.merge is not None:
            merged = problem.merge([s for _, s in outcome.accepted])
            outcome.accepted = [(i, s) for i, s in outcome.accepted if s in merged]
        outcome.elapsed = time.perf_counter() - started
        return outcome

    def run_partitioned(self, parts: list[Interval]) -> SearchOutcome[S]:
        """Run several intervals and merge — the master's gather step.

        The parts need not tile the space; this is the sequential stand-in
        for the scatter/search/gather/merge pipeline.
        """
        total: SearchOutcome[S] = SearchOutcome()
        for part in parts:
            # Bypass per-part merge; merge once at the end, like the master.
            sub = ExhaustiveSearch(
                SearchProblem(self.problem.f, self.problem.test, self.problem.size, self.problem.next_op)
            ).run(part)
            total.accepted.extend(sub.accepted)
            total.tested += sub.tested
            total.f_calls += sub.f_calls
            total.next_calls += sub.next_calls
            total.elapsed += sub.elapsed
        total.accepted.sort(key=lambda pair: pair[0])
        if self.problem.merge is not None:
            merged = self.problem.merge([s for _, s in total.accepted])
            total.accepted = [(i, s) for i, s in total.accepted if s in merged]
        return total


def keyspace_problem(
    mapping: KeyMapping, test: Callable[[str], bool]
) -> SearchProblem[str]:
    """Bind the pattern to a key space: ``f`` is Figure 1, ``next`` Figure 2."""
    return SearchProblem(
        f=mapping.key_at,
        test=test,
        size=mapping.size,
        next_op=lambda _i, key: mapping.next_of(key),
    )
