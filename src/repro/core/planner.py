"""Security-assessment planning: the paper's motivating question, answered.

"Studying the amount of time and resources needed by a brute-force attack
to retrieve a password is a key step in understanding the actual level of
security provided by a cryptographic hash function." (Section I)

:class:`PasswordPolicy` describes what users are allowed to pick;
:func:`assess` confronts it with an attacker (any dispatch network, e.g.
the paper's cluster or a scaled-up pool) and reports full-scan and expected
crack times; :func:`minimum_length_for` inverts the question — how long
must passwords be to survive a given attacker for a given time?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import ClusterNode
from repro.keyspace import Charset, space_size

#: Attacker-time judgement thresholds (seconds), used by the verdict.
INSTANT = 60.0
HOURS = 24 * 3600.0
YEARS = 365.25 * 86_400.0


@dataclass(frozen=True)
class PasswordPolicy:
    """What the credential policy permits."""

    charset: Charset
    min_length: int
    max_length: int

    def __post_init__(self) -> None:
        if self.min_length < 0 or self.max_length < self.min_length:
            raise ValueError("invalid length window")

    @property
    def space(self) -> int:
        """Candidate count (Equation (2))."""
        return space_size(len(self.charset), self.min_length, self.max_length)


@dataclass(frozen=True)
class Assessment:
    """Outcome of confronting a policy with an attacker."""

    policy: PasswordPolicy
    attacker_keys_per_second: float
    seconds_full_scan: float
    seconds_expected: float

    @property
    def verdict(self) -> str:
        """Coarse judgement of the policy against this attacker."""
        t = self.seconds_expected
        if t < INSTANT:
            return "broken"  # cracked before the coffee is ready
        if t < HOURS:
            return "weak"  # falls within a working day
        if t < YEARS:
            return "marginal"  # a motivated attacker gets there
        return "resistant"

    @property
    def years_expected(self) -> float:
        return self.seconds_expected / YEARS


def assess(policy: PasswordPolicy, attacker: ClusterNode | float) -> Assessment:
    """Confront a policy with an attacker.

    ``attacker`` is either a dispatch network (its aggregate achieved
    throughput is used — e.g. :func:`repro.cluster.build_paper_network`)
    or a raw keys/second figure for hypothetical hardware.
    """
    rate = (
        attacker.aggregate_throughput
        if isinstance(attacker, ClusterNode)
        else float(attacker)
    )
    if rate <= 0:
        raise ValueError("attacker rate must be positive")
    full = policy.space / rate
    return Assessment(
        policy=policy,
        attacker_keys_per_second=rate,
        seconds_full_scan=full,
        seconds_expected=full / 2.0,
    )


def minimum_length_for(
    charset: Charset,
    attacker: ClusterNode | float,
    resist_seconds: float,
    max_considered: int = 64,
) -> int:
    """Smallest uniform length whose expected crack time exceeds the budget.

    The policy question in reverse: given this attacker, how long must
    passwords be?  (Uniform-length policies: ``min_length == max_length``.)
    """
    if resist_seconds <= 0:
        raise ValueError("resist_seconds must be positive")
    for length in range(1, max_considered + 1):
        policy = PasswordPolicy(charset, length, length)
        if assess(policy, attacker).seconds_expected > resist_seconds:
            return length
    raise ValueError("no length up to max_considered resists this attacker")


def scaling_outlook(
    policy: PasswordPolicy, attacker: ClusterNode | float, doublings: int = 10
) -> list[tuple[int, float]]:
    """Expected crack time as the attacker doubles, Moore's-law style.

    Returns ``(doubling index, years_expected)`` pairs — the longevity view
    an auditing report should include (the paper's cluster was consumer
    hardware; pools "even thousands of people" large already existed).
    """
    base = assess(policy, attacker)
    out = []
    for k in range(doublings + 1):
        out.append((k, base.years_expected / (2**k)))
    return out
