"""High-level cracking sessions: one target, one ``run()`` entry point.

:class:`CrackingSession` is the front door of the library::

    from repro import CrackingSession, CrackTarget, ALPHA_LOWER

    target = CrackTarget.from_password("dog", ALPHA_LOWER, max_length=4)
    result = CrackingSession(target).run(backend="process", workers=4)
    assert "dog" in result.passwords

``run(backend=...)`` is the canonical API: one dispatcher over every
execution seam, returning one result type
(:class:`~repro.core.results.SessionResult`, the unified
``found``/``tested``/``elapsed``/``backend``/``metrics`` surface).

* ``backend="sequential"`` — the scalar reference driver of the pattern
  (f/next/C); the correctness oracle;
* ``backend="serial"|"thread"|"process"|"auto"`` — the real vectorized
  kernels on the :mod:`repro.core.backend` executors (``"auto"``: process
  pool when more than one worker);
* pass ``recorder=`` (a :class:`repro.obs.Recorder`) to capture phase
  timings and per-worker throughput; the export lands on
  ``result.metrics``.

The pre-redesign entry points — :meth:`run_sequential` and
:meth:`run_local` — completed their deprecation cycle and now raise
:class:`TypeError` pointing at the ``run(backend=...)`` spelling (see
docs/API.md, "Migration").  The modelled-network questions keep their
own methods:

* :meth:`estimate_on` — predicted wall time on a (simulated) GPU network,
  the auditing-policy question the paper's introduction poses;
* :meth:`simulate_on` — a discrete-event run on a GPU network that also
  locates which device would find the key.
"""

from __future__ import annotations

import time

from repro.apps.cracking import CrackTarget
from repro.cluster.local import LocalCluster
from repro.cluster.node import ClusterNode
from repro.cluster.simulate import ClusterRunResult, simulate_run
from repro.core.progress import ProgressLog, pending_chunks
from repro.core.results import SessionEstimate, SessionResult
from repro.core.search import ExhaustiveSearch, keyspace_problem
from repro.keyspace import Interval


def _deprecated_entry(name: str, replacement: str) -> None:
    """Refuse a removed pre-unification entry point, loudly and uniformly.

    Every retired method funnels through this one helper so the error
    text, the exception type, and the place to grep for the removal list
    are all singular.  ``TypeError`` (not ``DeprecationWarning``): these
    names spent their deprecation cycle warning-and-delegating; silently
    keeping them alive under a frozen wire contract would be worse than
    breaking now with an exact replacement in the message.
    """
    raise TypeError(
        f"CrackingSession.{name}() was removed; call CrackingSession."
        f"{replacement} instead (see docs/API.md, 'Migration')"
    )


class CrackingSession:
    """Orchestrates one crack target across the available backends."""

    def __init__(self, target: CrackTarget) -> None:
        self.target = target

    # ------------------------------------------------------------------ #
    def run(
        self,
        backend: str = "auto",
        *,
        workers: int | None = None,
        interval: Interval | None = None,
        stop_on_first: bool = False,
        stop_after: int | None = None,
        batch_size: int = 1 << 14,
        adaptive: bool = False,
        recorder=None,
        progress: ProgressLog | None = None,
        checkpoint=None,
        checkpoint_every: int = 8,
        chunk_size: int | None = None,
        preempt=None,
        gather_batch: int | None = None,
    ) -> SessionResult:
        """Execute the search on the selected backend; the canonical API.

        ``backend`` is ``"sequential"`` for the scalar reference driver,
        or an execution-backend spec (``"serial"``/``"thread"``/
        ``"process"``/``"auto"``) resolved through
        :func:`repro.core.backend.resolve_backend`.  ``stop_on_first``
        stops dispatching once a match is gathered; ``stop_after`` (the
        sequential driver's stop condition) ends the scan after that many
        matches.  ``adaptive`` runs the measured tuning step and sizes
        chunks by each worker's real ``X_j``.  ``recorder`` captures
        metrics; its export is attached as ``result.metrics``.

        Passing ``progress`` (a :class:`~repro.core.progress.ProgressLog`)
        makes the run *resumable*: already-completed intervals are never
        re-dispatched, each gathered chunk is marked done, and
        ``checkpoint`` — a callable receiving the log — is invoked every
        ``checkpoint_every`` gathered chunks and once at the end, so a
        killed process restarts from its last durable checkpoint.
        ``preempt`` (zero-arg callable) stops the run cooperatively at the
        next chunk boundary; see :meth:`repro.core.backend.
        ExecutionBackend.run`.  The checkpointed path requires an
        execution backend (not ``"sequential"``).
        """
        if progress is not None or checkpoint is not None or preempt is not None:
            if backend == "sequential":
                raise ValueError(
                    "checkpointed runs need an execution backend; "
                    "use backend='serial' for single-threaded scans"
                )
            return self._run_resumable(
                backend,
                workers=workers,
                interval=interval,
                stop_on_first=stop_on_first,
                batch_size=batch_size,
                recorder=recorder,
                progress=progress,
                checkpoint=checkpoint,
                checkpoint_every=checkpoint_every,
                chunk_size=chunk_size,
                preempt=preempt,
                gather_batch=gather_batch,
            )
        if backend == "sequential":
            return self._run_sequential(
                interval=interval,
                stop_after=1 if stop_on_first and stop_after is None else stop_after,
                recorder=recorder,
            )
        cluster = LocalCluster(workers=workers, batch_size=batch_size, backend=backend)
        outcome = cluster.crack(
            self.target,
            interval,
            stop_on_first=stop_on_first,
            adaptive=adaptive,
            recorder=recorder,
            gather_batch=gather_batch,
        )
        return SessionResult(
            found=outcome.found,
            tested=outcome.tested,
            elapsed=outcome.elapsed,
            backend=outcome.backend,
            workers=cluster.workers,
            metrics=outcome.metrics,
        )

    def _run_sequential(
        self,
        interval: Interval | None = None,
        stop_after: int | None = None,
        recorder=None,
    ) -> SessionResult:
        problem = keyspace_problem(self.target.mapping, self.target.verify)
        outcome = ExhaustiveSearch(problem).run(interval, stop_after=stop_after)
        metrics = None
        if recorder is not None:
            from repro.obs.schema import MetricNames

            recorder.span_record(
                MetricNames.PHASE_SEARCH, outcome.elapsed, backend="sequential"
            )
            recorder.counter(
                MetricNames.ENGINE_TESTED, outcome.tested, backend="sequential"
            )
            if outcome.accepted:
                recorder.counter(
                    MetricNames.ENGINE_HITS, len(outcome.accepted), backend="sequential"
                )
            metrics = recorder.export()
        return SessionResult(
            found=outcome.accepted,
            tested=outcome.tested,
            elapsed=outcome.elapsed,
            backend="sequential",
            metrics=metrics,
        )

    def _run_resumable(
        self,
        backend: str,
        *,
        workers: int | None,
        interval: Interval | None,
        stop_on_first: bool,
        batch_size: int,
        recorder,
        progress: ProgressLog | None,
        checkpoint,
        checkpoint_every: int,
        chunk_size: int | None,
        preempt,
        gather_batch: int | None = None,
    ) -> SessionResult:
        """Chunked driver with per-chunk ProgressLog marking + checkpoints."""
        from repro.core.backend import resolve_backend
        from repro.obs.schema import MetricNames

        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        executor = resolve_backend(backend, workers=workers)
        total = interval.stop if interval is not None else self.target.space_size
        log = progress if progress is not None else ProgressLog(total=total)
        if log.total != total:
            raise ValueError(
                f"progress log covers [0, {log.total}) but the run needs [0, {total})"
            )
        if chunk_size is None:
            tuned = getattr(executor, "tuned", None)
            if tuned is not None:
                # The sweep's measured-best chunk for this backend shape.
                chunk_size = max(1, min(total, tuned.chunk_size))
            else:
                chunk_size = max(1, min(total, batch_size * 4))
        started = time.perf_counter()
        chunks_since_checkpoint = 0

        def gathered(result) -> None:
            nonlocal chunks_since_checkpoint
            log.mark_done(result.interval, result.matches)
            chunks_since_checkpoint += 1
            if checkpoint is not None and chunks_since_checkpoint >= checkpoint_every:
                checkpoint(log)
                chunks_since_checkpoint = 0
                if recorder is not None:
                    recorder.counter(MetricNames.SERVICE_CHECKPOINTS)

        outcome = executor.run(
            self.target,
            pending_chunks(log, chunk_size),
            batch_size=batch_size,
            stop_on_first=stop_on_first,
            recorder=recorder,
            preempt=preempt,
            on_result=gathered,
            gather_batch=gather_batch,
        )
        if checkpoint is not None:
            checkpoint(log)
            if recorder is not None:
                recorder.counter(MetricNames.SERVICE_CHECKPOINTS)
        metrics = recorder.export() if recorder is not None else None
        return SessionResult(
            found=list(log.found),
            tested=outcome.tested,
            elapsed=time.perf_counter() - started,
            backend=outcome.backend,
            workers=executor.workers,
            metrics=metrics,
            progress=log,
        )

    # -- removed pre-redesign entry points ----------------------------- #
    # One deprecation cycle as warning-and-delegate aliases (PR 2 .. PR 7);
    # now they error so the frozen repro-api/v1 wire contract (PR 8) never
    # leaks a second way to spell run().  See docs/API.md ("Migration").
    def run_sequential(self, *args, **kwargs):
        """Removed: use ``run(backend="sequential", ...)``."""
        _deprecated_entry("run_sequential", "run(backend='sequential')")

    def run_local(self, *args, **kwargs):
        """Removed: use ``run(backend=..., workers=..., ...)``."""
        _deprecated_entry("run_local", "run(backend=..., workers=...)")

    # ------------------------------------------------------------------ #
    def estimate_on(self, network: ClusterNode) -> SessionEstimate:
        """Predicted cost of exhausting the target's space on a network."""
        size = self.target.space_size
        rate = network.aggregate_throughput
        return SessionEstimate(
            space_size=size,
            network_mkeys=rate / 1e6,
            seconds_full_scan=size / rate,
            seconds_expected=size / rate / 2.0,
        )

    def simulate_on(
        self,
        network: ClusterNode,
        planted_password: str | None = None,
        scale: int | None = None,
        **simulate_kwargs,
    ) -> ClusterRunResult:
        """Discrete-event run of this target's space on a GPU network.

        ``planted_password`` marks a key whose id is tracked through the
        dispatch so the result reports which device finds it.  ``scale``
        truncates gigantic spaces to their first *scale* candidates so the
        simulation stays fast while preserving the dispatch dynamics.
        """
        total = self.target.space_size
        solution_ids = ()
        if planted_password is not None:
            index = self.target.mapping.index_of(planted_password)
            solution_ids = (index,)
        if scale is not None:
            total = min(total, scale)
            solution_ids = tuple(i for i in solution_ids if i < total)
        return simulate_run(
            network, total, solution_ids=solution_ids, **simulate_kwargs
        )
