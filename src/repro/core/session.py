"""High-level cracking sessions: one target, pluggable backends.

:class:`CrackingSession` is the front door of the library::

    from repro import CrackingSession, CrackTarget, ALPHA_LOWER

    target = CrackTarget.from_password("dog", ALPHA_LOWER, max_length=4)
    result = CrackingSession(target).run_local(workers=4)
    assert "dog" in result.passwords

Backends:

* :meth:`run_sequential` — the reference driver of the pattern (f/next/C);
* :meth:`run_local` — the real multiprocessing pool with the vectorized
  reversal kernels;
* :meth:`estimate_on` — predicted wall time on a (simulated) GPU network,
  the auditing-policy question the paper's introduction poses;
* :meth:`simulate_on` — a discrete-event run on a GPU network that also
  locates which device would find the key.
"""

from __future__ import annotations

import time

from repro.apps.cracking import CrackTarget
from repro.cluster.local import LocalCluster
from repro.cluster.node import ClusterNode
from repro.cluster.simulate import ClusterRunResult, simulate_run
from repro.core.results import SessionEstimate, SessionResult
from repro.core.search import ExhaustiveSearch, keyspace_problem
from repro.keyspace import Interval


class CrackingSession:
    """Orchestrates one crack target across the available backends."""

    def __init__(self, target: CrackTarget) -> None:
        self.target = target

    # ------------------------------------------------------------------ #
    def run_sequential(
        self, interval: Interval | None = None, stop_after: int | None = None
    ) -> SessionResult:
        """Scalar reference run (Figure 1 ``f`` + Figure 2 ``next`` + C).

        Orders of magnitude slower than the vectorized backends — use for
        tiny spaces and as the correctness oracle.
        """
        problem = keyspace_problem(self.target.mapping, self.target.verify)
        started = time.perf_counter()
        outcome = ExhaustiveSearch(problem).run(interval, stop_after=stop_after)
        return SessionResult(
            found=outcome.accepted,
            candidates_tested=outcome.tested,
            elapsed=time.perf_counter() - started,
            backend="sequential",
        )

    def run_local(
        self,
        workers: int | None = None,
        interval: Interval | None = None,
        stop_on_first: bool = False,
        batch_size: int = 1 << 14,
        backend: str = "auto",
        adaptive: bool = False,
    ) -> SessionResult:
        """Real parallel crack on CPU cores (vectorized kernels).

        ``backend`` selects the execution backend (``"serial"``,
        ``"thread"``, ``"process"``, or ``"auto"``: process pool when more
        than one worker); ``adaptive`` sizes chunks by each worker's
        measured throughput.
        """
        cluster = LocalCluster(workers=workers, batch_size=batch_size, backend=backend)
        outcome = cluster.crack(
            self.target, interval, stop_on_first=stop_on_first, adaptive=adaptive
        )
        return SessionResult(
            found=outcome.found,
            candidates_tested=outcome.candidates_tested,
            elapsed=outcome.elapsed,
            backend=outcome.backend,
            workers=cluster.workers,
        )

    # ------------------------------------------------------------------ #
    def estimate_on(self, network: ClusterNode) -> SessionEstimate:
        """Predicted cost of exhausting the target's space on a network."""
        size = self.target.space_size
        rate = network.aggregate_throughput
        return SessionEstimate(
            space_size=size,
            network_mkeys=rate / 1e6,
            seconds_full_scan=size / rate,
            seconds_expected=size / rate / 2.0,
        )

    def simulate_on(
        self,
        network: ClusterNode,
        planted_password: str | None = None,
        scale: int | None = None,
        **simulate_kwargs,
    ) -> ClusterRunResult:
        """Discrete-event run of this target's space on a GPU network.

        ``planted_password`` marks a key whose id is tracked through the
        dispatch so the result reports which device finds it.  ``scale``
        truncates gigantic spaces to their first *scale* candidates so the
        simulation stays fast while preserving the dispatch dynamics.
        """
        total = self.target.space_size
        solution_ids = ()
        if planted_password is not None:
            index = self.target.mapping.index_of(planted_password)
            solution_ids = (index,)
        if scale is not None:
            total = min(total, scale)
            solution_ids = tuple(i for i in solution_ids if i < total)
        return simulate_run(
            network, total, solution_ids=solution_ids, **simulate_kwargs
        )
