"""Result and estimate types for cracking sessions.

All executed-run results in the library share one read surface, the
:class:`RunResult` protocol:

* ``found``   — sorted ``(index, key)`` match pairs;
* ``tested``  — candidates scanned;
* ``elapsed`` — wall-clock seconds;
* ``backend`` — which execution seam produced the run;
* ``metrics`` — an optional ``repro-metrics/v2`` payload (see
  :mod:`repro.obs`).

:class:`ResultMixin` derives the convenience views (``passwords``,
``cracked``, ``mkeys_per_second``) from those five fields, so
:class:`SessionResult`, :class:`~repro.cluster.runtime.RuntimeResult`,
:class:`~repro.core.search.SearchOutcome`, and the backend/cluster
outcome types all behave interchangeably.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable


@runtime_checkable
class RunResult(Protocol):
    """The unified field set every executed-run result exposes."""

    found: list
    tested: int
    elapsed: float
    backend: str
    metrics: dict | None


class ResultMixin:
    """Convenience views shared by every result type.

    Expects the host class to provide the :class:`RunResult` fields.
    """

    @property
    def keys(self) -> list:
        """The matched keys, in id order."""
        return [key for _, key in self.found]

    @property
    def passwords(self) -> list:
        """Alias of :attr:`keys` — the cracking-session vocabulary."""
        return self.keys

    @property
    def cracked(self) -> bool:
        return bool(self.found)

    @property
    def mkeys_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.tested / self.elapsed / 1e6

    @property
    def candidates_tested(self) -> int:
        """Deprecated alias of :attr:`tested`; removed in the next release."""
        warnings.warn(
            "candidates_tested is deprecated; use .tested "
            "(alias will be removed in the next release)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.tested


@dataclass
class SessionResult(ResultMixin):
    """Outcome of an executed cracking session."""

    found: list = field(default_factory=list)  #: sorted (index, key) pairs
    tested: int = 0
    elapsed: float = 0.0
    backend: str = "sequential"
    workers: int = 1
    metrics: dict | None = None  #: repro-metrics/v2 payload when recorded
    #: The run's coverage ledger, set by checkpointed runs
    #: (``CrackingSession.run(progress=...)``); ``None`` otherwise.
    progress: object | None = None


@dataclass(frozen=True)
class SessionEstimate:
    """Predicted cost of exhausting a search space on a network.

    The security-assessment use of the paper ("studying the amount of time
    and resources needed by a brute-force attack ... is a key step in
    understanding the actual level of security").
    """

    space_size: int
    network_mkeys: float
    seconds_full_scan: float
    seconds_expected: float  #: half the space, the mean for a unique key

    @property
    def hours_full_scan(self) -> float:
        return self.seconds_full_scan / 3600.0

    @property
    def days_full_scan(self) -> float:
        return self.seconds_full_scan / 86_400.0

    @property
    def years_full_scan(self) -> float:
        return self.seconds_full_scan / (365.25 * 86_400.0)
