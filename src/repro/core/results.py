"""Result and estimate types for cracking sessions."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SessionResult:
    """Outcome of an executed cracking session."""

    found: list = field(default_factory=list)  #: sorted (index, key) pairs
    candidates_tested: int = 0
    elapsed: float = 0.0
    backend: str = "sequential"
    workers: int = 1

    @property
    def passwords(self) -> list:
        return [key for _, key in self.found]

    @property
    def cracked(self) -> bool:
        return bool(self.found)

    @property
    def mkeys_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.candidates_tested / self.elapsed / 1e6


@dataclass(frozen=True)
class SessionEstimate:
    """Predicted cost of exhausting a search space on a network.

    The security-assessment use of the paper ("studying the amount of time
    and resources needed by a brute-force attack ... is a key step in
    understanding the actual level of security").
    """

    space_size: int
    network_mkeys: float
    seconds_full_scan: float
    seconds_expected: float  #: half the space, the mean for a unique key

    @property
    def hours_full_scan(self) -> float:
        return self.seconds_full_scan / 3600.0

    @property
    def days_full_scan(self) -> float:
        return self.seconds_full_scan / 86_400.0

    @property
    def years_full_scan(self) -> float:
        return self.seconds_full_scan / (365.25 * 86_400.0)
