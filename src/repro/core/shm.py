"""Shared-memory result board: cross-process counters without IPC.

The batched gather path (:mod:`repro.core.backend`) makes workers reply
once per *span* of chunks instead of once per chunk, which is what lets
the process backend amortize its round-trip cost — but it also means the
master would be blind between replies.  The :class:`ResultBoard` closes
that gap: a tiny ``multiprocessing.shared_memory`` segment with one row
of counters per worker slot (tested / batches / chunks / elapsed-ns).
Each worker owns exactly one row and bumps it after every chunk with
plain stores — no locks, no pickling, no pipe traffic — so the master
can read live progress and per-worker throughput at any time for free.

Thread and serial backends use the same board backed by an ordinary
NumPy array (one address space, nothing to share), so every backend
exposes the same live counters.

Match payloads still travel over the executor's reply channel: hits are
rare and small, counters are hot and frequent.  The board carries the
hot part.
"""

from __future__ import annotations

import numpy as np

#: Column layout of one worker row.
COL_TESTED = 0
COL_BATCHES = 1
COL_CHUNKS = 2
COL_ELAPSED_NS = 3
COLUMNS = 4


class ResultBoard:
    """One row of cumulative counters per worker slot.

    With ``shared=True`` the storage is a ``multiprocessing.shared_memory``
    segment that forked pool workers attach to by name; otherwise it is a
    process-local array (threads and inline execution).  Single writer per
    row, racy-but-monotonic reads on the master side — exactly the
    guarantee live gauges need.
    """

    def __init__(self, workers: int, shared: bool = False) -> None:
        if workers < 1:
            raise ValueError("board needs at least one worker slot")
        self.workers = workers
        self._shm = None
        if shared:
            from multiprocessing import shared_memory

            self._shm = shared_memory.SharedMemory(
                create=True, size=workers * COLUMNS * 8
            )
            self.array = np.ndarray(
                (workers, COLUMNS), dtype=np.int64, buffer=self._shm.buf
            )
            self.array[:] = 0
        else:
            self.array = np.zeros((workers, COLUMNS), dtype=np.int64)

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str | None:
        """Segment name pool workers attach to (``None`` when in-process)."""
        return self._shm.name if self._shm is not None else None

    @staticmethod
    def attach(name: str, workers: int) -> "AttachedBoard":
        """Worker-side view of an existing shared segment."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        array = np.ndarray((workers, COLUMNS), dtype=np.int64, buffer=shm.buf)
        return AttachedBoard(shm, array)

    # ------------------------------------------------------------------ #
    def record(self, slot: int, tested: int, batches: int, elapsed: float) -> None:
        """Credit one finished chunk to a slot (in-process writers)."""
        row = self.array[slot]
        row[COL_TESTED] += tested
        row[COL_BATCHES] += batches
        row[COL_CHUNKS] += 1
        row[COL_ELAPSED_NS] += int(elapsed * 1e9)

    def snapshot(self) -> np.ndarray:
        """Point-in-time copy of every row (safe to aggregate)."""
        return self.array.copy()

    def totals(self) -> dict:
        """Aggregate counters across all slots, elapsed in seconds."""
        snap = self.snapshot()
        return {
            "tested": int(snap[:, COL_TESTED].sum()),
            "batches": int(snap[:, COL_BATCHES].sum()),
            "chunks": int(snap[:, COL_CHUNKS].sum()),
            "worker_elapsed": float(snap[:, COL_ELAPSED_NS].sum()) / 1e9,
        }

    def per_slot_rates(self) -> dict[int, float]:
        """Measured keys/second per active slot (live ``X_j`` view)."""
        rates: dict[int, float] = {}
        for slot, row in enumerate(self.snapshot()):
            if row[COL_ELAPSED_NS] > 0:
                rates[slot] = float(row[COL_TESTED]) / (row[COL_ELAPSED_NS] / 1e9)
        return rates

    def reset(self) -> None:
        self.array[:] = 0

    def close(self) -> None:
        """Release the segment (master side owns unlinking)."""
        if self._shm is not None:
            # Views into the buffer must die before close(); drop ours.
            self.array = self.array.copy()
            try:
                self._shm.close()
                self._shm.unlink()
            except (FileNotFoundError, BufferError):  # already gone / raced
                pass
            self._shm = None


class AttachedBoard:
    """A worker's handle on the master's shared board (one writable row)."""

    def __init__(self, shm, array: np.ndarray) -> None:
        self._shm = shm  # held so the mapping outlives this object's scope
        self.array = array

    def record(self, slot: int, tested: int, batches: int, elapsed: float) -> None:
        row = self.array[slot]
        row[COL_TESTED] += tested
        row[COL_BATCHES] += batches
        row[COL_CHUNKS] += 1
        row[COL_ELAPSED_NS] += int(elapsed * 1e9)
