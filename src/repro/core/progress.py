"""Search progress tracking and resumable checkpoints.

The dispatch protocol "collect[s] periodically a fairly small amount of
data from each device" (Section III); real auditing runs last hours to
days, so that trickle of gather messages must make the search *resumable*.
:class:`ProgressLog` is that ledger: which id intervals are done, what was
found, and what remains — serializable to JSON so a run can stop at any
point and continue on another machine.

Invariant (property-tested): the completed set and the remaining set tile
``[0, total)`` exactly at all times, no matter the order intervals finish.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.keyspace import Interval
from repro.keyspace.intervals import is_exact_partition, merge_intervals


@dataclass
class ProgressLog:
    """Ledger of a long-running exhaustive search over ``[0, total)``."""

    total: int
    completed: list = field(default_factory=list)  #: merged, sorted intervals
    found: list = field(default_factory=list)  #: (index, key) pairs

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ValueError("total must be non-negative")
        self.completed = merge_intervals(self.completed)

    # ------------------------------------------------------------------ #
    def mark_done(self, interval: Interval, matches=()) -> None:
        """Record a finished interval and any matches it produced.

        Re-marking already-completed ids is rejected — double work means a
        dispatch bug (the same candidate billed twice).
        """
        if interval.stop > self.total:
            raise ValueError(f"{interval} exceeds the space of {self.total}")
        for done in self.completed:
            if done.overlaps(interval):
                raise ValueError(f"{interval} overlaps already-completed {done}")
        self.completed = merge_intervals(self.completed + [interval])
        self.found.extend(matches)
        self.found.sort()

    def remaining(self) -> list[Interval]:
        """The gaps still to be searched, sorted."""
        out: list[Interval] = []
        cursor = 0
        for done in self.completed:
            if done.start > cursor:
                out.append(Interval(cursor, done.start))
            cursor = done.stop
        if cursor < self.total:
            out.append(Interval(cursor, self.total))
        return out

    def next_chunk(self, size: int) -> Interval | None:
        """The next dispatchable interval of at most *size* ids."""
        if size <= 0:
            raise ValueError("size must be positive")
        gaps = self.remaining()
        if not gaps:
            return None
        head, _ = gaps[0].take(size)
        return head

    # ------------------------------------------------------------------ #
    @property
    def done_count(self) -> int:
        return sum(iv.size for iv in self.completed)

    @property
    def fraction_done(self) -> float:
        if self.total == 0:
            return 1.0
        return self.done_count / self.total

    @property
    def is_complete(self) -> bool:
        return self.done_count == self.total

    def check_invariant(self) -> bool:
        """Completed + remaining must tile the space exactly."""
        return is_exact_partition(
            Interval(0, self.total), self.completed + self.remaining()
        )

    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Serialize (ids are exact ints; JSON handles bignums natively)."""
        return json.dumps(
            {
                "total": self.total,
                "completed": [[iv.start, iv.stop] for iv in self.completed],
                "found": [[index, key] for index, key in self.found],
            }
        )

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form — the checkpoint checksum.

        :meth:`to_json` is deterministic (sorted merged intervals, sorted
        found pairs, fixed key order), so any two ledgers with the same
        coverage produce the same digest and a flipped byte in a persisted
        checkpoint is caught before it can corrupt a resume.
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "ProgressLog":
        """Rebuild a ledger from :meth:`to_json` output.

        A checkpoint that does not describe a legal ledger — overlapping
        completed intervals, intervals outside ``[0, total)``, malformed
        entries — raises :class:`CorruptCheckpointError` instead of
        silently resuming with broken coverage (double-tested or skipped
        candidates).
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CorruptCheckpointError(f"checkpoint is not valid JSON: {exc}") from exc
        try:
            total = data["total"]
            completed = [Interval(a, b) for a, b in data["completed"]]
            found = [(index, key) for index, key in data["found"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptCheckpointError(
                f"checkpoint is missing or malforms a required field: {exc}"
            ) from exc
        if not isinstance(total, int) or total < 0:
            raise CorruptCheckpointError(f"checkpoint total {total!r} is not a size")
        for prev, iv in zip(completed, completed[1:]):
            if iv.start < prev.stop:
                raise CorruptCheckpointError(
                    f"checkpoint intervals {prev} and {iv} overlap or are unsorted"
                )
        if completed and completed[-1].stop > total:
            raise CorruptCheckpointError(
                f"checkpoint interval {completed[-1]} exceeds the space of {total}"
            )
        log = cls(total=total, completed=completed, found=found)
        if not log.check_invariant():  # pragma: no cover - guarded above
            raise CorruptCheckpointError("completed + remaining do not tile the space")
        return log


class CorruptCheckpointError(ValueError):
    """A restored checkpoint violates the coverage invariant."""


def pending_chunks(
    log: ProgressLog, chunk_size: int, budget: int | None = None
) -> list[Interval]:
    """Plan the next dispatchable chunks without marking anything done.

    Walks the remaining gaps in order and slices them into intervals of at
    most *chunk_size* ids, stopping once *budget* ids have been planned
    (``None`` plans the whole remainder).  This is the scheduling half of a
    checkpointed run: the caller dispatches these chunks and calls
    :meth:`ProgressLog.mark_done` only as each one is actually gathered.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if budget is not None and budget <= 0:
        return []
    out: list[Interval] = []
    planned = 0
    for gap in log.remaining():
        while gap:
            size = chunk_size
            if budget is not None:
                size = min(size, budget - planned)
                if size <= 0:
                    return out
            head, gap = gap.take(size)
            out.append(head)
            planned += head.size
    return out
