"""The cost model of Section III-A.

Closed forms for the sequential search cost, the process-efficiency claim,
and the two-sided bound on the dispatch cost ``K_D``:

.. code-block:: text

    K_search = K_f(i0) + sum K_next + sum K_C          (with next)
    K_search = sum (K_f + K_C)                          (without next)

    max_j(Ks_j + Ksearch_j + Kg_j) + K_CM
        <= K_D <=
    sum_j Ks_j + max_j Ksearch_j + sum_j Kg_j + K_CM
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class CostModel:
    """Per-candidate costs of the three primitive operations (seconds)."""

    k_f: float  #: generate a candidate from its identifier
    k_next: float  #: derive a candidate from its predecessor
    k_c: float  #: evaluate the test function

    def __post_init__(self) -> None:
        if min(self.k_f, self.k_next, self.k_c) < 0:
            raise ValueError("costs must be non-negative")


def sequential_search_cost(n: int, model: CostModel, use_next: bool = True) -> float:
    """``K_search`` over *n* candidates on a single process."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 0.0
    if use_next:
        return model.k_f + (n - 1) * model.k_next + n * model.k_c
    return n * (model.k_f + model.k_c)


def process_efficiency(n: int, model: CostModel, use_next: bool = True) -> float:
    """Testing time over total time — the paper's per-process efficiency.

    With ``K_next < K_f`` this "will increase for larger n": the single
    expensive conversion amortizes away.
    """
    total = sequential_search_cost(n, model, use_next)
    if total == 0.0:
        return 1.0
    return n * model.k_c / total


@dataclass(frozen=True)
class DispatchCosts:
    """Per-node scatter/search/gather costs plus the master's merge cost."""

    scatter: Sequence[float]
    search: Sequence[float]
    gather: Sequence[float]
    merge: float = 0.0

    def __post_init__(self) -> None:
        if not (len(self.scatter) == len(self.search) == len(self.gather)):
            raise ValueError("per-node cost sequences must align")
        if not self.scatter:
            raise ValueError("need at least one node")


def dispatch_bounds(costs: DispatchCosts) -> tuple[float, float]:
    """The two-sided ``K_D`` bound of Section III-A.

    Lower bound: everything overlaps perfectly except the critical node.
    Upper bound: scatters and gathers fully serialize on the master.
    """
    lower = (
        max(s + w + g for s, w, g in zip(costs.scatter, costs.search, costs.gather))
        + costs.merge
    )
    upper = (
        sum(costs.scatter)
        + max(costs.search)
        + sum(costs.gather)
        + costs.merge
    )
    return lower, upper


def fixed_costs_negligible(costs: DispatchCosts, tolerance: float = 0.01) -> bool:
    """Is ``K_D`` dominated by the slowest search (the large-interval regime)?

    "For large intervals, K_D will depend almost exclusively on
    max_j(K_search_j)" — true when the serialized fixed costs are within
    *tolerance* of the critical search time.
    """
    overhead = sum(costs.scatter) + sum(costs.gather) + costs.merge
    return overhead <= tolerance * max(costs.search)
