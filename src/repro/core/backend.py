"""Pluggable execution backends: how one host runs its interval searches.

The paper's node-level story (Sections III and V) is that a node saturates
its arithmetic throughput once the dispatch overhead ``K_D`` is amortized —
but that presumes the node actually *uses* all of its execution units.  On
a multi-core CPU host the unit of parallelism is a process, exactly the way
hashcat-style distributed crackers run one worker process per device.  This
module is that seam:

* :class:`SerialBackend` — inline execution on the calling thread; the
  deterministic reference and the right choice under test runners.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``; cheap to spin up and
  useful when NumPy releases the GIL, but shares one interpreter.
* :class:`ProcessBackend` — a ``ProcessPoolExecutor``; one Python per
  core, the CPU analogue of the paper's multi-GPU node.

Work travels as picklable :class:`WorkUnit` values (target + interval +
batch size) and comes back as :class:`WorkUnitResult` with per-unit
counters, which the backend merges into a :class:`BackendOutcome` carrying
per-worker measured throughput — the real ``X_j`` the balancing rule
``N_j = N_max * (X_j / X_max)`` of :mod:`repro.cluster.balance` needs.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.apps.cracking import CrackEngine, CrackTarget
from repro.core.results import ResultMixin
from repro.core.search import SearchOutcome
from repro.keyspace import Interval
from repro.obs.schema import MetricNames


@dataclass(frozen=True)
class WorkUnit:
    """One scatter payload: everything a worker needs, and nothing more.

    Frozen and picklable — this crosses the process boundary.
    """

    target: CrackTarget
    interval: Interval
    batch_size: int = 1 << 14

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")


@dataclass
class WorkUnitResult:
    """The gather payload for one executed :class:`WorkUnit`."""

    interval: Interval
    matches: list  #: (index, key) pairs, sorted by index
    tested: int
    batches: int
    elapsed: float  #: seconds of search time inside the worker
    worker: str  #: executing worker's label (pid / thread name)

    @property
    def keys_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.tested / self.elapsed


#: Engines are cached per worker (thread-local, so thread-pool workers
#: never share one) so a worker that receives many chunks of the same
#: target reuses its preallocated workspace/scratch buffers — the
#: allocation-free steady state survives chunk boundaries.
_ENGINE_CACHE = threading.local()


def _cached_engine(target: CrackTarget, batch_size: int) -> CrackEngine:
    key = (target, batch_size)
    if getattr(_ENGINE_CACHE, "key", None) != key:
        # One live target per worker keeps memory flat.
        _ENGINE_CACHE.key = key
        _ENGINE_CACHE.engine = CrackEngine(target, batch_size=batch_size)
    return _ENGINE_CACHE.engine


def _worker_label() -> str:
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"pid-{os.getpid()}"
    return f"pid-{os.getpid()}/{thread.name}"


def execute_work_unit(unit: WorkUnit) -> WorkUnitResult:
    """Run one work unit in the calling worker (module-level: picklable)."""
    engine = _cached_engine(unit.target, unit.batch_size)
    tested0 = engine.stats.tested
    batches0 = engine.stats.batches
    elapsed0 = engine.stats.elapsed
    matches = engine.search(unit.interval)
    return WorkUnitResult(
        interval=unit.interval,
        matches=matches,
        tested=engine.stats.tested - tested0,
        batches=engine.stats.batches - batches0,
        elapsed=engine.stats.elapsed - elapsed0,
        worker=_worker_label(),
    )


@dataclass
class WorkerThroughput:
    """Per-worker accounting merged from its gather messages."""

    tested: int = 0
    elapsed: float = 0.0
    chunks: int = 0

    @property
    def keys_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.tested / self.elapsed


@dataclass
class BackendOutcome(ResultMixin):
    """Merged result of a backend run (the master's gather + merge step).

    Conforms to the unified :class:`~repro.core.results.RunResult` surface
    (``found``/``tested``/``elapsed``/``backend``/``metrics``).
    """

    backend: str
    workers: int
    found: list = field(default_factory=list)  #: sorted (index, key) pairs
    tested: int = 0
    batches: int = 0
    chunks: int = 0
    elapsed: float = 0.0  #: wall-clock of the whole run
    worker_elapsed: float = 0.0  #: summed in-worker search time
    per_worker: dict = field(default_factory=dict)  #: label -> WorkerThroughput
    #: Intervals that were *not* executed because the run stopped early
    #: (``stop_on_first`` fired or a ``preempt`` callback asked the driver
    #: to yield); a checkpointing caller re-plans exactly these.
    unfinished: list = field(default_factory=list)
    metrics: dict | None = None  #: repro-metrics/v1 payload when recorded

    def absorb(self, result: WorkUnitResult) -> None:
        """Merge one gather message into the outcome."""
        self.found.extend(result.matches)
        self.tested += result.tested
        self.batches += result.batches
        self.chunks += 1
        self.worker_elapsed += result.elapsed
        stats = self.per_worker.setdefault(result.worker, WorkerThroughput())
        stats.tested += result.tested
        stats.elapsed += result.elapsed
        stats.chunks += 1

    def measured_throughput(self) -> dict[str, float]:
        """Per-worker measured ``X_j`` in keys/second (balance.py input)."""
        return {
            name: stats.keys_per_second
            for name, stats in sorted(self.per_worker.items())
            if stats.keys_per_second > 0
        }

    def raw_throughput(self) -> dict[str, float]:
        """Like :meth:`measured_throughput` but *keeps* zero-rate workers.

        The adaptive balancer clamps these to a floor instead of silently
        dropping them (see :func:`repro.cluster.balance.clamp_measured_throughput`).
        """
        return {
            name: stats.keys_per_second
            for name, stats in sorted(self.per_worker.items())
        }

    def to_search_outcome(self) -> SearchOutcome:
        """View as the pattern's :class:`SearchOutcome` (gather contract)."""
        outcome: SearchOutcome = SearchOutcome(
            accepted=list(self.found), tested=self.tested
        )
        outcome.f_calls = self.chunks  # one f per dispatched interval
        outcome.next_calls = max(0, self.tested - self.chunks)
        return outcome


class ExecutionBackend:
    """Common driver: dispatch work units, gather, merge.

    Subclasses provide :meth:`_execute`, mapping an iterable of units to an
    iterable of results in completion order.
    """

    name = "serial"
    workers = 1

    def run(
        self,
        target: CrackTarget,
        intervals: Sequence[Interval],
        batch_size: int = 1 << 14,
        stop_on_first: bool = False,
        recorder=None,
        preempt=None,
        on_result=None,
    ) -> BackendOutcome:
        """Search the given intervals; returns the merged outcome.

        ``stop_on_first`` stops *dispatching* once a match has been
        gathered; in-flight units still complete and are merged (the
        paper's stop condition semantics).

        ``preempt`` is a zero-argument callable checked at chunk
        boundaries: once it returns true the driver stops handing out new
        units, lets in-flight units finish and merge, and reports the
        never-executed intervals on ``outcome.unfinished`` — cooperative
        preemption for fair-share scheduling and graceful drain, with
        exactly-once coverage preserved (an interval is either fully
        gathered or fully unfinished, never half-scanned).

        ``on_result`` is called with each :class:`WorkUnitResult` as it is
        merged, on the gathering thread — the per-chunk hook checkpointing
        callers use to mark a :class:`~repro.core.progress.ProgressLog`.

        ``recorder`` (a :class:`repro.obs.Recorder`) captures the paper's
        cost-model phases — ``K_scatter`` (unit construction + pool
        submission), ``K_search`` (in-worker scan time, one span per
        gathered chunk, labelled by worker), ``K_gather`` (merge time on
        the master) — plus per-worker ``X_j`` gauges.  With ``None``
        (the default) the run is completely uninstrumented.
        """
        prep_started = time.perf_counter()
        units = [WorkUnit(target, iv, batch_size) for iv in intervals]
        scatter_prep = time.perf_counter() - prep_started
        outcome = BackendOutcome(backend=self.name, workers=self.workers)
        gather_time = 0.0
        started = time.perf_counter()

        def should_stop() -> bool:
            if stop_on_first and outcome.found:
                return True
            return preempt is not None and bool(preempt())

        gathered: set = set()
        for result in self._execute(units, should_stop, recorder):
            merge_started = time.perf_counter()
            outcome.absorb(result)
            gathered.add(result.interval)
            gather_time += time.perf_counter() - merge_started
            if recorder is not None:
                recorder.span_record(
                    MetricNames.PHASE_SEARCH,
                    result.elapsed,
                    backend=self.name,
                    worker=result.worker,
                )
            if on_result is not None:
                on_result(result)
        outcome.unfinished = [iv for iv in intervals if iv not in gathered]
        outcome.found.sort()
        outcome.elapsed = time.perf_counter() - started
        if recorder is not None:
            self._record_run(outcome, recorder, scatter_prep, gather_time, stop_on_first)
        return outcome

    def _record_run(
        self, outcome: BackendOutcome, recorder, scatter_prep, gather_time, stop_on_first
    ) -> None:
        recorder.span_record(
            MetricNames.PHASE_SCATTER, scatter_prep, backend=self.name
        )
        recorder.span_record(MetricNames.PHASE_GATHER, gather_time, backend=self.name)
        recorder.counter(MetricNames.BACKEND_CHUNKS, outcome.chunks, backend=self.name)
        recorder.counter(MetricNames.BACKEND_TESTED, outcome.tested, backend=self.name)
        recorder.counter(MetricNames.BACKEND_BATCHES, outcome.batches, backend=self.name)
        if stop_on_first and outcome.found:
            recorder.counter(MetricNames.BACKEND_EARLY_EXIT, 1, backend=self.name)
        # Summed idle seconds across the pool: wall time the workers were
        # *not* searching (queue wait + scheduling overhead).
        idle = max(0.0, outcome.elapsed * self.workers - outcome.worker_elapsed)
        recorder.gauge(MetricNames.BACKEND_QUEUE_WAIT, idle, backend=self.name)
        for name, rate in outcome.measured_throughput().items():
            recorder.gauge(
                MetricNames.WORKER_KEYS_PER_SECOND,
                rate,
                backend=self.name,
                worker=name,
            )

    def _execute(self, units, should_stop, recorder=None) -> Iterable[WorkUnitResult]:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Inline execution — deterministic, no pools, the reference backend."""

    name = "serial"
    workers = 1

    def _execute(self, units, should_stop, recorder=None):
        for unit in units:
            if should_stop():
                return
            yield execute_work_unit(unit)


class _PoolBackend(ExecutionBackend):
    """Shared scatter/gather loop over a ``concurrent.futures`` executor."""

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def _execute(self, units, should_stop, recorder=None):
        # Units are handed to the pool through a bounded window (a couple
        # per worker) rather than scattered upfront: a ``preempt`` or
        # ``stop_on_first`` signal then takes effect at the next chunk
        # boundary with only the in-flight window left to drain.
        units_iter = iter(units)
        window = self.workers * 2
        with self._make_executor() as pool:
            pending: set = set()

            def refill() -> float:
                started = time.perf_counter()
                while len(pending) < window:
                    unit = next(units_iter, None)
                    if unit is None:
                        break
                    pending.add(pool.submit(execute_work_unit, unit))
                return time.perf_counter() - started

            submit_time = refill()
            if recorder is not None:
                recorder.span_record(
                    MetricNames.PHASE_SCATTER, submit_time, backend=self.name
                )
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        yield future.result()
                    if should_stop():
                        for future in pending:
                            future.cancel()
                        # In-flight units still complete; merge them too.
                        for future in wait(pending).done:
                            if not future.cancelled():
                                yield future.result()
                        return
                    refill()
            finally:
                for future in pending:
                    future.cancel()


class ThreadBackend(_PoolBackend):
    """Thread-pool execution: one interpreter, NumPy sections overlap."""

    name = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="crack-worker"
        )


class ProcessBackend(_PoolBackend):
    """Process-pool execution: one Python per core, the multi-GPU analogue."""

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)


#: Registry used by config/CLI resolution.
BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def default_worker_count() -> int:
    """Leave one core for the master, like the paper's dispatcher node."""
    return max(1, (os.cpu_count() or 2) - 1)


def resolve_backend(
    spec: str | ExecutionBackend | None, workers: int | None = None
) -> ExecutionBackend:
    """Turn a config/CLI value into a backend instance.

    ``spec`` may be an instance (returned as-is), a registry name
    (``"serial"``/``"thread"``/``"process"``), ``"auto"`` or ``None``
    (process pool when more than one worker is requested, serial
    otherwise).
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None or spec == "auto":
        workers = workers if workers is not None else default_worker_count()
        return ProcessBackend(workers) if workers > 1 else SerialBackend()
    try:
        cls = BACKENDS[spec]
    except KeyError:
        raise ValueError(
            f"unknown backend {spec!r}; choose from {sorted(BACKENDS)} or 'auto'"
        ) from None
    if cls is SerialBackend:
        return SerialBackend()
    return cls(workers)


def measure_backend_throughput(
    backend: ExecutionBackend,
    target: CrackTarget,
    probe: Interval,
    batch_size: int = 1 << 14,
    chunks_per_worker: int = 2,
    recorder=None,
) -> dict[str, float]:
    """Tuning step on real hardware: probe per-worker throughput ``X_j``.

    Splits *probe* into a couple of chunks per worker, runs them through
    the backend, and returns the measured keys/second per worker — the
    inputs :func:`repro.cluster.balance.tuned_from_measured` consumes.
    """
    parts = max(1, backend.workers * chunks_per_worker)
    chunk = max(1, probe.size // parts)
    from repro.keyspace import split_interval

    outcome = backend.run(
        target, split_interval(probe, chunk), batch_size=batch_size, recorder=recorder
    )
    return outcome.measured_throughput()
