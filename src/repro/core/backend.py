"""Pluggable execution backends: how one host runs its interval searches.

The paper's node-level story (Sections III and V) is that a node saturates
its arithmetic throughput once the dispatch overhead ``K_D`` is amortized —
but that presumes the node actually *uses* all of its execution units.  On
a multi-core CPU host the unit of parallelism is a process, exactly the way
hashcat-style distributed crackers run one worker process per device.  This
module is that seam:

* :class:`SerialBackend` — inline execution on the calling thread; the
  deterministic reference and the right choice under test runners.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``; cheap to spin up and
  useful when NumPy releases the GIL, but shares one interpreter.
* :class:`ProcessBackend` — a ``ProcessPoolExecutor``; one Python per
  core, the CPU analogue of the paper's multi-GPU node.

The dispatch path is built so parallel actually wins:

* **Warm pools** — pool backends keep their executor alive across
  :meth:`~ExecutionBackend.run` calls, so a scheduler slicing many jobs
  over one backend pays worker start-up exactly once, not per slice.
* **One target install per worker** — the :class:`CrackTarget` is pickled
  once per run and shipped as an opaque blob; each worker deserializes it
  once (keyed by fingerprint) and keeps a warm :class:`CrackEngine` in a
  small per-worker LRU, so chunks of the same job never rebuild
  workspaces.  Work itself travels as bare ``(start, stop)`` tuples.
* **Batched gather** — workers execute *spans* of several chunks per
  round trip (:class:`WorkSpan`) and reply once per span; the master
  drains replies in bulk.  ``gather_batch`` controls the span width and
  is autotuned via :mod:`repro.tuning`.
* **Shared-memory counters** — per-chunk progress lands on a
  :class:`repro.core.shm.ResultBoard` with plain stores, so live
  throughput needs no extra IPC between span replies.

Results come back as :class:`WorkUnitResult` values with per-chunk
counters, which the backend merges into a :class:`BackendOutcome` carrying
per-worker measured throughput — the real ``X_j`` the balancing rule
``N_j = N_max * (X_j / X_max)`` of :mod:`repro.cluster.balance` needs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from functools import partial
from typing import Iterable, Sequence

from repro.apps.cracking import CrackEngine, CrackTarget
from repro.core.results import ResultMixin
from repro.core.search import SearchOutcome
from repro.core.shm import ResultBoard
from repro.keyspace import Interval
from repro.obs.schema import MetricNames


@dataclass(frozen=True)
class WorkUnit:
    """One scatter payload: everything a worker needs, and nothing more.

    Frozen and picklable — this crosses the process boundary.  The hot
    dispatch path ships :class:`WorkSpan` batches instead; the single-unit
    form remains the public currency for callers that want to execute one
    chunk by hand (and for the cluster runtime's scatter messages).
    """

    target: CrackTarget
    interval: Interval
    batch_size: int = 1 << 14

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")


@dataclass(frozen=True)
class WorkSpan:
    """A batched scatter payload: several chunks, one round trip.

    ``intervals`` are bare ``(start, stop)`` tuples — the chunk params and
    nothing else.  The target rides along once as ``payload`` (pickled
    bytes, a near-memcpy to re-pickle); workers deserialize it only on a
    ``token`` cache miss, so a warm worker pays zero per-span target cost.
    """

    token: str  #: target fingerprint (worker-side install cache key)
    intervals: tuple  #: ((start, stop), ...)
    batch_size: int
    payload: bytes  #: pickled CrackTarget, deserialized once per worker
    stop_on_first: bool = False  #: worker may cut the span at a hit


@dataclass
class WorkUnitResult:
    """The gather payload for one executed chunk."""

    interval: Interval
    matches: list  #: (index, key) pairs, sorted by index
    tested: int
    batches: int
    elapsed: float  #: seconds of search time inside the worker
    worker: str  #: executing worker's label (pid / thread name)

    @property
    def keys_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.tested / self.elapsed


# --------------------------------------------------------------------- #
# Worker-side warm state
# --------------------------------------------------------------------- #

#: How many live engines a single worker keeps warm.  Sized for the
#: fair-share scheduler's round-robin: a handful of interleaved jobs can
#: each keep their preallocated workspace across slices instead of
#: thrashing a single slot.
ENGINE_CACHE_SIZE = 4


class _EngineCache(threading.local):
    """Per-thread LRU of live engines (thread-pool workers never share)."""

    def __init__(self) -> None:
        self.entries: OrderedDict = OrderedDict()


_ENGINE_CACHE = _EngineCache()


def _cached_engine(target: CrackTarget, batch_size: int) -> CrackEngine:
    """A warm engine for this (target, batch) on the calling worker.

    Keyed by target *value* (frozen dataclass equality), so the cache
    survives across chunks of the same job no matter how the target
    reached the worker — re-pickled, re-built from a spec, or installed
    once via a :class:`WorkSpan` token.  A small LRU instead of a single
    slot keeps interleaved jobs (the scheduler's round-robin) from
    evicting each other every slice.
    """
    entries = _ENGINE_CACHE.entries
    key = (target, batch_size)
    engine = entries.get(key)
    if engine is None:
        engine = CrackEngine(target, batch_size=batch_size)
        entries[key] = engine
        while len(entries) > ENGINE_CACHE_SIZE:
            entries.popitem(last=False)
    else:
        entries.move_to_end(key)
    return engine


def engine_cache_stats() -> dict:
    """Introspection for tests: cached keys on the calling thread."""
    return {
        "size": len(_ENGINE_CACHE.entries),
        "capacity": ENGINE_CACHE_SIZE,
        "keys": list(_ENGINE_CACHE.entries),
    }


#: Per-process install cache of deserialized targets, keyed by span token.
_SPAN_TARGETS: dict[str, CrackTarget] = {}

#: Process-pool worker identity, assigned once by the pool initializer.
_WORKER_SLOT = -1
_WORKER_BOARD = None  # AttachedBoard in process-pool workers


def _init_process_worker(slot_counter, board_name: str | None, workers: int) -> None:
    """Process-pool initializer: claim a board slot, attach the board.

    Runs once per worker process at pool start — the warm-up moment.  The
    heavy imports (NumPy, the kernels) are already paid here rather than
    on the first chunk, and the worker's identity on the shared-memory
    board is fixed for the life of the pool.
    """
    global _WORKER_SLOT, _WORKER_BOARD
    if slot_counter is not None:
        with slot_counter.get_lock():
            _WORKER_SLOT = slot_counter.value
            slot_counter.value += 1
    if board_name is not None and 0 <= _WORKER_SLOT < workers:
        try:
            _WORKER_BOARD = ResultBoard.attach(board_name, workers)
        except (OSError, ValueError):  # board gone: run blind, replies still flow
            _WORKER_BOARD = None


def _worker_label() -> str:
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"pid-{os.getpid()}"
    return f"pid-{os.getpid()}/{thread.name}"


def _install_target(span: WorkSpan) -> CrackTarget:
    target = _SPAN_TARGETS.get(span.token)
    if target is None:
        target = pickle.loads(span.payload)
        if len(_SPAN_TARGETS) >= 2 * ENGINE_CACHE_SIZE:
            _SPAN_TARGETS.clear()  # bounded; engines hold the hot state
        _SPAN_TARGETS[span.token] = target
    return target


def _run_span(span: WorkSpan, record) -> list[WorkUnitResult]:
    """Execute every chunk of a span on one warm engine; one reply."""
    target = _install_target(span)
    engine = _cached_engine(target, span.batch_size)
    label = _worker_label()
    results: list[WorkUnitResult] = []
    for start, stop in span.intervals:
        interval = Interval(start, stop)
        tested0 = engine.stats.tested
        batches0 = engine.stats.batches
        elapsed0 = engine.stats.elapsed
        matches = engine.search(interval)
        tested = engine.stats.tested - tested0
        batches = engine.stats.batches - batches0
        elapsed = engine.stats.elapsed - elapsed0
        if record is not None:
            record(tested, batches, elapsed)
        results.append(
            WorkUnitResult(
                interval=interval,
                matches=matches,
                tested=tested,
                batches=batches,
                elapsed=elapsed,
                worker=label,
            )
        )
        if span.stop_on_first and matches:
            break  # the un-run rest of the span is reported unfinished
    return results


def execute_work_span(span: WorkSpan) -> list[WorkUnitResult]:
    """Span entry point in process-pool workers (module-level: picklable)."""
    record = None
    if _WORKER_BOARD is not None:
        record = partial(_WORKER_BOARD.record, _WORKER_SLOT)
    return _run_span(span, record)


def _execute_span_in_thread(span: WorkSpan, board: ResultBoard | None):
    """Span entry point in thread-pool workers (board passed in-process)."""
    record = None
    if board is not None:
        name = threading.current_thread().name
        _, _, index = name.rpartition("_")
        slot = int(index) if index.isdigit() else 0
        record = partial(board.record, min(slot, board.workers - 1))
    return _run_span(span, record)


def execute_work_unit(unit: WorkUnit) -> WorkUnitResult:
    """Run one work unit in the calling worker (module-level: picklable)."""
    engine = _cached_engine(unit.target, unit.batch_size)
    tested0 = engine.stats.tested
    batches0 = engine.stats.batches
    elapsed0 = engine.stats.elapsed
    matches = engine.search(unit.interval)
    return WorkUnitResult(
        interval=unit.interval,
        matches=matches,
        tested=engine.stats.tested - tested0,
        batches=engine.stats.batches - batches0,
        elapsed=engine.stats.elapsed - elapsed0,
        worker=_worker_label(),
    )


@dataclass
class WorkerThroughput:
    """Per-worker accounting merged from its gather messages."""

    tested: int = 0
    elapsed: float = 0.0
    chunks: int = 0

    @property
    def keys_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.tested / self.elapsed


@dataclass
class BackendOutcome(ResultMixin):
    """Merged result of a backend run (the master's gather + merge step).

    Conforms to the unified :class:`~repro.core.results.RunResult` surface
    (``found``/``tested``/``elapsed``/``backend``/``metrics``).
    """

    backend: str
    workers: int
    found: list = field(default_factory=list)  #: sorted (index, key) pairs
    tested: int = 0
    batches: int = 0
    chunks: int = 0
    spans: int = 0  #: gather replies (== chunks unless batched)
    elapsed: float = 0.0  #: wall-clock of the whole run
    worker_elapsed: float = 0.0  #: summed in-worker search time
    per_worker: dict = field(default_factory=dict)  #: label -> WorkerThroughput
    #: Intervals that were *not* executed because the run stopped early
    #: (``stop_on_first`` fired or a ``preempt`` callback asked the driver
    #: to yield); a checkpointing caller re-plans exactly these.
    unfinished: list = field(default_factory=list)
    metrics: dict | None = None  #: repro-metrics/v2 payload when recorded

    def absorb(self, result: WorkUnitResult) -> None:
        """Merge one gather message into the outcome."""
        self.found.extend(result.matches)
        self.tested += result.tested
        self.batches += result.batches
        self.chunks += 1
        self.worker_elapsed += result.elapsed
        stats = self.per_worker.setdefault(result.worker, WorkerThroughput())
        stats.tested += result.tested
        stats.elapsed += result.elapsed
        stats.chunks += 1

    def measured_throughput(self) -> dict[str, float]:
        """Per-worker measured ``X_j`` in keys/second (balance.py input)."""
        return {
            name: stats.keys_per_second
            for name, stats in sorted(self.per_worker.items())
            if stats.keys_per_second > 0
        }

    def raw_throughput(self) -> dict[str, float]:
        """Like :meth:`measured_throughput` but *keeps* zero-rate workers.

        The adaptive balancer clamps these to a floor instead of silently
        dropping them (see :func:`repro.cluster.balance.clamp_measured_throughput`).
        """
        return {
            name: stats.keys_per_second
            for name, stats in sorted(self.per_worker.items())
        }

    def to_search_outcome(self) -> SearchOutcome:
        """View as the pattern's :class:`SearchOutcome` (gather contract)."""
        outcome: SearchOutcome = SearchOutcome(
            accepted=list(self.found), tested=self.tested
        )
        outcome.f_calls = self.chunks  # one f per dispatched interval
        outcome.next_calls = max(0, self.tested - self.chunks)
        return outcome


class ExecutionBackend:
    """Common driver: dispatch spans of chunks, gather, merge.

    Subclasses provide :meth:`_execute`, mapping the planned intervals to
    an iterable of per-chunk results in completion order.
    """

    name = "serial"
    workers = 1

    def run(
        self,
        target: CrackTarget,
        intervals: Sequence[Interval],
        batch_size: int = 1 << 14,
        stop_on_first: bool = False,
        recorder=None,
        preempt=None,
        on_result=None,
        gather_batch: int | None = None,
    ) -> BackendOutcome:
        """Search the given intervals; returns the merged outcome.

        ``stop_on_first`` stops *dispatching* once a match has been
        gathered; in-flight spans cut themselves at the first hit's chunk
        boundary and everything never executed is reported unfinished
        (the paper's stop condition semantics).

        ``preempt`` is a zero-argument callable checked at gather
        boundaries: once it returns true the driver stops handing out new
        spans, lets in-flight spans finish and merge, and reports the
        never-executed intervals on ``outcome.unfinished`` — cooperative
        preemption for fair-share scheduling and graceful drain, with
        exactly-once coverage preserved (an interval is either fully
        gathered or fully unfinished, never half-scanned).

        ``on_result`` is called with each :class:`WorkUnitResult` as it is
        merged, on the gathering thread — the per-chunk hook checkpointing
        callers use to mark a :class:`~repro.core.progress.ProgressLog`.

        ``gather_batch`` is how many chunks a worker executes per reply
        (pool backends only).  ``None`` consults the measured-best config
        from :mod:`repro.tuning` when one is attached, then falls back to
        a chunks-per-worker heuristic.  Wider spans amortize round trips;
        narrower spans tighten preemption latency.

        ``recorder`` (a :class:`repro.obs.Recorder`) captures the paper's
        cost-model phases — ``K_scatter`` (span construction + pool
        submission), ``K_search`` (in-worker scan time, one span per
        gathered chunk, labelled by worker), ``K_gather`` (merge time on
        the master) — plus per-worker ``X_j`` gauges.  With ``None``
        (the default) the run is completely uninstrumented.
        """
        if gather_batch is None:
            tuned = getattr(self, "tuned", None)
            if tuned is not None:
                gather_batch = tuned.gather_batch
                if recorder is not None:
                    recorder.event(
                        MetricNames.EVENT_TUNING_APPLIED,
                        backend=self.name,
                        gather_batch=tuned.gather_batch,
                        chunk_size=tuned.chunk_size,
                    )
        outcome = BackendOutcome(backend=self.name, workers=self.workers)
        gather_time = 0.0
        started = time.perf_counter()

        def should_stop() -> bool:
            if stop_on_first and outcome.found:
                return True
            return preempt is not None and bool(preempt())

        gathered: set = set()
        for result in self._execute(
            target, intervals, batch_size, should_stop, recorder,
            stop_on_first, gather_batch,
        ):
            merge_started = time.perf_counter()
            outcome.absorb(result)
            gathered.add(result.interval)
            gather_time += time.perf_counter() - merge_started
            if recorder is not None:
                recorder.span_record(
                    MetricNames.PHASE_SEARCH,
                    result.elapsed,
                    backend=self.name,
                    worker=result.worker,
                )
            if on_result is not None:
                on_result(result)
        outcome.unfinished = [iv for iv in intervals if iv not in gathered]
        outcome.found.sort()
        outcome.elapsed = time.perf_counter() - started
        outcome.spans = getattr(self, "_spans_gathered", outcome.chunks)
        if recorder is not None:
            self._record_run(outcome, recorder, gather_time, stop_on_first)
        return outcome

    def _record_run(
        self, outcome: BackendOutcome, recorder, gather_time, stop_on_first
    ) -> None:
        recorder.span_record(MetricNames.PHASE_GATHER, gather_time, backend=self.name)
        recorder.counter(MetricNames.BACKEND_CHUNKS, outcome.chunks, backend=self.name)
        recorder.counter(MetricNames.BACKEND_TESTED, outcome.tested, backend=self.name)
        recorder.counter(MetricNames.BACKEND_BATCHES, outcome.batches, backend=self.name)
        recorder.counter(MetricNames.BACKEND_SPANS, outcome.spans, backend=self.name)
        if stop_on_first and outcome.found:
            recorder.counter(MetricNames.BACKEND_EARLY_EXIT, 1, backend=self.name)
        # Summed idle seconds across the pool: wall time the workers were
        # *not* searching (queue wait + scheduling overhead).
        idle = max(0.0, outcome.elapsed * self.workers - outcome.worker_elapsed)
        recorder.gauge(MetricNames.BACKEND_QUEUE_WAIT, idle, backend=self.name)
        for name, rate in outcome.measured_throughput().items():
            recorder.gauge(
                MetricNames.WORKER_KEYS_PER_SECOND,
                rate,
                backend=self.name,
                worker=name,
            )

    def _execute(
        self, target, intervals, batch_size, should_stop, recorder,
        stop_on_first, gather_batch,
    ) -> Iterable[WorkUnitResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (no-op for inline execution)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class SerialBackend(ExecutionBackend):
    """Inline execution — deterministic, no pools, the reference backend."""

    name = "serial"
    workers = 1

    def _execute(
        self, target, intervals, batch_size, should_stop, recorder,
        stop_on_first, gather_batch,
    ):
        prep_started = time.perf_counter()
        engine_warm = _cached_engine(target, batch_size)  # noqa: F841 - warm-up
        if recorder is not None:
            recorder.span_record(
                MetricNames.PHASE_SCATTER,
                time.perf_counter() - prep_started,
                backend=self.name,
            )
        for interval in intervals:
            if should_stop():
                return
            yield execute_work_unit(WorkUnit(target, interval, batch_size))


class _PoolBackend(ExecutionBackend):
    """Shared scatter/gather loop over a persistent ``concurrent.futures``
    executor.

    The pool is created on first use and **kept warm across runs** — the
    whole point of the dispatch rebuild: a scheduler slicing many jobs
    over one backend, or a benchmark timing repeated runs, pays worker
    start-up once.  :meth:`close` (or garbage collection) shuts it down.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.tuned = None  #: TuningEntry attached by resolve_backend()
        self.pool_starts = 0  #: cold starts this instance has paid
        self._pool: Executor | None = None
        self._board: ResultBoard | None = None
        self._finalizer = None
        self._spans_gathered = 0

    # -- pool lifecycle ------------------------------------------------- #
    def _start_pool(self) -> tuple[Executor, ResultBoard | None]:
        raise NotImplementedError

    def _submit(self, pool: Executor, span: WorkSpan):
        raise NotImplementedError

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool, self._board = self._start_pool()
            self.pool_starts += 1
            self._finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool, self._board
            )
        return self._pool

    @property
    def board(self) -> ResultBoard | None:
        """Live shared counters for the current/last run (may be None)."""
        return self._board

    def close(self) -> None:
        """Shut the warm pool down and release the shared board."""
        if self._finalizer is not None:
            self._finalizer()  # idempotent; runs _shutdown_pool once
        self._pool = None
        self._board = None
        self._finalizer = None

    # -- the batched scatter/gather loop -------------------------------- #
    def _execute(
        self, target, intervals, batch_size, should_stop, recorder,
        stop_on_first, gather_batch,
    ):
        # Chunks are grouped into spans of ``gather_batch`` and handed to
        # the pool through a bounded window (a couple of spans per worker)
        # rather than scattered upfront: a ``preempt`` or ``stop_on_first``
        # signal then takes effect at the next gather with only the
        # in-flight window left to drain.
        prep_started = time.perf_counter()
        try:
            pool = self._ensure_pool()
        except BrokenExecutor:
            self.close()
            raise
        if self._board is not None:
            self._board.reset()
        self._spans_gathered = 0
        if gather_batch is None:
            # Aim for a few replies per worker: wide enough to amortize
            # round trips, narrow enough that the pool stays balanced.
            gather_batch = max(1, -(-len(intervals) // (self.workers * 4)))
        gather_batch = max(1, min(64, int(gather_batch)))
        payload = pickle.dumps(target, protocol=pickle.HIGHEST_PROTOCOL)
        token = hashlib.sha1(payload).hexdigest()

        def spans():
            window: list = []
            for interval in intervals:
                window.append((interval.start, interval.stop))
                if len(window) >= gather_batch:
                    yield WorkSpan(
                        token, tuple(window), batch_size, payload, stop_on_first
                    )
                    window = []
            if window:
                yield WorkSpan(
                    token, tuple(window), batch_size, payload, stop_on_first
                )

        spans_iter = spans()
        window_size = self.workers * 2
        pending: set = set()

        def refill() -> None:
            while len(pending) < window_size:
                span = next(spans_iter, None)
                if span is None:
                    break
                pending.add(self._submit(pool, span))

        try:
            refill()
            if recorder is not None:
                recorder.span_record(
                    MetricNames.PHASE_SCATTER,
                    time.perf_counter() - prep_started,
                    backend=self.name,
                )
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    self._spans_gathered += 1
                    yield from future.result()
                if should_stop():
                    for future in pending:
                        future.cancel()
                    # In-flight spans still complete; merge them too.
                    for future in wait(pending).done:
                        if not future.cancelled():
                            self._spans_gathered += 1
                            yield from future.result()
                    return
                refill()
        except BrokenExecutor:
            self.close()  # a dead pool never serves another run
            raise
        finally:
            for future in pending:
                future.cancel()


def _shutdown_pool(pool: Executor, board: ResultBoard | None) -> None:
    pool.shutdown(wait=False, cancel_futures=True)
    if board is not None:
        board.close()


class ThreadBackend(_PoolBackend):
    """Thread-pool execution: one interpreter, NumPy sections overlap."""

    name = "thread"

    def _start_pool(self) -> tuple[Executor, ResultBoard | None]:
        pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="crack-worker"
        )
        return pool, ResultBoard(self.workers, shared=False)

    def _submit(self, pool: Executor, span: WorkSpan):
        return pool.submit(_execute_span_in_thread, span, self._board)


class ProcessBackend(_PoolBackend):
    """Process-pool execution: one Python per core, the multi-GPU analogue.

    Workers are **warm**: the pool initializer runs once per process,
    claims a shared-memory board slot, and subsequent spans find their
    target and engine already installed.  On platforms without ``fork``
    the shared board is skipped (replies still carry exact counters).
    """

    name = "process"

    def _start_pool(self) -> tuple[Executor, ResultBoard | None]:
        import multiprocessing as mp

        if "fork" in mp.get_all_start_methods():
            ctx = mp.get_context("fork")
            board = ResultBoard(self.workers, shared=True)
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_init_process_worker,
                initargs=(ctx.Value("i", 0), board.name, self.workers),
            )
            return pool, board
        return ProcessPoolExecutor(max_workers=self.workers), None

    def _submit(self, pool: Executor, span: WorkSpan):
        return pool.submit(execute_work_span, span)


#: Registry used by config/CLI resolution.
BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def default_worker_count() -> int:
    """Leave one core for the master, like the paper's dispatcher node."""
    return max(1, (os.cpu_count() or 2) - 1)


def resolve_backend(
    spec: str | ExecutionBackend | None,
    workers: int | None = None,
    tuning: bool = True,
) -> ExecutionBackend:
    """Turn a config/CLI value into a backend instance.

    ``spec`` may be an instance (returned as-is), a registry name
    (``"serial"``/``"thread"``/``"process"``), ``"auto"`` or ``None``
    (process pool when more than one worker is requested, serial
    otherwise).

    With ``tuning=True`` (the default) the measured-best dispatch config
    for this backend shape is looked up in the versioned ``tuning.json``
    (see :mod:`repro.tuning`) and attached as ``backend.tuned`` — stale
    entries (recorded for a different worker or CPU count) are ignored.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None or spec == "auto":
        workers = workers if workers is not None else default_worker_count()
        backend: ExecutionBackend = (
            ProcessBackend(workers) if workers > 1 else SerialBackend()
        )
    else:
        try:
            cls = BACKENDS[spec]
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r}; choose from {sorted(BACKENDS)} or 'auto'"
            ) from None
        backend = SerialBackend() if cls is SerialBackend else cls(workers)
    if tuning and backend.workers > 1:
        from repro import tuning as tuning_mod

        entry = tuning_mod.lookup(backend.name, backend.workers)
        if entry is not None:
            backend.tuned = entry
    return backend


def measure_backend_throughput(
    backend: ExecutionBackend,
    target: CrackTarget,
    probe: Interval,
    batch_size: int = 1 << 14,
    chunks_per_worker: int = 2,
    recorder=None,
) -> dict[str, float]:
    """Tuning step on real hardware: probe per-worker throughput ``X_j``.

    Splits *probe* into a couple of chunks per worker, runs them through
    the backend, and returns the measured keys/second per worker — the
    inputs :func:`repro.cluster.balance.tuned_from_measured` consumes.
    """
    parts = max(1, backend.workers * chunks_per_worker)
    chunk = max(1, probe.size // parts)
    from repro.keyspace import split_interval

    outcome = backend.run(
        target, split_interval(probe, chunk), batch_size=batch_size,
        recorder=recorder, gather_batch=1,  # per-chunk replies: this *is* the probe
    )
    return outcome.measured_throughput()
