"""Command-line front end for the static-analysis suite.

``repro check`` (or ``python -m repro.checks``) scans ``src/repro`` and
``tests`` by default, applies every registered rule, subtracts the
committed baseline, and exits non-zero when fresh error-severity
findings remain (``--strict``: any fresh finding).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import (
    all_rules,
    apply_baseline,
    load_baseline,
    load_project,
    report_document,
    run_checks,
    save_baseline,
)

#: Scan roots, relative to the repo root, when none are given.
DEFAULT_PATHS = ("src/repro", "tests")

#: Directories never scanned: deliberately-broken rule fixtures.
EXCLUDED_DIRS = frozenset({"checks_fixtures"})

DEFAULT_BASELINE = "checks_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Domain-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file of grandfathered findings (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable repro-checks/v1 report on stdout",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any fresh finding, not just errors",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _resolve_paths(root: Path, raw: list[str]) -> list[Path]:
    if raw:
        return [Path(p) if Path(p).is_absolute() else root / p for p in raw]
    paths = [root / rel for rel in DEFAULT_PATHS]
    return [p for p in paths if p.exists()] or [root]


def _filter_excluded(project) -> None:
    project.files = [
        parsed
        for parsed in project.files
        if not (EXCLUDED_DIRS & set(parsed.relpath.split("/")))
    ]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:24s} [{rule.severity}] {' '.join(rule.doc.split())}")
        return 0

    root = Path(args.root).resolve()
    rule_names = None
    if args.rules:
        rule_names = [name.strip() for name in args.rules.split(",") if name.strip()]

    project = load_project(root, _resolve_paths(root, args.paths))
    _filter_excluded(project)
    try:
        findings = run_checks(project, rule_names)
    except SyntaxError as exc:
        print(f"repro check: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    if args.write_baseline:
        save_baseline(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baseline = set() if args.no_baseline else load_baseline(baseline_path)
    fresh, grandfathered = apply_baseline(findings, baseline)

    if args.json:
        document = report_document(
            fresh,
            grandfathered,
            rules=all_rules() if rule_names is None else [
                rule for rule in all_rules() if rule.name in rule_names
            ],
            files_scanned=len(project.files),
        )
        print(json.dumps(document, indent=2))
    else:
        for finding in fresh:
            print(finding.render())
        noun = "finding" if len(fresh) == 1 else "findings"
        suffix = (
            f" ({len(grandfathered)} grandfathered by baseline)"
            if grandfathered
            else ""
        )
        print(
            f"repro check: {len(fresh)} {noun} in "
            f"{len(project.files)} file(s){suffix}"
        )

    if args.strict:
        return 1 if fresh else 0
    return 1 if any(f.severity == "error" for f in fresh) else 0
