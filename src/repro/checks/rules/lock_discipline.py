"""Rule: attributes guarded by a lock must always be accessed under it.

The cluster/service layers share mutable state between the gather loop,
daemon threads, and control RPCs.  The convention the codebase follows
is *textual* lock discipline: an attribute mutated inside a
``with self.<something-lock>:`` block belongs to that lock, and every
other access in the class must sit inside such a block too.  This rule
mechanises the convention: for each class it collects the set of
attributes ever *written* under a lock, then flags any read or write of
those attributes outside a lock block (``__init__`` is exempt — the
object is not yet shared while it constructs itself).

Nested functions inherit the textual context of their definition site;
a closure defined under the lock is treated as guarded.  Helper methods
that take the lock themselves (``def _take_x(self): with self._lock:
...``) are the sanctioned way to expose guarded state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..engine import Finding, Project, register

RULE = "lock-discipline"


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _lock_attr(expr: ast.expr) -> str | None:
    """Name of the lock when *expr* is ``self.<attr>`` with 'lock' in it."""
    if isinstance(expr, ast.Attribute) and _is_self(expr.value):
        if "lock" in expr.attr.lower():
            return expr.attr
    return None


@dataclass(frozen=True)
class _Access:
    attr: str
    line: int
    col: int
    is_store: bool
    in_lock: bool
    method: str


#: Method calls on ``self.<attr>`` that mutate the container in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "appendleft",
        "popleft",
    }
)


def _self_attr(node: ast.expr) -> ast.Attribute | None:
    if isinstance(node, ast.Attribute) and _is_self(node.value):
        return node
    return None


def _collect_accesses(cls: ast.ClassDef) -> tuple[list[_Access], set[str]]:
    accesses: list[_Access] = []
    lock_attrs: set[str] = set()

    def record(attr_node: ast.Attribute, is_store: bool, in_lock: bool, method: str) -> None:
        accesses.append(
            _Access(
                attr=attr_node.attr,
                line=attr_node.lineno,
                col=attr_node.col_offset,
                is_store=is_store,
                in_lock=in_lock,
                method=method or "<class body>",
            )
        )

    def visit(node: ast.AST, in_lock: bool, method: str) -> None:
        if isinstance(node, ast.ClassDef) and node is not cls:
            return  # nested classes get their own analysis
        if isinstance(node, ast.With):
            holds = in_lock
            for item in node.items:
                name = _lock_attr(item.context_expr)
                if name is not None:
                    lock_attrs.add(name)
                    holds = True
                visit(item.context_expr, in_lock, method)
                if item.optional_vars is not None:
                    visit(item.optional_vars, in_lock, method)
            for stmt in node.body:
                visit(stmt, holds, method)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            name = method or node.name
            for deco in node.decorator_list:
                visit(deco, in_lock, name)
            for stmt in node.body:
                visit(stmt, in_lock, name)
            return
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            # self._d[k] = v / del self._d[k] mutate the attribute even
            # though the Attribute node itself carries a Load context.
            base = _self_attr(node.value)
            if base is not None:
                record(base, True, in_lock, method)
                visit(node.slice, in_lock, method)
                return
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and _self_attr(func.value) is not None
            ):
                # self._d.pop(...) etc. mutate the attribute in place.
                record(_self_attr(func.value), True, in_lock, method)
                for arg in node.args:
                    visit(arg, in_lock, method)
                for kw in node.keywords:
                    visit(kw, in_lock, method)
                return
        if isinstance(node, ast.Attribute) and _is_self(node.value):
            record(
                node,
                isinstance(node.ctx, (ast.Store, ast.Del)),
                in_lock,
                method,
            )
            return
        for child in ast.iter_child_nodes(node):
            visit(child, in_lock, method)

    for stmt in cls.body:
        visit(stmt, False, "")
    return accesses, lock_attrs


@register(
    RULE,
    severity="error",
    doc=(
        "Attributes written under a `with self.<lock>:` block must be "
        "accessed under a lock everywhere else in the class "
        "(constructors exempt)."
    ),
)
def check(project: Project) -> Iterator[Finding]:
    for parsed in project.files:
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            accesses, lock_attrs = _collect_accesses(node)
            guarded = {
                a.attr
                for a in accesses
                if a.is_store and a.in_lock and a.attr not in lock_attrs
            }
            if not guarded:
                continue
            for access in accesses:
                if access.attr not in guarded or access.in_lock:
                    continue
                if access.method == "__init__":
                    continue
                kind = "written" if access.is_store else "read"
                yield Finding(
                    rule=RULE,
                    severity="error",
                    path=parsed.relpath,
                    line=access.line,
                    col=access.col + 1,
                    message=(
                        f"'{node.name}.{access.attr}' is lock-guarded "
                        f"elsewhere but {kind} without the lock in "
                        f"{access.method}()"
                    ),
                    symbol=f"{node.name}.{access.attr}:{access.method}",
                )
