"""Domain rules for ``repro check``.

Importing this package registers every rule with the engine registry.
Add a new rule by creating a module here that decorates a function with
:func:`repro.checks.engine.register` and importing it below.
"""

from . import (  # noqa: F401  (imported for the registration side effect)
    fork_safety,
    hot_path,
    lock_discipline,
    metric_registry,
    protocol_symmetry,
)

__all__ = [
    "fork_safety",
    "hot_path",
    "lock_discipline",
    "metric_registry",
    "protocol_symmetry",
]
