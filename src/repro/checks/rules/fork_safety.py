"""Rule: objects crossing the process boundary must stay picklable.

WorkUnit/WorkSpan/WorkUnitResult/CrackTarget instances are pickled into
worker processes by the process backend, and pool ``submit(...)`` calls
ship their callables the same way.  A lock, socket, or open file
smuggled into one of these — as a dataclass field or via a closure —
fails only at dispatch time, inside a pool worker, with a pickling
traceback far from the bug.  This rule flags:

* fields of the boundary dataclasses whose annotation or default names
  an unpicklable type (``Lock``/``RLock``/``Condition``/``Event``/
  ``socket``/``IO`` handles) or calls ``open()``/``socket()``/
  ``threading.*``;
* ``pool.submit(<lambda>, ...)`` and ``pool.submit(<nested function>,
  ...)`` — closures cannot cross a process boundary; only module-level
  callables can.

Test trees are exempt (they exercise thread pools and in-process
fakes).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ParsedFile, Project, register

RULE = "fork-safety"

#: Class names treated as process-boundary payloads.
BOUNDARY_CLASSES = frozenset(
    {"WorkUnit", "WorkSpan", "WorkUnitResult", "CrackTarget"}
)

#: Type/attribute names that mark a field as unpicklable.
UNPICKLABLE_NAMES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "socket",
        "Socket",
        "IO",
        "TextIO",
        "BinaryIO",
        "TextIOWrapper",
        "BufferedReader",
        "BufferedWriter",
    }
)

_UNPICKLABLE_CALLS = frozenset({"open", "socket", "Lock", "RLock", "Condition"})


def _is_test_path(parsed: ParsedFile) -> bool:
    parts = parsed.relpath.split("/")
    return any(part == "tests" or part.startswith("test") for part in parts)


def _names_anywhere(node: ast.AST) -> set[str]:
    found: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            found.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            found.add(sub.attr)
    return found


def _field_findings(parsed: ParsedFile, cls: ast.ClassDef) -> Iterator[Finding]:
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            pieces = [stmt.annotation]
            if stmt.value is not None:
                pieces.append(stmt.value)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            pieces = [stmt.value]
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        suspicious = set()
        for piece in pieces:
            suspicious |= _names_anywhere(piece) & (
                UNPICKLABLE_NAMES | _UNPICKLABLE_CALLS
            )
        if not suspicious:
            continue
        yield Finding(
            rule=RULE,
            severity="error",
            path=parsed.relpath,
            line=stmt.lineno,
            col=stmt.col_offset + 1,
            message=(
                f"{cls.name}.{target.id} references unpicklable "
                f"{sorted(suspicious)} but {cls.name} crosses the "
                f"process boundary"
            ),
            symbol=f"{cls.name}.{target.id}",
        )


def _nested_function_names(tree: ast.Module) -> set[str]:
    nested: set[str] = set()

    def visit(node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if depth > 0:
                    nested.add(child.name)
                visit(child, depth + 1)
            elif isinstance(child, ast.ClassDef):
                visit(child, 0)  # methods are attribute-addressed, fine
            else:
                visit(child, depth)

    visit(tree, 0)
    return nested


def _submit_findings(parsed: ParsedFile) -> Iterator[Finding]:
    nested = _nested_function_names(parsed.tree)
    for node in ast.walk(parsed.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Lambda):
            yield Finding(
                rule=RULE,
                severity="error",
                path=parsed.relpath,
                line=first.lineno,
                col=first.col_offset + 1,
                message=(
                    "lambda passed to .submit() cannot cross a process "
                    "boundary; use a module-level function"
                ),
                symbol="submit:lambda",
            )
        elif isinstance(first, ast.Name) and first.id in nested:
            yield Finding(
                rule=RULE,
                severity="error",
                path=parsed.relpath,
                line=first.lineno,
                col=first.col_offset + 1,
                message=(
                    f"nested function {first.id!r} passed to .submit() "
                    f"closes over its frame and cannot be pickled; use a "
                    f"module-level function"
                ),
                symbol=f"submit:{first.id}",
            )


@register(
    RULE,
    severity="error",
    doc=(
        "Process-boundary payloads (WorkUnit/WorkSpan/WorkUnitResult/"
        "CrackTarget) must not carry locks/sockets/files, and "
        ".submit() callables must be module-level."
    ),
)
def check(project: Project) -> Iterator[Finding]:
    for parsed in project.files:
        if _is_test_path(parsed):
            continue
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ClassDef) and node.name in BOUNDARY_CLASSES:
                yield from _field_findings(parsed, node)
        yield from _submit_findings(parsed)
