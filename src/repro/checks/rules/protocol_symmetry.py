"""Rule: every wire message has encode + decode arms and test coverage.

``cluster/protocol.py`` is a hand-rolled binary protocol: each
``*Message`` class carries an ``encode`` method, a ``decode``
classmethod, and a magic dispatched by ``decode_any``.  A message class
missing any arm round-trips in one direction only — the kind of
asymmetry that surfaces as a hung worker, not a stack trace.  This rule
requires, for every ``*Message`` class in the protocol module:

* an ``encode`` method and a ``decode`` (class)method;
* a reference from the body of ``decode_any`` (the dispatch table);
* when any ``test*`` file is in the scan set: at least one test module
  that names the class (the fuzz/round-trip suite must know it exists).

``service/wire.py`` is the same discipline over HTTP: the
``REQUEST_VALIDATORS`` / ``RESPONSE_VALIDATORS`` dict literals are the
machine-checkable index of the ``repro-api/v1`` contract.  For every
kind registered there the rule requires:

* the entry's value to be a validator function defined in the module;
* when any ``test*`` file is in the scan set: at least one test module
  that spells the kind as a string literal (or names its validator),
  so no document type ships without fuzz/round-trip coverage.

The rule is silent for whichever of the two modules is not scanned.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Project, register

RULE = "protocol-symmetry"


def _method_names(cls: ast.ClassDef) -> set[str]:
    return {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _test_files(project: Project) -> list:
    return [
        parsed
        for parsed in project.files
        if parsed.relpath.rsplit("/", 1)[-1].startswith("test")
    ]


@register(
    RULE,
    severity="error",
    doc=(
        "Every *Message class in cluster/protocol.py needs encode + "
        "decode arms, a decode_any dispatch entry, and a reference "
        "from the protocol test suite; every repro-api/v1 kind in "
        "service/wire.py's validator registries needs a validator "
        "function defined there and a test that names it."
    ),
)
def check(project: Project) -> Iterator[Finding]:
    yield from _check_cluster_protocol(project)
    yield from _check_api_registries(project)


def _check_cluster_protocol(project: Project) -> Iterator[Finding]:
    protocol = project.by_suffix("cluster/protocol.py")
    if protocol is None:
        return
    messages = [
        node
        for node in protocol.tree.body
        if isinstance(node, ast.ClassDef) and node.name.endswith("Message")
    ]
    if not messages:
        return

    dispatch_names: set[str] = set()
    for node in ast.walk(protocol.tree):
        if isinstance(node, ast.FunctionDef) and node.name == "decode_any":
            dispatch_names = _names_in(node)

    test_files = _test_files(project)
    tested_names: set[str] = set()
    for parsed in test_files:
        tested_names |= _names_in(parsed.tree)

    for cls in messages:
        methods = _method_names(cls)
        for arm in ("encode", "decode"):
            if arm not in methods:
                yield Finding(
                    rule=RULE,
                    severity="error",
                    path=protocol.relpath,
                    line=cls.lineno,
                    col=cls.col_offset + 1,
                    message=f"{cls.name} has no {arm}() arm",
                    symbol=f"{cls.name}.{arm}",
                )
        if dispatch_names and cls.name not in dispatch_names:
            yield Finding(
                rule=RULE,
                severity="error",
                path=protocol.relpath,
                line=cls.lineno,
                col=cls.col_offset + 1,
                message=f"{cls.name} is not dispatched by decode_any()",
                symbol=f"{cls.name}.decode_any",
            )
        if test_files and cls.name not in tested_names:
            yield Finding(
                rule=RULE,
                severity="error",
                path=protocol.relpath,
                line=cls.lineno,
                col=cls.col_offset + 1,
                message=(
                    f"{cls.name} is never referenced by any scanned test "
                    f"module (no round-trip/fuzz coverage)"
                ),
                symbol=f"{cls.name}.tested",
            )


_API_REGISTRIES = ("REQUEST_VALIDATORS", "RESPONSE_VALIDATORS")


def _check_api_registries(project: Project) -> Iterator[Finding]:
    wire = project.by_suffix("service/wire.py")
    if wire is None:
        return
    defined = {
        node.name
        for node in wire.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    registries: list[tuple[str, ast.Dict]] = []
    for node in wire.tree.body:
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Dict):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in _API_REGISTRIES:
                registries.append((target.id, node.value))
    if not registries:
        return

    test_files = _test_files(project)
    tested_names: set[str] = set()
    tested_strings: set[str] = set()
    for parsed in test_files:
        tested_names |= _names_in(parsed.tree)
        tested_strings |= {
            node.value
            for node in ast.walk(parsed.tree)
            if isinstance(node, ast.Constant) and isinstance(node.value, str)
        }

    for registry, literal in registries:
        for key, value in zip(literal.keys, literal.values):
            if not isinstance(key, ast.Constant) or not isinstance(key.value, str):
                yield Finding(
                    rule=RULE,
                    severity="error",
                    path=wire.relpath,
                    line=literal.lineno,
                    col=literal.col_offset + 1,
                    message=f"{registry} keys must be string kind literals",
                    symbol=f"{registry}.keys",
                )
                continue
            kind = key.value
            validator = value.id if isinstance(value, ast.Name) else None
            if validator is None or validator not in defined:
                yield Finding(
                    rule=RULE,
                    severity="error",
                    path=wire.relpath,
                    line=value.lineno,
                    col=value.col_offset + 1,
                    message=(
                        f"kind {kind!r} in {registry} does not map to a "
                        f"validator function defined in this module"
                    ),
                    symbol=f"{registry}.{kind}.validator",
                )
                continue
            if test_files and kind not in tested_strings and validator not in tested_names:
                yield Finding(
                    rule=RULE,
                    severity="error",
                    path=wire.relpath,
                    line=key.lineno,
                    col=key.col_offset + 1,
                    message=(
                        f"kind {kind!r} ({registry}) is never named by any "
                        f"scanned test module (no fuzz/round-trip coverage)"
                    ),
                    symbol=f"{registry}.{kind}.tested",
                )
