"""Rule: every wire message has encode + decode arms and test coverage.

``cluster/protocol.py`` is a hand-rolled binary protocol: each
``*Message`` class carries an ``encode`` method, a ``decode``
classmethod, and a magic dispatched by ``decode_any``.  A message class
missing any arm round-trips in one direction only — the kind of
asymmetry that surfaces as a hung worker, not a stack trace.  This rule
requires, for every ``*Message`` class in the protocol module:

* an ``encode`` method and a ``decode`` (class)method;
* a reference from the body of ``decode_any`` (the dispatch table);
* when any ``test*`` file is in the scan set: at least one test module
  that names the class (the fuzz/round-trip suite must know it exists).

The rule is silent when no ``cluster/protocol.py`` is scanned.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Project, register

RULE = "protocol-symmetry"


def _method_names(cls: ast.ClassDef) -> set[str]:
    return {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


@register(
    RULE,
    severity="error",
    doc=(
        "Every *Message class in cluster/protocol.py needs encode + "
        "decode arms, a decode_any dispatch entry, and a reference "
        "from the protocol test suite."
    ),
)
def check(project: Project) -> Iterator[Finding]:
    protocol = project.by_suffix("cluster/protocol.py")
    if protocol is None:
        return
    messages = [
        node
        for node in protocol.tree.body
        if isinstance(node, ast.ClassDef) and node.name.endswith("Message")
    ]
    if not messages:
        return

    dispatch_names: set[str] = set()
    for node in ast.walk(protocol.tree):
        if isinstance(node, ast.FunctionDef) and node.name == "decode_any":
            dispatch_names = _names_in(node)

    test_files = [
        parsed
        for parsed in project.files
        if parsed.relpath.rsplit("/", 1)[-1].startswith("test")
    ]
    tested_names: set[str] = set()
    for parsed in test_files:
        tested_names |= _names_in(parsed.tree)

    for cls in messages:
        methods = _method_names(cls)
        for arm in ("encode", "decode"):
            if arm not in methods:
                yield Finding(
                    rule=RULE,
                    severity="error",
                    path=protocol.relpath,
                    line=cls.lineno,
                    col=cls.col_offset + 1,
                    message=f"{cls.name} has no {arm}() arm",
                    symbol=f"{cls.name}.{arm}",
                )
        if dispatch_names and cls.name not in dispatch_names:
            yield Finding(
                rule=RULE,
                severity="error",
                path=protocol.relpath,
                line=cls.lineno,
                col=cls.col_offset + 1,
                message=f"{cls.name} is not dispatched by decode_any()",
                symbol=f"{cls.name}.decode_any",
            )
        if test_files and cls.name not in tested_names:
            yield Finding(
                rule=RULE,
                severity="error",
                path=protocol.relpath,
                line=cls.lineno,
                col=cls.col_offset + 1,
                message=(
                    f"{cls.name} is never referenced by any scanned test "
                    f"module (no round-trip/fuzz coverage)"
                ),
                symbol=f"{cls.name}.tested",
            )
