"""Rule: the allocation-free kernels must stay allocation-free.

PR 1 made the crack hot path allocation-free: the ``*_into`` /
``*_compress_batch_into`` kernels write into caller-owned scratch via
``out=`` ufuncs, and the ``keyspace/vectorized.py`` inner loops
(``_fill_chars``, ``_stratum_digits``) fill preallocated buffers.  A
stray ``bytes()``, comprehension, or ``.append`` in one of these
functions reintroduces a per-chunk allocation that benchmarks catch
only as an unexplained regression.  This rule flags, inside hot
functions:

* calls to the allocating constructors ``bytes``/``bytearray``/
  ``list``/``dict``/``set``;
* list/set/dict comprehensions and generator expressions;
* ``.append(...)`` / ``.extend(...)`` calls.

Hot functions are any ``def *_into(...)`` anywhere in the scan set,
plus the named inner-loop helpers of ``keyspace/vectorized.py``.
Genuinely cold fallback branches inside a hot function carry a
``# repro: allow(hot-path-allocation)`` comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ParsedFile, Project, register

RULE = "hot-path-allocation"

ALLOCATING_BUILTINS = frozenset({"bytes", "bytearray", "list", "dict", "set"})
GROWING_METHODS = frozenset({"append", "extend"})

#: Inner-loop helpers of the vectorized keyspace materialiser.
VECTORIZED_HOT = frozenset({"_fill_chars", "_stratum_digits"})


def _hot_functions(parsed: ParsedFile) -> Iterator[ast.FunctionDef]:
    in_vectorized = parsed.relpath.endswith("keyspace/vectorized.py")
    for node in ast.walk(parsed.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name.endswith("_into"):
            yield node
        elif in_vectorized and node.name in VECTORIZED_HOT:
            yield node


def _violations(func: ast.FunctionDef) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(func):
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            yield node, "comprehension allocates a fresh container"
        elif isinstance(node, ast.GeneratorExp):
            yield node, "generator expression allocates per element"
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ALLOCATING_BUILTINS
            ):
                yield node, f"{node.func.id}() allocates"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in GROWING_METHODS
            ):
                yield node, f".{node.func.attr}() grows a container"


@register(
    RULE,
    severity="warning",
    doc=(
        "No bytes()/list()/dict()/set(), comprehensions, or "
        ".append/.extend inside *_into kernels and the "
        "keyspace/vectorized.py inner loops."
    ),
)
def check(project: Project) -> Iterator[Finding]:
    for parsed in project.files:
        for func in _hot_functions(parsed):
            for node, why in _violations(func):
                yield Finding(
                    rule=RULE,
                    severity="warning",
                    path=parsed.relpath,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=f"allocation in hot function {func.name}(): {why}",
                    symbol=f"{func.name}:{why}",
                )
