"""Rule: metric names flow through the canonical registry, both ways.

Every metric the code records must be a constant in
``repro.obs.schema.MetricNames`` — a raw string literal passed to
``Recorder.counter(...)`` & friends is schema drift the runtime
validator only catches after the run.  Symmetrically, a registry
constant nothing references is a dead name that silently rots.

The registry is read from the scanned ``obs/schema.py`` when the scan
set contains one (so fixture projects can carry their own); otherwise
it falls back to importing :mod:`repro.obs.schema`.  Test/benchmark/
example trees are exempt from the literal check — toy metric names are
legitimate there — and the dead-name check only runs when the registry
file itself is in the scan set.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ParsedFile, Project, register

RULE = "metric-registry"

#: Recorder methods whose first positional argument is a metric name.
RECORDER_METHODS = frozenset(
    {
        "counter",
        "gauge",
        "event",
        "span",
        "span_record",
        "counter_value",
        "counter_total",
        "gauges_named",
        "events_named",
    }
)

_EXEMPT_PARTS = ("tests", "benchmarks", "examples")


def _registry_from_ast(schema_file: ParsedFile) -> tuple[set[str], dict[str, int]]:
    """(names, constant->line) from a MetricNames class definition."""
    names: set[str] = set()
    lines: dict[str, int] = {}
    for node in ast.walk(schema_file.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "MetricNames"):
            continue
        for stmt in node.body:
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                names.add(value.value)
                lines[target.id] = stmt.lineno
    return names, lines


def _registry_names(project: Project) -> tuple[set[str], ParsedFile | None, dict[str, int]]:
    schema_file = project.by_suffix("obs/schema.py")
    if schema_file is not None:
        names, lines = _registry_from_ast(schema_file)
        return names, schema_file, lines
    from repro.obs.schema import ALL_METRIC_NAMES

    return set(ALL_METRIC_NAMES), None, {}


def _is_exempt(parsed: ParsedFile) -> bool:
    parts = parsed.relpath.split("/")
    return any(part in _EXEMPT_PARTS for part in parts)


@register(
    RULE,
    severity="error",
    doc=(
        "String literals passed to Recorder.counter/gauge/event/span "
        "must be registered in obs/schema.py MetricNames, and every "
        "registered constant must be referenced somewhere."
    ),
)
def check(project: Project) -> Iterator[Finding]:
    registry, schema_file, constant_lines = _registry_names(project)
    if not registry:
        return
    referenced_constants: set[str] = set()
    for parsed in project.files:
        for node in ast.walk(parsed.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "MetricNames"
            ):
                referenced_constants.add(node.attr)
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in RECORDER_METHODS
            ):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            if _is_exempt(parsed):
                continue
            if first.value in registry:
                continue
            yield Finding(
                rule=RULE,
                severity="error",
                path=parsed.relpath,
                line=first.lineno,
                col=first.col_offset + 1,
                message=(
                    f"metric name {first.value!r} passed to "
                    f".{func.attr}() is not in the MetricNames registry "
                    f"(obs/schema.py)"
                ),
                symbol=f"literal:{first.value}",
            )
    if schema_file is None:
        return
    for constant, lineno in sorted(constant_lines.items()):
        if constant in referenced_constants:
            continue
        yield Finding(
            rule=RULE,
            severity="error",
            path=schema_file.relpath,
            line=lineno,
            col=1,
            message=(
                f"MetricNames.{constant} is registered but never "
                f"referenced anywhere in the scanned tree (dead metric)"
            ),
            symbol=f"dead:{constant}",
        )
