"""``python -m repro.checks`` — run the static-analysis suite."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
