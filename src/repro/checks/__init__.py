"""Domain-aware static analysis for the repro codebase (``repro check``).

The paper's cluster design concentrates correctness risk in a few
places — shared mutable state across threads, a hand-rolled wire
protocol, allocation-free kernels — and this package turns those
invariants into machine-checked rules.  See docs/STATIC_ANALYSIS.md for
the rule catalog.
"""

from .engine import (
    BASELINE_SCHEMA,
    REPORT_SCHEMA,
    Finding,
    Project,
    Rule,
    all_rules,
    apply_baseline,
    load_baseline,
    load_project,
    register,
    report_document,
    run_checks,
    save_baseline,
)

__all__ = [
    "BASELINE_SCHEMA",
    "REPORT_SCHEMA",
    "Finding",
    "Project",
    "Rule",
    "all_rules",
    "apply_baseline",
    "load_baseline",
    "load_project",
    "register",
    "report_document",
    "run_checks",
    "save_baseline",
]
