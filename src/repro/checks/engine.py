"""Core engine for the ``repro check`` static-analysis suite.

The engine is deliberately small: it parses every python file under the
scan roots once, hands the parsed project to each registered rule, and
collects :class:`Finding` objects.  Policy — suppression comments, the
committed baseline, strictness — lives here so individual rules stay
pure functions from source to findings.

Output and baseline documents are versioned JSON, mirroring the
``repro-metrics``/``repro-job`` schema discipline used elsewhere in the
repo.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Schema tag for the machine-readable report emitted by ``--json``.
REPORT_SCHEMA = "repro-checks/v1"

#: Schema tag for the committed baseline of grandfathered findings.
BASELINE_SCHEMA = "repro-checks-baseline/v1"

#: Severities in increasing order of badness.
SEVERITIES = ("info", "warning", "error")

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([a-z0-9_,\- ]+)\)")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule: str
    severity: str
    path: str  # project-root-relative, posix separators
    line: int
    col: int
    message: str
    symbol: str = ""  # e.g. "ClassName.attr" — stable across line moves

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Line/column are deliberately excluded so unrelated edits above a
        grandfathered finding do not un-baseline it.
        """
        raw = "\x1f".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_document(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.rule}] {self.message}"
        )


@dataclass
class ParsedFile:
    """A parsed source file plus the per-line suppression map."""

    path: Path  # absolute
    relpath: str  # project-root-relative, posix separators
    source: str
    tree: ast.Module
    #: line number -> set of rule names allowed on that line
    allows: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ParsedFile":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        allows: dict[int, set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _ALLOW_RE.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                allows[lineno] = {r for r in rules if r}
        return cls(
            path=path,
            relpath=path.relative_to(root).as_posix(),
            source=source,
            tree=tree,
            allows=allows,
        )

    def allowed(self, rule: str, line: int) -> bool:
        """Is ``rule`` suppressed on ``line``?

        A ``# repro: allow(rule)`` comment suppresses findings on its
        own line, and — when placed on a ``def``/``class`` header — on
        every line of that definition's body.
        """
        direct = self.allows.get(line, ())
        if rule in direct or "all" in direct:
            return True
        for header_line, rules in self.allows.items():
            if rule not in rules and "all" not in rules:
                continue
            scope = self._scope_at(header_line)
            if scope is not None and scope[0] <= line <= scope[1]:
                return True
        return False

    def _scope_at(self, lineno: int) -> tuple[int, int] | None:
        """(first, last) line of a def/class whose header is at lineno."""
        for node in ast.walk(self.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and node.lineno == lineno:
                return node.lineno, node.end_lineno or node.lineno
        return None


@dataclass
class Project:
    """Everything a rule may look at: the parsed files and the root."""

    root: Path
    files: list[ParsedFile]

    def by_suffix(self, suffix: str) -> ParsedFile | None:
        """First file whose relpath ends with ``suffix``, if any."""
        for parsed in self.files:
            if parsed.relpath.endswith(suffix):
                return parsed
        return None


#: A rule is a callable from Project to an iterable of findings.
RuleFn = Callable[[Project], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    name: str
    severity: str
    doc: str
    fn: RuleFn


_REGISTRY: dict[str, Rule] = {}


def register(name: str, *, severity: str = "error", doc: str = "") -> Callable[[RuleFn], RuleFn]:
    """Decorator adding a rule to the global registry."""
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}; expected one of {SEVERITIES}")

    def wrap(fn: RuleFn) -> RuleFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate rule name {name!r}")
        _REGISTRY[name] = Rule(name=name, severity=severity, doc=doc or fn.__doc__ or "", fn=fn)
        return fn

    return wrap


def all_rules() -> list[Rule]:
    """Registered rules in registration order (imports rule modules)."""
    from . import rules as _rules  # noqa: F401  (side effect: registration)

    return list(_REGISTRY.values())


def get_rule(name: str) -> Rule:
    rules = {rule.name: rule for rule in all_rules()}
    try:
        return rules[name]
    except KeyError:
        raise ValueError(
            f"unknown rule {name!r}; available: {sorted(rules)}"
        ) from None


def collect_files(root: Path, paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def load_project(root: Path, paths: Iterable[Path] | None = None) -> Project:
    """Parse every python file under ``paths`` (default: root itself)."""
    root = root.resolve()
    scan = [p.resolve() for p in paths] if paths else [root]
    files = []
    for path in collect_files(root, scan):
        files.append(ParsedFile.parse(path, root))
    return Project(root=root, files=files)


def run_checks(
    project: Project,
    rule_names: Iterable[str] | None = None,
) -> list[Finding]:
    """Run rules over the project, honouring inline suppressions."""
    selected = all_rules()
    if rule_names is not None:
        wanted = list(rule_names)
        selected = [get_rule(name) for name in wanted]
    by_rel = {parsed.relpath: parsed for parsed in project.files}
    findings: list[Finding] = []
    for rule in selected:
        for finding in rule.fn(project):
            parsed = by_rel.get(finding.path)
            if parsed is not None and parsed.allowed(finding.rule, finding.line):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# ---------------------------------------------------------------------------
# Baseline


def load_baseline(path: Path) -> set[str]:
    """Fingerprints grandfathered by a committed baseline file."""
    if not path.exists():
        return set()
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BASELINE_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    return {entry["fingerprint"] for entry in document.get("findings", [])}


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    document = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {
                "fingerprint": finding.fingerprint(),
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
            for finding in sorted(
                findings, key=lambda f: (f.path, f.line, f.rule)
            )
        ],
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Iterable[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (fresh, grandfathered)."""
    fresh: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        (old if finding.fingerprint() in baseline else fresh).append(finding)
    return fresh, old


# ---------------------------------------------------------------------------
# Report


def report_document(
    findings: list[Finding],
    grandfathered: list[Finding],
    *,
    rules: list[Rule],
    files_scanned: int,
) -> dict:
    return {
        "schema": REPORT_SCHEMA,
        "rules": [
            {"name": rule.name, "severity": rule.severity, "doc": rule.doc.strip()}
            for rule in rules
        ],
        "files_scanned": files_scanned,
        "findings": [finding.to_document() for finding in findings],
        "grandfathered": [finding.to_document() for finding in grandfathered],
        "counts": {
            "total": len(findings),
            "error": sum(1 for f in findings if f.severity == "error"),
            "warning": sum(1 for f in findings if f.severity == "warning"),
            "info": sum(1 for f in findings if f.severity == "info"),
        },
    }
