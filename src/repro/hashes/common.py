"""Shared 32-bit arithmetic for the hash substrate.

The compress functions are written against an *operations object* rather
than raw Python operators.  The default :class:`IntOps` computes on plain
integers (masked to 32 bits, as hardware registers wrap for free); the
instruction tracer of :mod:`repro.kernels.trace` substitutes an object that
counts every ADD / logical / shift it performs — the software analogue of
running ``cuobjdump -sass`` over the compiled kernel (Section V-B of the
paper).
"""

from __future__ import annotations

import numpy as np

#: 32-bit register mask.
MASK32 = 0xFFFFFFFF


def rotl32(x: int, n: int) -> int:
    """Rotate a 32-bit integer left by ``n`` bits (plain-int helper)."""
    n &= 31
    return ((x << n) | (x >> (32 - n))) & MASK32


def rotr32(x: int, n: int) -> int:
    """Rotate a 32-bit integer right by ``n`` bits (plain-int helper)."""
    n &= 31
    return ((x >> n) | (x << (32 - n))) & MASK32


class IntOps:
    """Plain 32-bit integer semantics.

    Each method corresponds to one of the instruction classes the paper
    accounts for (Tables II-VI):

    * :meth:`add` — 32-bit integer ADD;
    * :meth:`band` / :meth:`bor` / :meth:`bxor` — 32-bit bitwise logical;
    * :meth:`bnot` — 32-bit NOT (merged with other instructions by the real
      compiler; traced separately so Table III can be reproduced);
    * :meth:`rotl` — the *bit rotate* idiom ``(x << n) + (x >> (32 - n))``,
      which the CUDA compiler lowers differently per compute capability.

    The masking performed here models register wrap-around and is free on
    hardware, hence never counted by the tracer.
    """

    @staticmethod
    def const(value: int):
        """Materialize a compile-time constant (free; hook for tracers)."""
        return value & MASK32

    @staticmethod
    def add(a, b):
        return (a + b) & MASK32

    @staticmethod
    def band(a, b):
        return a & b

    @staticmethod
    def bor(a, b):
        return a | b

    @staticmethod
    def bxor(a, b):
        return a ^ b

    @staticmethod
    def bnot(a):
        return a ^ MASK32

    @staticmethod
    def shl(a, n: int):
        return (a << n) & MASK32

    @staticmethod
    def shr(a, n: int):
        return a >> n

    @classmethod
    def rotl(cls, x, n: int):
        """Left rotation via the two-shift-plus-add source idiom."""
        n &= 31
        if n == 0:
            return x
        return cls.add(cls.shl(x, n), cls.shr(x, 32 - n))


def words_from_bytes_le(data: bytes) -> list[int]:
    """Split bytes into little-endian 32-bit words (MD5 convention)."""
    if len(data) % 4:
        raise ValueError("byte length must be a multiple of 4")
    return [int.from_bytes(data[i : i + 4], "little") for i in range(0, len(data), 4)]


def words_from_bytes_be(data: bytes) -> list[int]:
    """Split bytes into big-endian 32-bit words (SHA convention)."""
    if len(data) % 4:
        raise ValueError("byte length must be a multiple of 4")
    return [int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)]


def bytes_from_words_le(words) -> bytes:
    """Concatenate 32-bit words little-endian."""
    return b"".join(int(w).to_bytes(4, "little") for w in words)


def bytes_from_words_be(words) -> bytes:
    """Concatenate 32-bit words big-endian."""
    return b"".join(int(w).to_bytes(4, "big") for w in words)


# ---------------------------------------------------------------------- #
# NumPy lane-parallel helpers (the "warp" primitives)
# ---------------------------------------------------------------------- #


def np_rotl32(x: np.ndarray, n: int) -> np.ndarray:
    """Lane-wise left rotation on a ``uint32`` array."""
    n &= 31
    if n == 0:
        return x
    return (x << np.uint32(n)) | (x >> np.uint32(32 - n))


def np_rotr32(x: np.ndarray, n: int) -> np.ndarray:
    """Lane-wise right rotation on a ``uint32`` array."""
    return np_rotl32(x, 32 - (n & 31))


def np_rotl32_into(x: np.ndarray, n: int, tmp: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Lane-wise left rotation written into preallocated storage.

    ``out`` may alias ``x``; ``tmp`` must alias neither.  This is the
    ``out=``-discipline counterpart of :func:`np_rotl32` used by the
    allocation-free compress variants.
    """
    n &= 31
    if n == 0:
        if out is not x:
            np.copyto(out, x)
        return out
    np.left_shift(x, np.uint32(n), out=tmp)
    np.right_shift(x, np.uint32(32 - n), out=out)
    np.bitwise_or(out, tmp, out=out)
    return out


def np_rotr32_into(x: np.ndarray, n: int, tmp: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Lane-wise right rotation written into preallocated storage."""
    return np_rotl32_into(x, 32 - (n & 31), tmp, out)


class CompressScratch:
    """Preallocated uint32 temporaries for the allocation-free hot path.

    One scratch serves any batch up to ``capacity`` lanes; the per-batch
    arrays handed out by :meth:`registers` / :meth:`temps` /
    :meth:`schedule` are *views* into the same storage, so repeated calls
    to a ``*_compress_batch_into`` function allocate nothing at steady
    state — every one of the 48/64/80 steps runs through ``np.add`` /
    ``np.bitwise_*`` / shifts with ``out=``.

    The returned register arrays are overwritten by the next compress call
    on the same scratch: callers must consume (or copy) them first.
    """

    def __init__(
        self, capacity: int, n_registers: int, n_temps: int, n_schedule: int = 16
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._registers = [np.empty(capacity, dtype=np.uint32) for _ in range(n_registers)]
        self._carry = [np.empty(capacity, dtype=np.uint32) for _ in range(n_registers)]
        self._temps = [np.empty(capacity, dtype=np.uint32) for _ in range(n_temps)]
        self._schedule = np.empty((n_schedule, capacity), dtype=np.uint32)

    def _check(self, batch: int) -> None:
        if batch > self.capacity:
            raise ValueError(f"batch of {batch} exceeds scratch capacity {self.capacity}")

    def registers(self, batch: int) -> list:
        self._check(batch)
        return [r[:batch] for r in self._registers]

    def carry(self, batch: int) -> list:
        """Snapshot storage for a caller-provided chaining state."""
        self._check(batch)
        return [c[:batch] for c in self._carry]

    def temps(self, batch: int) -> list:
        self._check(batch)
        return [t[:batch] for t in self._temps]

    def schedule(self, batch: int) -> np.ndarray:
        """``(n_schedule, batch)`` message-word storage (contiguous rows)."""
        self._check(batch)
        return self._schedule[:, :batch]
