"""Vectorized SHA1: one candidate per NumPy lane.

Uses a rolling 16-word message-schedule window so a batch of ``B``
candidates needs only ``16 B`` words of schedule storage — the same
register-budget discipline the paper applies on the GPU ("our approach
requires a minimal amount of memory, less than 1 Kbyte").
"""

from __future__ import annotations

import numpy as np

from repro.hashes.common import np_rotl32
from repro.hashes.sha1 import SHA1_INIT, SHA1_K

_K = tuple(np.uint32(k) for k in SHA1_K)
_INIT = tuple(np.uint32(x) for x in SHA1_INIT)


def sha1_round_function_np(step: int, b: np.ndarray, c: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Lane-wise nonlinear function of a step (Ch, Parity, Maj, Parity)."""
    if step < 20:
        return (b & c) | (~b & d)
    if step < 40:
        return b ^ c ^ d
    if step < 60:
        return (b & c) | (b & d) | (c & d)
    return b ^ c ^ d


def sha1_schedule_word(window: list, t: int) -> np.ndarray:
    """Next schedule word from a rolling 16-entry window (t >= 16)."""
    w = np_rotl32(
        window[(t - 3) % 16] ^ window[(t - 8) % 16] ^ window[(t - 14) % 16] ^ window[t % 16],
        1,
    )
    window[t % 16] = w
    return w


def sha1_step_np(step: int, state, w_t: np.ndarray) -> tuple:
    """One SHA1 step over a whole batch."""
    a, b, c, d, e = state
    f = sha1_round_function_np(step, b, c, d)
    temp = np_rotl32(a, 5) + f + e + _K[step // 20] + w_t
    return (temp, a, np_rotl32(b, 30), c, d)


def sha1_compress_batch(blocks: np.ndarray, state: tuple | None = None) -> tuple:
    """Compress ``(batch, 16)`` blocks; returns the five register arrays.

    ``state`` chains multi-block messages whose earlier blocks are shared
    by the whole batch (the cached-midstate long-key path).
    """
    _check_blocks(blocks)
    window = [np.ascontiguousarray(blocks[:, i]) for i in range(16)]
    if state is None:
        state = tuple(np.full(blocks.shape[0], x, dtype=np.uint32) for x in _INIT)
    s = state
    for step in range(80):
        w_t = window[step] if step < 16 else sha1_schedule_word(window, step)
        s = sha1_step_np(step, s, w_t)
    return tuple((x + y).astype(np.uint32, copy=False) for x, y in zip(state, s))


def sha1_batch(blocks: np.ndarray) -> np.ndarray:
    """SHA1 digests of a batch of single-block messages.

    Returns a ``(batch, 5)`` uint32 array of digest words (big-endian
    serialization yields the standard digest bytes).
    """
    return np.stack(sha1_compress_batch(blocks), axis=1)


def sha1_batch_hex(blocks: np.ndarray) -> list[str]:
    """Hex digests for a batch (test/debug convenience)."""
    words = sha1_batch(blocks)
    return [row.astype(">u4").tobytes().hex() for row in words]


def _check_blocks(blocks: np.ndarray) -> None:
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        raise ValueError("blocks must have shape (batch, 16)")
    if blocks.dtype != np.uint32:
        raise TypeError("blocks must be uint32")
