"""Vectorized SHA1: one candidate per NumPy lane.

Uses a rolling 16-word message-schedule window so a batch of ``B``
candidates needs only ``16 B`` words of schedule storage — the same
register-budget discipline the paper applies on the GPU ("our approach
requires a minimal amount of memory, less than 1 Kbyte").
"""

from __future__ import annotations

import numpy as np

from repro.hashes.common import CompressScratch, np_rotl32, np_rotl32_into
from repro.hashes.sha1 import SHA1_INIT, SHA1_K

_K = tuple(np.uint32(k) for k in SHA1_K)
_INIT = tuple(np.uint32(x) for x in SHA1_INIT)


def sha1_round_function_np(step: int, b: np.ndarray, c: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Lane-wise nonlinear function of a step (Ch, Parity, Maj, Parity)."""
    if step < 20:
        return (b & c) | (~b & d)
    if step < 40:
        return b ^ c ^ d
    if step < 60:
        return (b & c) | (b & d) | (c & d)
    return b ^ c ^ d


def sha1_schedule_word(window: list, t: int) -> np.ndarray:
    """Next schedule word from a rolling 16-entry window (t >= 16)."""
    w = np_rotl32(
        window[(t - 3) % 16] ^ window[(t - 8) % 16] ^ window[(t - 14) % 16] ^ window[t % 16],
        1,
    )
    window[t % 16] = w
    return w


def sha1_step_np(step: int, state, w_t: np.ndarray) -> tuple:
    """One SHA1 step over a whole batch."""
    a, b, c, d, e = state
    f = sha1_round_function_np(step, b, c, d)
    temp = np_rotl32(a, 5) + f + e + _K[step // 20] + w_t
    return (temp, a, np_rotl32(b, 30), c, d)


def sha1_compress_batch(blocks: np.ndarray, state: tuple | None = None) -> tuple:
    """Compress ``(batch, 16)`` blocks; returns the five register arrays.

    ``state`` chains multi-block messages whose earlier blocks are shared
    by the whole batch (the cached-midstate long-key path).
    """
    _check_blocks(blocks)
    window = [np.ascontiguousarray(blocks[:, i]) for i in range(16)]
    if state is None:
        state = tuple(np.full(blocks.shape[0], x, dtype=np.uint32) for x in _INIT)
    s = state
    for step in range(80):
        w_t = window[step] if step < 16 else sha1_schedule_word(window, step)
        s = sha1_step_np(step, s, w_t)
    return tuple((x + y).astype(np.uint32, copy=False) for x, y in zip(state, s))


class SHA1Scratch(CompressScratch):
    """Preallocated temporaries for :func:`sha1_compress_batch_into`."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, n_registers=5, n_temps=3, n_schedule=16)


def sha1_compress_batch_into(
    blocks: np.ndarray, scratch: SHA1Scratch, state: tuple | None = None
) -> tuple:
    """Allocation-free :func:`sha1_compress_batch` (``out=`` discipline).

    The rolling 16-word schedule window lives in the scratch, so repeated
    calls allocate nothing.  The returned register views are invalidated
    by the next call on the same scratch.
    """
    _check_blocks(blocks)
    batch = blocks.shape[0]
    a, b, c, d, e = scratch.registers(batch)
    f, tmp, tmp2 = scratch.temps(batch)
    window = scratch.schedule(batch)
    for i in range(16):
        np.copyto(window[i], blocks[:, i])
    if state is None:
        carry = _INIT
        for reg, init in zip((a, b, c, d, e), _INIT):
            reg.fill(init)
    else:
        carry = scratch.carry(batch)
        for snap, given in zip(carry, state):
            np.copyto(snap, given)
        for reg, snap in zip((a, b, c, d, e), carry):
            np.copyto(reg, snap)
    for step in range(80):
        if step < 16:
            w_t = window[step]
        else:
            # w[t] = rotl1(w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t]), in place.
            w_t = window[step % 16]
            np.bitwise_xor(w_t, window[(step - 3) % 16], out=w_t)
            np.bitwise_xor(w_t, window[(step - 8) % 16], out=w_t)
            np.bitwise_xor(w_t, window[(step - 14) % 16], out=w_t)
            np_rotl32_into(w_t, 1, tmp, w_t)
        if step < 20:  # Ch
            np.bitwise_and(b, c, out=f)
            np.bitwise_not(b, out=tmp)
            np.bitwise_and(tmp, d, out=tmp)
            np.bitwise_or(f, tmp, out=f)
        elif 40 <= step < 60:  # Maj
            np.bitwise_and(b, c, out=f)
            np.bitwise_and(b, d, out=tmp)
            np.bitwise_or(f, tmp, out=f)
            np.bitwise_and(c, d, out=tmp)
            np.bitwise_or(f, tmp, out=f)
        else:  # Parity
            np.bitwise_xor(b, c, out=f)
            np.bitwise_xor(f, d, out=f)
        # temp = rotl5(a) + f + e + K + w_t; e's storage becomes the new a.
        np.add(e, f, out=e)
        np.add(e, _K[step // 20], out=e)
        np.add(e, w_t, out=e)
        np_rotl32_into(a, 5, tmp, tmp2)
        np.add(e, tmp2, out=e)
        np_rotl32_into(b, 30, tmp, b)
        a, b, c, d, e = e, a, b, c, d
    for reg, init in zip((a, b, c, d, e), carry):
        np.add(reg, init, out=reg)
    return (a, b, c, d, e)


def sha1_batch(blocks: np.ndarray) -> np.ndarray:
    """SHA1 digests of a batch of single-block messages.

    Returns a ``(batch, 5)`` uint32 array of digest words (big-endian
    serialization yields the standard digest bytes).
    """
    return np.stack(sha1_compress_batch(blocks), axis=1)


def sha1_batch_hex(blocks: np.ndarray) -> list[str]:
    """Hex digests for a batch (test/debug convenience)."""
    words = sha1_batch(blocks)
    return [row.astype(">u4").tobytes().hex() for row in words]


def _check_blocks(blocks: np.ndarray) -> None:
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        raise ValueError("blocks must have shape (batch, 16)")
    if blocks.dtype != np.uint32:
        raise TypeError("blocks must be uint32")
