"""Digest reversal and early-exit search kernels (Section V of the paper).

The optimization originally introduced by the BarsWF cracker, worth ~1.25x:
a candidate MD5 lookup can proceed *from the string forward* or *from the
target hash backward*.  Message word 0 (the first 4 characters of the packed
key) is consumed at steps 0, 19, 41 and 48 — never in the last 15 steps — so
if a thread iterates mutating only word 0 (the prefix-fastest enumeration,
mapping (4)):

1. **Reverse once**: starting from the target digest, invert steps 63..49.
   This needs only the *fixed* message words and yields the register state
   the true key must exhibit after step 48.
2. **Forward 49 steps per candidate** instead of 64, and compare with the
   reverted state.
3. **Early exit, three more steps**: the component ``a`` of the reverted
   state was produced by step 45, so candidates can be rejected right after
   step 45; only the (2^-32-probable) survivors run the remaining steps and
   a full digest verification.

SHA1 admits the weaker form: the final digest directly reveals the step
outputs ``a76..a80`` (because the last four steps merely shift registers),
so candidates are filtered right after step 75 — a four-step saving — and
survivors are fully verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hashes.common import MASK32, rotr32
from repro.hashes.md5 import (
    MD5_INIT,
    MD5_SHIFTS,
    MD5_T,
    md5_digest_to_state,
    md5_message_index,
    md5_round_function,
)
from repro.hashes.sha1 import SHA1_INIT, sha1_digest_to_state
from repro.hashes.vec_md5 import md5_batch, md5_step_np
from repro.hashes.vec_sha1 import (
    sha1_batch,
    sha1_schedule_word,
    sha1_step_np,
)

#: Forward steps executed by the optimized MD5 kernel before the early test.
MD5_EARLY_STEPS = 46
#: Forward steps executed with reversal but without the early-exit trick.
MD5_REVERSED_STEPS = 49
#: Forward steps executed by the optimized SHA1 kernel before the early test.
SHA1_EARLY_STEPS = 76


def md5_unstep(step: int, state_after: tuple, word: int) -> tuple:
    """Invert one MD5 step: recover the register state *before* the step.

    ``word`` is the message word ``M[g(step)]`` the step consumed; only the
    fixed words are ever needed because reversal stops at step 49.
    """
    a1, b1, c1, d1 = state_after
    b, c, d = c1, d1, a1
    t = rotr32((b1 - b) & MASK32, MD5_SHIFTS[step])
    f = md5_round_function(step, b, c, d)
    a = (t - f - word - MD5_T[step]) & MASK32
    return (a, b, c, d)


def md5_reverse_tail(digest: bytes, template: Sequence[int], steps: int = 15) -> tuple:
    """Revert the last *steps* MD5 steps starting from a target digest.

    Returns the register state before step ``64 - steps``; with the default
    15 steps, that is the state after step 48 that every true preimage must
    reach.  ``template`` provides the fixed message words (word 0 is never
    consulted when ``steps <= 15``).
    """
    if not 1 <= steps <= 15:
        raise ValueError("only the last 15 steps are independent of word 0")
    final = md5_digest_to_state(digest)
    state = tuple((f - i) & MASK32 for f, i in zip(final, MD5_INIT))
    for step in range(63, 63 - steps, -1):
        g = md5_message_index(step)
        assert g != 0, "reversal must not consume the varying word"
        state = md5_unstep(step, state, int(template[g]))
    return state


@dataclass(frozen=True)
class MD5ReversedTarget:
    """A compiled MD5 search target: fixed words + reverted register state.

    This is the (well under 1 Kbyte) payload the paper passes through GPU
    constant memory: the target digest, the common message substring, and
    the state obtained by reverting the hash 15 steps.
    """

    #: The full 16-word template block; word 0 is the per-candidate slot.
    template: tuple
    #: Register state after step 48 that the true preimage must produce.
    reversed_state: tuple
    #: Original digest (survivors get a full verification against it).
    digest: bytes

    @classmethod
    def from_digest(cls, digest: bytes, template: Sequence[int]) -> "MD5ReversedTarget":
        """Build a target from a digest and the batch's fixed message words."""
        if len(template) != 16:
            raise ValueError("template must hold 16 message words")
        reversed_state = md5_reverse_tail(digest, template)
        return cls(tuple(int(w) & MASK32 for w in template), reversed_state, bytes(digest))


def md5_search_block(first_words: np.ndarray, target: MD5ReversedTarget) -> np.ndarray:
    """Scan candidates differing only in message word 0 (optimized kernel).

    Parameters
    ----------
    first_words:
        ``(batch,)`` uint32 array: candidate values for message word 0.
    target:
        Compiled target from :meth:`MD5ReversedTarget.from_digest`.

    Returns
    -------
    Sorted ``int64`` array of lane indices whose full MD5 digest equals the
    target digest.  The hot path runs :data:`MD5_EARLY_STEPS` (46) of the 64
    steps; only lanes passing the step-45 register test are fully verified.
    """
    first_words = _check_first_words(first_words)
    words = _md5_word_source(first_words, target.template)
    state = tuple(
        np.full(first_words.shape[0], np.uint32(x), dtype=np.uint32) for x in MD5_INIT
    )
    for step in range(MD5_EARLY_STEPS):
        state = md5_step_np(step, state, words)
    # state.b now holds the output of step 45, which must equal component
    # ``a`` of the reverted state for any true preimage.
    mask = state[1] == np.uint32(target.reversed_state[0])
    survivors = np.flatnonzero(mask)
    if survivors.size == 0:
        return survivors
    return survivors[_md5_verify(first_words[survivors], target)]


def md5_search_block_multi(
    first_words: np.ndarray, targets: Sequence[MD5ReversedTarget]
) -> list[tuple[int, int]]:
    """Scan one candidate batch against *many* digests in one forward pass.

    The auditing-session optimization: the 46 forward steps depend only on
    the candidates (all targets share the template words), while each
    target contributes just one reverted-register comparison.  Testing
    ``T`` digests therefore costs one hash pass plus ``T`` lane-wise
    compares instead of ``T`` hash passes.

    Returns sorted ``(lane, target_index)`` pairs of exact matches.  All
    targets must share the same fixed message words (same key length and
    salt) — enforced by comparing their templates.
    """
    if not targets:
        return []
    first_words = _check_first_words(first_words)
    template = targets[0].template
    for t in targets[1:]:
        if t.template[1:] != template[1:]:
            raise ValueError("multi-target search requires identical fixed words")
    words = _md5_word_source(first_words, template)
    state = tuple(
        np.full(first_words.shape[0], np.uint32(x), dtype=np.uint32) for x in MD5_INIT
    )
    for step in range(MD5_EARLY_STEPS):
        state = md5_step_np(step, state, words)
    step45_out = state[1]
    matches: list[tuple[int, int]] = []
    for t_idx, target in enumerate(targets):
        survivors = np.flatnonzero(step45_out == np.uint32(target.reversed_state[0]))
        if survivors.size == 0:
            continue
        keep = _md5_verify(first_words[survivors], target)
        matches.extend((int(lane), t_idx) for lane in survivors[keep])
    matches.sort()
    return matches


def md5_search_block_no_early_exit(
    first_words: np.ndarray, target: MD5ReversedTarget
) -> np.ndarray:
    """Reversed kernel without the early-exit trick (49 forward steps).

    Kept as the ablation baseline for the three-step saving: compares the
    whole reverted state after step 48.
    """
    first_words = _check_first_words(first_words)
    words = _md5_word_source(first_words, target.template)
    state = tuple(
        np.full(first_words.shape[0], np.uint32(x), dtype=np.uint32) for x in MD5_INIT
    )
    for step in range(MD5_REVERSED_STEPS):
        state = md5_step_np(step, state, words)
    mask = np.ones(first_words.shape[0], dtype=bool)
    for got, want in zip(state, target.reversed_state):
        mask &= got == np.uint32(want)
    survivors = np.flatnonzero(mask)
    if survivors.size == 0:
        return survivors
    return survivors[_md5_verify(first_words[survivors], target)]


def md5_search_block_naive(first_words: np.ndarray, template: Sequence[int], digest: bytes) -> np.ndarray:
    """Unoptimized kernel: full 64-step hash of every candidate, then compare.

    The baseline the ~1.25x speedup is measured against (what Cryptohaze
    Multiforcer does, per the paper's comparison).
    """
    first_words = _check_first_words(first_words)
    blocks = _expand_blocks(first_words, template)
    got = md5_batch(blocks)
    want = np.array(md5_digest_to_state(digest), dtype=np.uint32)
    return np.flatnonzero((got == want[None, :]).all(axis=1))


# ---------------------------------------------------------------------- #
# SHA1
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class SHA1EarlyTarget:
    """A compiled SHA1 search target: fixed words + late step outputs.

    The digest equals ``init + (a80, a79, rotl30(a78), rotl30(a77),
    rotl30(a76))``, so the outputs of steps 75..79 are known in advance and
    the kernel can reject candidates right after step 75.
    """

    template: tuple
    #: Known step outputs ``(a76, a77, a78, a79, a80)``.
    step_outputs: tuple
    digest: bytes

    @classmethod
    def from_digest(cls, digest: bytes, template: Sequence[int]) -> "SHA1EarlyTarget":
        """Build a target from a digest and the batch's fixed message words."""
        if len(template) != 16:
            raise ValueError("template must hold 16 message words")
        a80, b, c, d, e = (
            (f - i) & MASK32 for f, i in zip(sha1_digest_to_state(digest), SHA1_INIT)
        )
        a79 = b
        a78 = rotr32(c, 30)
        a77 = rotr32(d, 30)
        a76 = rotr32(e, 30)
        return cls(
            tuple(int(w) & MASK32 for w in template),
            (a76, a77, a78, a79, a80),
            bytes(digest),
        )


def sha1_search_block(first_words: np.ndarray, target: SHA1EarlyTarget) -> np.ndarray:
    """Scan candidates differing only in message word 0 (optimized kernel).

    Runs :data:`SHA1_EARLY_STEPS` (76) of the 80 steps, filters on the known
    output of step 75, and fully verifies survivors.
    """
    first_words = _check_first_words(first_words)
    window: list = [first_words.copy()] + [np.uint32(w) for w in target.template[1:]]
    state = tuple(
        np.full(first_words.shape[0], np.uint32(x), dtype=np.uint32) for x in SHA1_INIT
    )
    for step in range(SHA1_EARLY_STEPS):
        w_t = window[step] if step < 16 else sha1_schedule_word(window, step)
        state = sha1_step_np(step, state, w_t)
    # state.a is the output of step 75, known from the digest.
    mask = state[0] == np.uint32(target.step_outputs[0])
    survivors = np.flatnonzero(mask)
    if survivors.size == 0:
        return survivors
    blocks = _expand_blocks(first_words[survivors], target.template)
    got = sha1_batch(blocks)
    want = np.array(sha1_digest_to_state(target.digest), dtype=np.uint32)
    keep = (got == want[None, :]).all(axis=1)
    return survivors[keep]


def sha1_search_block_naive(
    first_words: np.ndarray, template: Sequence[int], digest: bytes
) -> np.ndarray:
    """Unoptimized SHA1 kernel: full 80-step hash then digest compare."""
    first_words = _check_first_words(first_words)
    blocks = _expand_blocks(first_words, template)
    got = sha1_batch(blocks)
    want = np.array(sha1_digest_to_state(digest), dtype=np.uint32)
    return np.flatnonzero((got == want[None, :]).all(axis=1))


# ---------------------------------------------------------------------- #
# Internals
# ---------------------------------------------------------------------- #


def _md5_word_source(first_words: np.ndarray, template: Sequence[int]):
    """Word accessor: array for word 0, scalar constants otherwise."""
    scalars = [np.uint32(w) for w in template]

    def words(i: int):
        return first_words if i == 0 else scalars[i]

    return words


def _expand_blocks(first_words: np.ndarray, template: Sequence[int]) -> np.ndarray:
    """Materialize full (batch, 16) blocks from word-0 values + template."""
    blocks = np.tile(np.array(template, dtype=np.uint32), (first_words.shape[0], 1))
    blocks[:, 0] = first_words
    return blocks


def _md5_verify(first_words: np.ndarray, target: MD5ReversedTarget) -> np.ndarray:
    """Full 64-step verification of early-test survivors; returns a bool mask."""
    blocks = _expand_blocks(first_words, target.template)
    got = md5_batch(blocks)
    want = np.array(md5_digest_to_state(target.digest), dtype=np.uint32)
    return (got == want[None, :]).all(axis=1)


def _check_first_words(first_words: np.ndarray) -> np.ndarray:
    arr = np.asarray(first_words)
    if arr.ndim != 1:
        raise ValueError("first_words must be a 1-D array")
    if arr.dtype != np.uint32:
        raise TypeError("first_words must be uint32")
    return arr
