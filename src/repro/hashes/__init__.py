"""Hash-function substrate: MD5, SHA1, SHA256 built from scratch.

Every algorithm exists in two forms:

* a **scalar reference** (``md5``, ``sha1``, ``sha256``) written against a
  pluggable 32-bit operations object (:class:`repro.hashes.common.IntOps`),
  so the kernel-accounting tracer of :mod:`repro.kernels` can count the exact
  arithmetic executed by the *same* code the tests validate against
  ``hashlib``;
* a **vectorized engine** (``vec_md5``, ``vec_sha1``, ``vec_sha256``)
  operating on NumPy ``uint32`` arrays, one candidate per lane — the CPU
  stand-in for the paper's CUDA kernels, including the single-block
  fast path, the BarsWF digest-reversal trick (Section V), and lane-wise
  early-exit filtering.
"""

from repro.hashes.common import IntOps, MASK32, rotl32, rotr32
from repro.hashes.padding import (
    Endian,
    pack_single_block,
    pad_message,
    single_block_capacity,
)
from repro.hashes.md4 import MD4_INIT, md4_compress, md4_digest, md4_hex
from repro.hashes.vec_md4 import md4_batch, md4_batch_hex
from repro.hashes.midstate import MidstateTarget, crack_midstate
from repro.hashes.md5 import (
    MD5_INIT,
    md5_compress,
    md5_digest,
    md5_hex,
    md5_state_to_digest,
)
from repro.hashes.sha1 import SHA1_INIT, sha1_compress, sha1_digest, sha1_hex
from repro.hashes.sha256 import SHA256_INIT, sha256_compress, sha256_digest, sha256_hex
from repro.hashes.vec_md5 import md5_batch, md5_batch_hex
from repro.hashes.vec_sha1 import sha1_batch, sha1_batch_hex
from repro.hashes.vec_sha256 import sha256_batch, sha256_batch_hex
from repro.hashes.reversal import (
    MD5ReversedTarget,
    SHA1EarlyTarget,
    md5_reverse_tail,
    md5_search_block,
    sha1_search_block,
)

__all__ = [
    "MD4_INIT",
    "md4_compress",
    "md4_digest",
    "md4_hex",
    "md4_batch",
    "md4_batch_hex",
    "MidstateTarget",
    "crack_midstate",
    "IntOps",
    "MASK32",
    "rotl32",
    "rotr32",
    "Endian",
    "pad_message",
    "pack_single_block",
    "single_block_capacity",
    "MD5_INIT",
    "md5_compress",
    "md5_digest",
    "md5_hex",
    "md5_state_to_digest",
    "SHA1_INIT",
    "sha1_compress",
    "sha1_digest",
    "sha1_hex",
    "SHA256_INIT",
    "sha256_compress",
    "sha256_digest",
    "sha256_hex",
    "md5_batch",
    "md5_batch_hex",
    "sha1_batch",
    "sha1_batch_hex",
    "sha256_batch",
    "sha256_batch_hex",
    "MD5ReversedTarget",
    "SHA1EarlyTarget",
    "md5_reverse_tail",
    "md5_search_block",
    "sha1_search_block",
]
