"""Vectorized MD4: one candidate per NumPy lane (the NTLM engine core)."""

from __future__ import annotations

import numpy as np

from repro.hashes.common import CompressScratch, np_rotl32
from repro.hashes.md4 import MD4_INIT, MD4_K, MD4_SHIFTS, md4_message_index

_INIT = tuple(np.uint32(x) for x in MD4_INIT)
_K = tuple(np.uint32(k) for k in MD4_K)


def md4_round_function_np(step: int, x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Lane-wise nonlinear function of a step (F, G or H)."""
    if step < 16:
        return (x & y) | (~x & z)
    if step < 32:
        return (x & y) | (x & z) | (y & z)
    return x ^ y ^ z


def md4_step_np(step: int, state, words) -> tuple:
    """One MD4 step over a whole batch; ``words`` yields per-step operands."""
    a, b, c, d = state
    f = md4_round_function_np(step, b, c, d)
    t = a + f + words(md4_message_index(step))
    k = _K[step // 16]
    if k:
        t = t + k
    return (d, np_rotl32(t, MD4_SHIFTS[step]), b, c)


def md4_compress_batch(blocks: np.ndarray, state: tuple | None = None) -> tuple:
    """Compress ``(batch, 16)`` blocks; returns the four register arrays."""
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        raise ValueError("blocks must have shape (batch, 16)")
    if blocks.dtype != np.uint32:
        raise TypeError("blocks must be uint32")
    cols = [np.ascontiguousarray(blocks[:, i]) for i in range(16)]
    if state is None:
        state = tuple(np.full(blocks.shape[0], x, dtype=np.uint32) for x in _INIT)
    s = state
    for step in range(48):
        s = md4_step_np(step, s, lambda i: cols[i])
    return tuple((x + y).astype(np.uint32, copy=False) for x, y in zip(state, s))


class MD4Scratch(CompressScratch):
    """Preallocated temporaries for :func:`md4_compress_batch_into`."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, n_registers=4, n_temps=2, n_schedule=16)


def md4_compress_batch_into(
    blocks: np.ndarray, scratch: MD4Scratch, state: tuple | None = None
) -> tuple:
    """Allocation-free :func:`md4_compress_batch` (``out=`` discipline).

    The returned register views are invalidated by the next call on the
    same scratch.
    """
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        raise ValueError("blocks must have shape (batch, 16)")
    if blocks.dtype != np.uint32:
        raise TypeError("blocks must be uint32")
    batch = blocks.shape[0]
    a, b, c, d = scratch.registers(batch)
    f, tmp = scratch.temps(batch)
    cols = scratch.schedule(batch)
    for i in range(16):
        np.copyto(cols[i], blocks[:, i])
    if state is None:
        carry = _INIT
        for reg, init in zip((a, b, c, d), _INIT):
            reg.fill(init)
    else:
        carry = scratch.carry(batch)
        for snap, given in zip(carry, state):
            np.copyto(snap, given)
        for reg, snap in zip((a, b, c, d), carry):
            np.copyto(reg, snap)
    for step in range(48):
        if step < 16:  # F = (b & c) | (~b & d)
            np.bitwise_and(b, c, out=f)
            np.bitwise_not(b, out=tmp)
            np.bitwise_and(tmp, d, out=tmp)
            np.bitwise_or(f, tmp, out=f)
        elif step < 32:  # G = majority(b, c, d)
            np.bitwise_and(b, c, out=f)
            np.bitwise_and(b, d, out=tmp)
            np.bitwise_or(f, tmp, out=f)
            np.bitwise_and(c, d, out=tmp)
            np.bitwise_or(f, tmp, out=f)
        else:  # H = b ^ c ^ d
            np.bitwise_xor(b, c, out=f)
            np.bitwise_xor(f, d, out=f)
        # t = a + f + X[k] (+ K); a's storage becomes the new b.
        np.add(a, f, out=a)
        np.add(a, cols[md4_message_index(step)], out=a)
        k = _K[step // 16]
        if k:
            np.add(a, k, out=a)
        shift = np.uint32(MD4_SHIFTS[step])
        np.left_shift(a, shift, out=tmp)
        np.right_shift(a, np.uint32(32) - shift, out=a)
        np.bitwise_or(a, tmp, out=a)
        a, b, c, d = d, a, b, c
    for reg, init in zip((a, b, c, d), carry):
        np.add(reg, init, out=reg)
    return (a, b, c, d)


def md4_batch(blocks: np.ndarray) -> np.ndarray:
    """MD4 digests of a batch of single-block messages: ``(batch, 4)``."""
    return np.stack(md4_compress_batch(blocks), axis=1)


def md4_batch_hex(blocks: np.ndarray) -> list[str]:
    """Hex digests for a batch (test/debug convenience)."""
    return [row.astype("<u4").tobytes().hex() for row in md4_batch(blocks)]
