"""Digest reversal for MD4 (the NTLM fast path).

The meet-in-the-middle structure of Section V transfers to MD4 verbatim:
message word 0 is consumed at steps 0, 16 and 32 — never in the final 15
steps — so a batch whose candidates differ only in word 0 can revert the
target digest once (steps 47..33) and run only 33 forward steps per
candidate, with the early exit three steps earlier still.

For NTLM the varying unit is *two* password characters (UTF-16LE doubles
every byte), so aligned runs of ``N**2`` candidates share all fixed words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hashes.common import MASK32, rotr32
from repro.hashes.md4 import (
    MD4_INIT,
    MD4_K,
    MD4_SHIFTS,
    md4_digest_to_state,
    md4_message_index,
    md4_round_function,
)
from repro.hashes.vec_md4 import md4_batch, md4_step_np

#: Forward steps of the optimized MD4 kernel before the early test.
MD4_EARLY_STEPS = 30
#: Forward steps with reversal but no early exit.
MD4_REVERSED_STEPS = 33


def md4_unstep(step: int, state_after: tuple, word: int) -> tuple:
    """Invert one MD4 step: recover the register state before the step."""
    a1, b1, c1, d1 = state_after
    b, c, d = c1, d1, a1
    t = rotr32(b1, MD4_SHIFTS[step])
    f = md4_round_function(step, b, c, d)
    a = (t - f - word - MD4_K[step // 16]) & MASK32
    return (a, b, c, d)


def md4_reverse_tail(digest: bytes, template: Sequence[int], steps: int = 15) -> tuple:
    """Revert the last *steps* MD4 steps from a target digest.

    With the default 15 steps, returns the register state after step 32,
    which any true preimage must reach; word 0 is never consulted.
    """
    if not 1 <= steps <= 15:
        raise ValueError("only the last 15 steps are independent of word 0")
    final = md4_digest_to_state(digest)
    state = tuple((f - i) & MASK32 for f, i in zip(final, MD4_INIT))
    for step in range(47, 47 - steps, -1):
        g = md4_message_index(step)
        assert g != 0, "reversal must not consume the varying word"
        state = md4_unstep(step, state, int(template[g]))
    return state


@dataclass(frozen=True)
class MD4ReversedTarget:
    """Compiled MD4 search target: fixed words + reverted register state."""

    template: tuple
    reversed_state: tuple
    digest: bytes

    @classmethod
    def from_digest(cls, digest: bytes, template: Sequence[int]) -> "MD4ReversedTarget":
        if len(template) != 16:
            raise ValueError("template must hold 16 message words")
        return cls(
            tuple(int(w) & MASK32 for w in template),
            md4_reverse_tail(digest, template),
            bytes(digest),
        )


def md4_search_block(first_words: np.ndarray, target: MD4ReversedTarget) -> np.ndarray:
    """Scan candidates differing only in message word 0 (optimized kernel).

    Runs :data:`MD4_EARLY_STEPS` (30) of the 48 steps, filters on the
    earliest-finalized register of the reverted state, and fully verifies
    the (2^-32-probable) survivors.
    """
    first_words = _check_first_words(first_words)
    scalars = [np.uint32(w) for w in target.template]

    def words(i: int):
        return first_words if i == 0 else scalars[i]

    state = tuple(
        np.full(first_words.shape[0], np.uint32(x), dtype=np.uint32) for x in MD4_INIT
    )
    for step in range(MD4_EARLY_STEPS):
        state = md4_step_np(step, state, words)
    # The reverted state's ``a`` register was produced by forward step 29
    # (it then shifts through b, c, d during steps 30-32), so after 30
    # steps ``state.b`` must equal it for any true preimage.
    mask = state[1] == np.uint32(target.reversed_state[0])
    survivors = np.flatnonzero(mask)
    if survivors.size == 0:
        return survivors
    blocks = np.tile(np.array(target.template, dtype=np.uint32), (survivors.size, 1))
    blocks[:, 0] = first_words[survivors]
    got = md4_batch(blocks)
    want = np.array(md4_digest_to_state(target.digest), dtype=np.uint32)
    keep = (got == want[None, :]).all(axis=1)
    return survivors[keep]


def md4_early_filter(blocks: np.ndarray, step29_targets: np.ndarray) -> np.ndarray:
    """Batch-wide early filter across *multiple* runs at once.

    NTLM's runs are only ``N**2`` candidates, too small to amortize NumPy
    call overhead one run at a time; instead the whole batch (any mix of
    runs) executes the 30 forward steps together, and each lane compares
    against *its own* run's reverted register (``step29_targets``, one
    uint32 per lane).  Returns the lane indices passing the filter; callers
    fully verify survivors.
    """
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        raise ValueError("blocks must have shape (batch, 16)")
    if step29_targets.shape != (blocks.shape[0],):
        raise ValueError("one step-29 target per lane required")
    cols = [np.ascontiguousarray(blocks[:, i]) for i in range(16)]
    state = tuple(
        np.full(blocks.shape[0], np.uint32(x), dtype=np.uint32) for x in MD4_INIT
    )
    for step in range(MD4_EARLY_STEPS):
        state = md4_step_np(step, state, lambda i: cols[i])
    return np.flatnonzero(state[1] == step29_targets)


def _check_first_words(first_words: np.ndarray) -> np.ndarray:
    arr = np.asarray(first_words)
    if arr.ndim != 1:
        raise ValueError("first_words must be a 1-D array")
    if arr.dtype != np.uint32:
        raise TypeError("first_words must be uint32")
    return arr
