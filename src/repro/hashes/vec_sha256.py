"""Vectorized SHA256: one candidate per NumPy lane.

Powers the Bitcoin-style nonce-mining application: a batch of candidate
nonces is substituted into word position of the header block and double-
hashed lane-parallel.  Shares the rolling-window schedule discipline of
:mod:`repro.hashes.vec_sha1`.
"""

from __future__ import annotations

import numpy as np

from repro.hashes.common import np_rotr32
from repro.hashes.sha256 import SHA256_INIT, SHA256_K

_K = tuple(np.uint32(k) for k in SHA256_K)
_INIT = tuple(np.uint32(x) for x in SHA256_INIT)


def sha256_schedule_word(window: list, t: int) -> np.ndarray:
    """Next schedule word from a rolling 16-entry window (t >= 16)."""
    x = window[(t - 15) % 16]
    s0 = np_rotr32(x, 7) ^ np_rotr32(x, 18) ^ (x >> np.uint32(3))
    y = window[(t - 2) % 16]
    s1 = np_rotr32(y, 17) ^ np_rotr32(y, 19) ^ (y >> np.uint32(10))
    w = window[t % 16] + s0 + window[(t - 7) % 16] + s1
    window[t % 16] = w
    return w


def sha256_step_np(step: int, state, w_t: np.ndarray) -> tuple:
    """One SHA256 step over a whole batch."""
    a, b, c, d, e, f, g, h = state
    s1 = np_rotr32(e, 6) ^ np_rotr32(e, 11) ^ np_rotr32(e, 25)
    ch = (e & f) | (~e & g)
    temp1 = h + s1 + ch + _K[step] + w_t
    s0 = np_rotr32(a, 2) ^ np_rotr32(a, 13) ^ np_rotr32(a, 22)
    maj = (a & b) ^ (a & c) ^ (b & c)
    temp2 = s0 + maj
    return (temp1 + temp2, a, b, c, d + temp1, e, f, g)


def sha256_compress_batch(blocks: np.ndarray, state: tuple | None = None) -> tuple:
    """Compress ``(batch, 16)`` blocks; returns the eight register arrays.

    ``state`` allows chaining multi-block messages whose earlier blocks are
    shared by the whole batch (the paper's trick for long keys: "the
    intermediate result of the hashing algorithm may be saved and reused").
    """
    _check_blocks(blocks)
    window = [np.ascontiguousarray(blocks[:, i]) for i in range(16)]
    if state is None:
        state = tuple(np.full(blocks.shape[0], x, dtype=np.uint32) for x in _INIT)
    s = state
    for step in range(64):
        w_t = window[step] if step < 16 else sha256_schedule_word(window, step)
        s = sha256_step_np(step, s, w_t)
    return tuple((x + y).astype(np.uint32, copy=False) for x, y in zip(state, s))


def sha256_batch(blocks: np.ndarray) -> np.ndarray:
    """SHA256 digests of a batch of single-block messages: ``(batch, 8)``."""
    return np.stack(sha256_compress_batch(blocks), axis=1)


def sha256_batch_hex(blocks: np.ndarray) -> list[str]:
    """Hex digests for a batch (test/debug convenience)."""
    words = sha256_batch(blocks)
    return [row.astype(">u4").tobytes().hex() for row in words]


def _check_blocks(blocks: np.ndarray) -> None:
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        raise ValueError("blocks must have shape (batch, 16)")
    if blocks.dtype != np.uint32:
        raise TypeError("blocks must be uint32")
