"""Vectorized SHA256: one candidate per NumPy lane.

Powers the Bitcoin-style nonce-mining application: a batch of candidate
nonces is substituted into word position of the header block and double-
hashed lane-parallel.  Shares the rolling-window schedule discipline of
:mod:`repro.hashes.vec_sha1`.
"""

from __future__ import annotations

import numpy as np

from repro.hashes.common import CompressScratch, np_rotr32, np_rotr32_into
from repro.hashes.sha256 import SHA256_INIT, SHA256_K

_K = tuple(np.uint32(k) for k in SHA256_K)
_INIT = tuple(np.uint32(x) for x in SHA256_INIT)


def sha256_schedule_word(window: list, t: int) -> np.ndarray:
    """Next schedule word from a rolling 16-entry window (t >= 16)."""
    x = window[(t - 15) % 16]
    s0 = np_rotr32(x, 7) ^ np_rotr32(x, 18) ^ (x >> np.uint32(3))
    y = window[(t - 2) % 16]
    s1 = np_rotr32(y, 17) ^ np_rotr32(y, 19) ^ (y >> np.uint32(10))
    w = window[t % 16] + s0 + window[(t - 7) % 16] + s1
    window[t % 16] = w
    return w


def sha256_step_np(step: int, state, w_t: np.ndarray) -> tuple:
    """One SHA256 step over a whole batch."""
    a, b, c, d, e, f, g, h = state
    s1 = np_rotr32(e, 6) ^ np_rotr32(e, 11) ^ np_rotr32(e, 25)
    ch = (e & f) | (~e & g)
    temp1 = h + s1 + ch + _K[step] + w_t
    s0 = np_rotr32(a, 2) ^ np_rotr32(a, 13) ^ np_rotr32(a, 22)
    maj = (a & b) ^ (a & c) ^ (b & c)
    temp2 = s0 + maj
    return (temp1 + temp2, a, b, c, d + temp1, e, f, g)


def sha256_compress_batch(blocks: np.ndarray, state: tuple | None = None) -> tuple:
    """Compress ``(batch, 16)`` blocks; returns the eight register arrays.

    ``state`` allows chaining multi-block messages whose earlier blocks are
    shared by the whole batch (the paper's trick for long keys: "the
    intermediate result of the hashing algorithm may be saved and reused").
    """
    _check_blocks(blocks)
    window = [np.ascontiguousarray(blocks[:, i]) for i in range(16)]
    if state is None:
        state = tuple(np.full(blocks.shape[0], x, dtype=np.uint32) for x in _INIT)
    s = state
    for step in range(64):
        w_t = window[step] if step < 16 else sha256_schedule_word(window, step)
        s = sha256_step_np(step, s, w_t)
    return tuple((x + y).astype(np.uint32, copy=False) for x, y in zip(state, s))


class SHA256Scratch(CompressScratch):
    """Preallocated temporaries for :func:`sha256_compress_batch_into`."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, n_registers=8, n_temps=4, n_schedule=16)


def _xor_rotr_into(x: np.ndarray, rotations: tuple, shift: int | None,
                   acc: np.ndarray, tmp: np.ndarray, tmp2: np.ndarray) -> np.ndarray:
    """``acc = rotr(x, r0) ^ rotr(x, r1) [^ rotr(x, r2) | ^ (x >> shift)]``."""
    np_rotr32_into(x, rotations[0], tmp, acc)
    for r in rotations[1:]:
        np_rotr32_into(x, r, tmp, tmp2)
        np.bitwise_xor(acc, tmp2, out=acc)
    if shift is not None:
        np.right_shift(x, np.uint32(shift), out=tmp2)
        np.bitwise_xor(acc, tmp2, out=acc)
    return acc


def sha256_compress_batch_into(
    blocks: np.ndarray, scratch: SHA256Scratch, state: tuple | None = None
) -> tuple:
    """Allocation-free :func:`sha256_compress_batch` (``out=`` discipline).

    The rolling schedule window and every sigma/majority temporary live in
    the scratch.  The returned register views are invalidated by the next
    call on the same scratch.
    """
    _check_blocks(blocks)
    batch = blocks.shape[0]
    a, b, c, d, e, f, g, h = scratch.registers(batch)
    t1, t2, tmp, tmp2 = scratch.temps(batch)
    window = scratch.schedule(batch)
    for i in range(16):
        np.copyto(window[i], blocks[:, i])
    if state is None:
        carry = _INIT
        for reg, init in zip((a, b, c, d, e, f, g, h), _INIT):
            reg.fill(init)
    else:
        carry = scratch.carry(batch)
        for snap, given in zip(carry, state):
            np.copyto(snap, given)
        for reg, snap in zip((a, b, c, d, e, f, g, h), carry):
            np.copyto(reg, snap)
    for step in range(64):
        if step < 16:
            w_t = window[step]
        else:
            # w[t] += sigma0(w[t-15]) + w[t-7] + sigma1(w[t-2]), in place.
            w_t = window[step % 16]
            _xor_rotr_into(window[(step - 15) % 16], (7, 18), 3, t1, tmp, tmp2)
            np.add(w_t, t1, out=w_t)
            np.add(w_t, window[(step - 7) % 16], out=w_t)
            _xor_rotr_into(window[(step - 2) % 16], (17, 19), 10, t1, tmp, tmp2)
            np.add(w_t, t1, out=w_t)
        # temp1 = h + Sigma1(e) + Ch(e,f,g) + K + w; h's storage is freed.
        _xor_rotr_into(e, (6, 11, 25), None, t1, tmp, tmp2)
        np.add(h, t1, out=h)
        np.bitwise_and(e, f, out=tmp)
        np.bitwise_not(e, out=tmp2)
        np.bitwise_and(tmp2, g, out=tmp2)
        np.bitwise_or(tmp, tmp2, out=tmp)
        np.add(h, tmp, out=h)
        np.add(h, _K[step], out=h)
        np.add(h, w_t, out=h)
        # temp2 = Sigma0(a) + Maj(a,b,c)
        _xor_rotr_into(a, (2, 13, 22), None, t1, tmp, tmp2)
        np.bitwise_and(a, b, out=tmp)
        np.bitwise_and(a, c, out=tmp2)
        np.bitwise_xor(tmp, tmp2, out=tmp)
        np.bitwise_and(b, c, out=tmp2)
        np.bitwise_xor(tmp, tmp2, out=tmp)
        np.add(t1, tmp, out=t1)
        np.add(d, h, out=d)      # new e = d + temp1
        np.add(h, t1, out=h)     # new a = temp1 + temp2
        a, b, c, d, e, f, g, h = h, a, b, c, d, e, f, g
    for reg, init in zip((a, b, c, d, e, f, g, h), carry):
        np.add(reg, init, out=reg)
    return (a, b, c, d, e, f, g, h)


def sha256_batch(blocks: np.ndarray) -> np.ndarray:
    """SHA256 digests of a batch of single-block messages: ``(batch, 8)``."""
    return np.stack(sha256_compress_batch(blocks), axis=1)


def sha256_batch_hex(blocks: np.ndarray) -> list[str]:
    """Hex digests for a batch (test/debug convenience)."""
    words = sha256_batch(blocks)
    return [row.astype(">u4").tobytes().hex() for row in words]


def _check_blocks(blocks: np.ndarray) -> None:
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        raise ValueError("blocks must have shape (batch, 16)")
    if blocks.dtype != np.uint32:
        raise TypeError("blocks must be uint32")
