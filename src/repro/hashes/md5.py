"""MD5 message digest (RFC 1321), implemented from scratch.

The compress function is written against an operations object (default
:class:`repro.hashes.common.IntOps`) so that the instruction tracer of
:mod:`repro.kernels.trace` can account for every ADD / logical / NOT / shift
the algorithm executes — reproducing the methodology behind Tables III-VI of
the paper from the very code that the golden tests check against
``hashlib.md5``.

Round structure (64 steps of 16 each):

* round 1: ``F(b,c,d) = (b & c) | (~b & d)``, message order ``i``;
* round 2: ``G(b,c,d) = (b & d) | (c & ~d)``, order ``(5 i + 1) mod 16``;
* round 3: ``H(b,c,d) = b ^ c ^ d``, order ``(3 i + 5) mod 16``;
* round 4: ``I(b,c,d) = c ^ (b | ~d)``, order ``(7 i) mod 16``.

The property the reversal optimization exploits (Section V): message word 0
is consumed at steps 0 and 48 only — the final 15 steps never touch it.
"""

from __future__ import annotations

import math

from repro.hashes.common import IntOps, bytes_from_words_le
from repro.hashes.padding import Endian, pad_message

#: Initial register state (A, B, C, D) of RFC 1321.
MD5_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)

#: Sine-derived additive constants: ``T[i] = floor(2**32 * |sin(i + 1)|)``.
MD5_T = tuple(int(abs(math.sin(i + 1)) * 2**32) & 0xFFFFFFFF for i in range(64))

#: Per-step left-rotation amounts.
MD5_SHIFTS = (
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
)


def md5_message_index(step: int) -> int:
    """Message-word index ``g(i)`` consumed at a given step (0-63)."""
    if not 0 <= step < 64:
        raise ValueError("step must be in [0, 64)")
    if step < 16:
        return step
    if step < 32:
        return (5 * step + 1) % 16
    if step < 48:
        return (3 * step + 5) % 16
    return (7 * step) % 16


def md5_round_function(step: int, b, c, d, ops=IntOps):
    """The nonlinear function of a step (F, G, H or I)."""
    if step < 16:
        return ops.bor(ops.band(b, c), ops.band(ops.bnot(b), d))
    if step < 32:
        return ops.bor(ops.band(b, d), ops.band(c, ops.bnot(d)))
    if step < 48:
        return ops.bxor(ops.bxor(b, c), d)
    return ops.bxor(c, ops.bor(b, ops.bnot(d)))


def md5_step(step: int, state, block, ops=IntOps):
    """Apply one MD5 step to ``state = (a, b, c, d)``; returns the new state."""
    a, b, c, d = state
    f = md5_round_function(step, b, c, d, ops)
    t = ops.add(ops.add(ops.add(a, f), block[md5_message_index(step)]), ops.const(MD5_T[step]))
    new_b = ops.add(b, ops.rotl(t, MD5_SHIFTS[step]))
    return (d, new_b, b, c)


def md5_compress(state, block, ops=IntOps):
    """One MD5 compression: fold a 16-word block into the register state.

    ``state`` and ``block`` may hold plain ints or traced values; the final
    feed-forward additions are included (they are part of every block).
    """
    s = tuple(state)
    for step in range(64):
        s = md5_step(step, s, block, ops)
    return tuple(ops.add(x, y) for x, y in zip(state, s))


def md5_digest(data: bytes) -> bytes:
    """The 16-byte MD5 digest of *data* (scalar reference path)."""
    state = MD5_INIT
    for block in pad_message(data, Endian.LITTLE):
        state = md5_compress(state, block)
    return md5_state_to_digest(state)


def md5_hex(data: bytes) -> str:
    """Hexadecimal MD5 digest, as printed by ``md5sum``."""
    return md5_digest(data).hex()


def md5_state_to_digest(state) -> bytes:
    """Serialize a final register state to the little-endian digest bytes."""
    return bytes_from_words_le(state)


def md5_digest_to_state(digest: bytes) -> tuple[int, int, int, int]:
    """Parse a 16-byte digest back into the four register values."""
    if len(digest) != 16:
        raise ValueError("MD5 digest must be 16 bytes")
    return tuple(int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4))
