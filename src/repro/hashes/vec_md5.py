"""Vectorized MD5: one candidate per NumPy lane.

This is the CPU stand-in for the paper's CUDA MD5 kernel: a batch of padded
single-block messages (``(batch, 16)`` uint32) is compressed with pure array
arithmetic — every instruction the scalar reference executes per key is
executed here once per *batch*, which is exactly the SIMT execution model
(Section V: "the application at hand is clearly limited by the throughput of
arithmetic instructions").
"""

from __future__ import annotations

import numpy as np

from repro.hashes.common import CompressScratch, np_rotl32
from repro.hashes.md5 import MD5_INIT, MD5_SHIFTS, MD5_T, md5_message_index

#: Pre-materialized uint32 step constants.
_T = tuple(np.uint32(t) for t in MD5_T)
_INIT = tuple(np.uint32(x) for x in MD5_INIT)
_FULL = np.uint32(0xFFFFFFFF)


def md5_round_function_np(step: int, b: np.ndarray, c: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Lane-wise nonlinear function of a step (F, G, H or I)."""
    if step < 16:
        return (b & c) | (~b & d)
    if step < 32:
        return (b & d) | (c & ~d)
    if step < 48:
        return b ^ c ^ d
    return c ^ (b | ~d)


def md5_step_np(step: int, state, words) -> tuple:
    """One MD5 step over a whole batch; ``words`` yields per-step operands."""
    a, b, c, d = state
    f = md5_round_function_np(step, b, c, d)
    t = a + f + words(md5_message_index(step)) + _T[step]
    return (d, b + np_rotl32(t, MD5_SHIFTS[step]), b, c)


def md5_compress_batch(blocks: np.ndarray, state: tuple | None = None) -> tuple:
    """Compress ``(batch, 16)`` blocks; returns the four register arrays.

    ``state`` chains multi-block messages whose earlier blocks are shared
    by the whole batch — the paper's long-key optimization ("the
    intermediate result of the hashing algorithm may be saved and reused
    ... for each key we can process only the last block of 64 bytes").
    """
    _check_blocks(blocks)
    cols = [np.ascontiguousarray(blocks[:, i]) for i in range(16)]
    if state is None:
        state = tuple(np.full(blocks.shape[0], x, dtype=np.uint32) for x in _INIT)
    s = state
    for step in range(64):
        s = md5_step_np(step, s, lambda i: cols[i])
    return tuple((x + y).astype(np.uint32, copy=False) for x, y in zip(state, s))


class MD5Scratch(CompressScratch):
    """Preallocated temporaries for :func:`md5_compress_batch_into`."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, n_registers=4, n_temps=2, n_schedule=16)


def md5_compress_batch_into(
    blocks: np.ndarray, scratch: MD5Scratch, state: tuple | None = None
) -> tuple:
    """Allocation-free :func:`md5_compress_batch`.

    Every step's temporaries are written into *scratch* with ``out=``
    ufuncs, so repeated calls on the same scratch allocate nothing — the
    steady-state regime of a long interval scan.  The returned register
    views are invalidated by the next call on the same scratch.
    """
    _check_blocks(blocks)
    batch = blocks.shape[0]
    a, b, c, d = scratch.registers(batch)
    f, tmp = scratch.temps(batch)
    cols = scratch.schedule(batch)
    for i in range(16):
        np.copyto(cols[i], blocks[:, i])
    if state is None:
        carry = _INIT
        for reg, init in zip((a, b, c, d), _INIT):
            reg.fill(init)
    else:
        carry = scratch.carry(batch)
        # Snapshot the whole state before loading any register: the given
        # arrays may alias this scratch's own registers (chained calls).
        for snap, given in zip(carry, state):
            np.copyto(snap, given)
        for reg, snap in zip((a, b, c, d), carry):
            np.copyto(reg, snap)
    for step in range(64):
        if step < 16:  # F = (b & c) | (~b & d)
            np.bitwise_and(b, c, out=f)
            np.bitwise_not(b, out=tmp)
            np.bitwise_and(tmp, d, out=tmp)
            np.bitwise_or(f, tmp, out=f)
        elif step < 32:  # G = (b & d) | (c & ~d)
            np.bitwise_and(b, d, out=f)
            np.bitwise_not(d, out=tmp)
            np.bitwise_and(tmp, c, out=tmp)
            np.bitwise_or(f, tmp, out=f)
        elif step < 48:  # H = b ^ c ^ d
            np.bitwise_xor(b, c, out=f)
            np.bitwise_xor(f, d, out=f)
        else:  # I = c ^ (b | ~d)
            np.bitwise_not(d, out=f)
            np.bitwise_or(f, b, out=f)
            np.bitwise_xor(f, c, out=f)
        # t = a + f + X[k] + T[step]; a's storage becomes the new b.
        np.add(a, f, out=a)
        np.add(a, cols[md5_message_index(step)], out=a)
        np.add(a, _T[step], out=a)
        shift = np.uint32(MD5_SHIFTS[step])
        np.left_shift(a, shift, out=tmp)
        np.right_shift(a, np.uint32(32) - shift, out=a)
        np.bitwise_or(a, tmp, out=a)
        np.add(a, b, out=a)
        a, b, c, d = d, a, b, c
    for reg, init in zip((a, b, c, d), carry):
        np.add(reg, init, out=reg)
    return (a, b, c, d)


def md5_batch(blocks: np.ndarray) -> np.ndarray:
    """MD5 digests of a batch of single-block messages.

    Parameters
    ----------
    blocks:
        ``(batch, 16)`` uint32 array of padded message blocks
        (see :func:`repro.hashes.padding.pack_single_block`).

    Returns
    -------
    ``(batch, 4)`` uint32 array of digest words (little-endian serialization
    yields the standard digest bytes).
    """
    a, b, c, d = md5_compress_batch(blocks)
    return np.stack([a, b, c, d], axis=1)


def md5_batch_hex(blocks: np.ndarray) -> list[str]:
    """Hex digests for a batch (test/debug convenience)."""
    words = md5_batch(blocks)
    return [row.astype("<u4").tobytes().hex() for row in words]


def _check_blocks(blocks: np.ndarray) -> None:
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        raise ValueError("blocks must have shape (batch, 16)")
    if blocks.dtype != np.uint32:
        raise TypeError("blocks must be uint32")
