"""SHA-256 (FIPS 180-4), implemented from scratch.

Used by the Bitcoin-style mining application (Section I of the paper
motivates exhaustive search with Bitcoin block generation: find a 32-bit
nonce such that ``SHA256(SHA256(header))`` has a required number of leading
zero bits).  The structure mirrors :mod:`repro.hashes.sha1`; the sigma
functions use right-rotations, which the operations object exposes through
:func:`rotr`.
"""

from __future__ import annotations

from repro.hashes.common import IntOps, bytes_from_words_be
from repro.hashes.padding import Endian, pad_message

#: Initial register state: first 32 bits of the fractional parts of the
#: square roots of the first 8 primes.
SHA256_INIT = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

#: Round constants: cube-root fractions of the first 64 primes.
SHA256_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)


def _rotr(ops, x, n: int):
    """Right rotation in terms of the ops object (rotl by the complement)."""
    return ops.rotl(x, (32 - n) & 31)


def sha256_expand_schedule(block, ops=IntOps):
    """Expand a 16-word block into the 64-word schedule ``W``."""
    w = list(block)
    for t in range(16, 64):
        x = w[t - 15]
        s0 = ops.bxor(ops.bxor(_rotr(ops, x, 7), _rotr(ops, x, 18)), ops.shr(x, 3))
        y = w[t - 2]
        s1 = ops.bxor(ops.bxor(_rotr(ops, y, 17), _rotr(ops, y, 19)), ops.shr(y, 10))
        w.append(ops.add(ops.add(w[t - 16], s0), ops.add(w[t - 7], s1)))
    return w


def sha256_step(step: int, state, w, ops=IntOps):
    """Apply one SHA256 step to ``state = (a..h)``."""
    a, b, c, d, e, f, g, h = state
    big_s1 = ops.bxor(ops.bxor(_rotr(ops, e, 6), _rotr(ops, e, 11)), _rotr(ops, e, 25))
    ch = ops.bxor(ops.band(e, f), ops.band(ops.bnot(e), g))
    temp1 = ops.add(ops.add(ops.add(h, big_s1), ops.add(ch, ops.const(SHA256_K[step]))), w[step])
    big_s0 = ops.bxor(ops.bxor(_rotr(ops, a, 2), _rotr(ops, a, 13)), _rotr(ops, a, 22))
    maj = ops.bxor(ops.bxor(ops.band(a, b), ops.band(a, c)), ops.band(b, c))
    temp2 = ops.add(big_s0, maj)
    return (
        ops.add(temp1, temp2), a, b, c,
        ops.add(d, temp1), e, f, g,
    )


def sha256_compress(state, block, ops=IntOps):
    """One SHA256 compression: fold a 16-word block into the register state."""
    w = sha256_expand_schedule(block, ops)
    s = tuple(state)
    for step in range(64):
        s = sha256_step(step, s, w, ops)
    return tuple(ops.add(x, y) for x, y in zip(state, s))


def sha256_digest(data: bytes) -> bytes:
    """The 32-byte SHA256 digest of *data* (scalar reference path)."""
    state = SHA256_INIT
    for block in pad_message(data, Endian.BIG):
        state = sha256_compress(state, block)
    return bytes_from_words_be(state)


def sha256_hex(data: bytes) -> str:
    """Hexadecimal SHA256 digest, as printed by ``sha256sum``."""
    return sha256_digest(data).hex()


def sha256d_digest(data: bytes) -> bytes:
    """Double SHA256 — the Bitcoin proof-of-work hash."""
    return sha256_digest(sha256_digest(data))
