"""SHA-1 secure hash algorithm (RFC 3174), implemented from scratch.

Like :mod:`repro.hashes.md5`, the compress function takes an operations
object so the instruction tracer can reproduce the paper's instruction-class
accounting; the paper reports SHA1's ratio of addition/logical operations to
shift/MAD operations as ~1.53, which the tracer verifies.

Step structure (80 steps): with state ``(a, b, c, d, e)``,

.. code-block:: text

    temp = rotl(a, 5) + f_t(b, c, d) + e + K_t + W[t]
    (a, b, c, d, e) <- (temp, a, rotl(b, 30), c, d)

where ``W[0..15]`` is the message block and
``W[t] = rotl(W[t-3] ^ W[t-8] ^ W[t-14] ^ W[t-16], 1)`` beyond it.
"""

from __future__ import annotations

from repro.hashes.common import IntOps, bytes_from_words_be
from repro.hashes.padding import Endian, pad_message

#: Initial register state (RFC 3174 section 6.1).
SHA1_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

#: Per-round additive constants.
SHA1_K = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)


def sha1_round_function(step: int, b, c, d, ops=IntOps):
    """The nonlinear function of a step (Ch, Parity, Maj, Parity)."""
    if step < 20:
        return ops.bor(ops.band(b, c), ops.band(ops.bnot(b), d))
    if step < 40:
        return ops.bxor(ops.bxor(b, c), d)
    if step < 60:
        return ops.bor(ops.bor(ops.band(b, c), ops.band(b, d)), ops.band(c, d))
    return ops.bxor(ops.bxor(b, c), d)


def sha1_expand_schedule(block, ops=IntOps):
    """Expand a 16-word block into the 80-word message schedule ``W``."""
    w = list(block)
    for t in range(16, 80):
        w.append(ops.rotl(ops.bxor(ops.bxor(w[t - 3], w[t - 8]), ops.bxor(w[t - 14], w[t - 16])), 1))
    return w


def sha1_step(step: int, state, w, ops=IntOps):
    """Apply one SHA1 step to ``state = (a, b, c, d, e)``."""
    a, b, c, d, e = state
    f = sha1_round_function(step, b, c, d, ops)
    temp = ops.add(
        ops.add(ops.add(ops.add(ops.rotl(a, 5), f), e), ops.const(SHA1_K[step // 20])),
        w[step],
    )
    return (temp, a, ops.rotl(b, 30), c, d)


def sha1_compress(state, block, ops=IntOps):
    """One SHA1 compression: fold a 16-word block into the register state."""
    w = sha1_expand_schedule(block, ops)
    s = tuple(state)
    for step in range(80):
        s = sha1_step(step, s, w, ops)
    return tuple(ops.add(x, y) for x, y in zip(state, s))


def sha1_digest(data: bytes) -> bytes:
    """The 20-byte SHA1 digest of *data* (scalar reference path)."""
    state = SHA1_INIT
    for block in pad_message(data, Endian.BIG):
        state = sha1_compress(state, block)
    return bytes_from_words_be(state)


def sha1_hex(data: bytes) -> str:
    """Hexadecimal SHA1 digest, as printed by ``sha1sum``."""
    return sha1_digest(data).hex()


def sha1_digest_to_state(digest: bytes) -> tuple[int, ...]:
    """Parse a 20-byte digest back into the five register values."""
    if len(digest) != 20:
        raise ValueError("SHA1 digest must be 20 bytes")
    return tuple(int.from_bytes(digest[i : i + 4], "big") for i in range(0, 20, 4))
