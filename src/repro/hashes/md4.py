"""MD4 message digest (RFC 1320), implemented from scratch.

MD4 is the core of Windows NTLM password hashes — the second-largest
auditing workload of the paper's era (BarsWF and Cryptohaze both shipped
NTLM kernels).  The structure is MD5's ancestor: 48 steps in three rounds,
little-endian words, the same Merkle-Damgard padding, which is why the
whole accounting/vectorization pipeline carries over unchanged.

Round structure (48 steps of 16 each):

* round 1: ``F(x,y,z) = (x & y) | (~x & z)``, message order ``i``, add 0;
* round 2: ``G(x,y,z) = (x & y) | (x & z) | (y & z)``, order
  ``(i % 4) * 4 + i // 4``, add ``0x5A827999``;
* round 3: ``H(x,y,z) = x ^ y ^ z``, order bit-reversed, add ``0x6ED9EBA1``.
"""

from __future__ import annotations

from repro.hashes.common import IntOps, bytes_from_words_le
from repro.hashes.padding import Endian, pad_message

#: Initial register state (same as MD5's).
MD4_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)

#: Per-round additive constants (round 1 adds nothing).
MD4_K = (0x00000000, 0x5A827999, 0x6ED9EBA1)

#: Per-step left-rotation amounts.
MD4_SHIFTS = (
    3, 7, 11, 19, 3, 7, 11, 19, 3, 7, 11, 19, 3, 7, 11, 19,
    3, 5, 9, 13, 3, 5, 9, 13, 3, 5, 9, 13, 3, 5, 9, 13,
    3, 9, 11, 15, 3, 9, 11, 15, 3, 9, 11, 15, 3, 9, 11, 15,
)

#: Message-word order for rounds 2 and 3.
_ROUND2_ORDER = (0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15)
_ROUND3_ORDER = (0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15)


def md4_message_index(step: int) -> int:
    """Message-word index consumed at a given step (0-47)."""
    if not 0 <= step < 48:
        raise ValueError("step must be in [0, 48)")
    if step < 16:
        return step
    if step < 32:
        return _ROUND2_ORDER[step - 16]
    return _ROUND3_ORDER[step - 32]


def md4_round_function(step: int, x, y, z, ops=IntOps):
    """The nonlinear function of a step (F, G or H)."""
    if step < 16:
        return ops.bor(ops.band(x, y), ops.band(ops.bnot(x), z))
    if step < 32:
        return ops.bor(ops.bor(ops.band(x, y), ops.band(x, z)), ops.band(y, z))
    return ops.bxor(ops.bxor(x, y), z)


def md4_step(step: int, state, block, ops=IntOps):
    """Apply one MD4 step to ``state = (a, b, c, d)``; returns the new state.

    MD4 rotates the *whole* sum (there is no post-rotation addition as in
    MD5), and the registers cycle ``(a, b, c, d) -> (d, a', b, c)``.
    """
    a, b, c, d = state
    f = md4_round_function(step, b, c, d, ops)
    t = ops.add(ops.add(a, f), block[md4_message_index(step)])
    k = MD4_K[step // 16]
    if k:
        t = ops.add(t, ops.const(k))
    new_a = ops.rotl(t, MD4_SHIFTS[step])
    return (d, new_a, b, c)


def md4_compress(state, block, ops=IntOps):
    """One MD4 compression: fold a 16-word block into the register state."""
    s = tuple(state)
    for step in range(48):
        s = md4_step(step, s, block, ops)
    return tuple(ops.add(x, y) for x, y in zip(state, s))


def md4_digest(data: bytes) -> bytes:
    """The 16-byte MD4 digest of *data* (scalar reference path)."""
    state = MD4_INIT
    for block in pad_message(data, Endian.LITTLE):
        state = md4_compress(state, block)
    return bytes_from_words_le(state)


def md4_hex(data: bytes) -> str:
    """Hexadecimal MD4 digest."""
    return md4_digest(data).hex()


def md4_digest_to_state(digest: bytes) -> tuple[int, int, int, int]:
    """Parse a 16-byte digest back into the four register values."""
    if len(digest) != 16:
        raise ValueError("MD4 digest must be 16 bytes")
    return tuple(int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4))
