"""Cached-midstate hashing for long salted messages (Section IV).

"For longer strings, the intermediate result of the hashing algorithm may
be saved and reused for a large number of instances sharing the first bytes
of the string; thus, for each key we can process only the last block of 64
bytes."

The scenario: a long *prefix salt* (site token, application pepper, ...)
followed by a short varying key.  The prefix's whole 64-byte blocks are
compressed **once** into a midstate shared by every candidate; per key, the
engine packs only the final block (prefix remainder + key + padding) and
runs a single compression from the midstate.  This restores
length-independence for messages far beyond the 55-byte single-block cap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashes.md5 import MD5_INIT, md5_compress, md5_digest, md5_digest_to_state
from repro.hashes.padding import Endian, pad_message
from repro.hashes.sha1 import SHA1_INIT, sha1_compress, sha1_digest, sha1_digest_to_state
from repro.hashes.vec_md5 import md5_compress_batch
from repro.hashes.vec_sha1 import sha1_compress_batch
from repro.keyspace import Charset, Interval, KeyMapping, KeyOrder
from repro.keyspace.vectorized import batch_keys
from repro.kernels.variants import HashAlgorithm

BLOCK = 64


@dataclass(frozen=True)
class MidstateTarget:
    """Digest of ``prefix + key`` where the prefix may span many blocks."""

    algorithm: HashAlgorithm
    digest: bytes
    charset: Charset
    prefix: bytes
    min_length: int = 1
    max_length: int = 8

    def __post_init__(self) -> None:
        expected = {HashAlgorithm.MD5: 16, HashAlgorithm.SHA1: 20}[self.algorithm]
        if len(self.digest) != expected:
            raise ValueError(f"digest must be {expected} bytes")
        if self.min_length < 0 or self.max_length < self.min_length:
            raise ValueError("invalid length window")
        # The varying tail (prefix remainder + key + 9 padding bytes) must
        # fit the final block for the single-compression fast path.
        if len(self.prefix) % BLOCK + self.max_length > BLOCK - 9:
            raise ValueError(
                "prefix remainder + key must leave 9 bytes of padding room "
                "in the final block"
            )

    @classmethod
    def from_password(
        cls,
        password: str,
        charset: Charset,
        prefix: bytes,
        algorithm: HashAlgorithm = HashAlgorithm.MD5,
        **window,
    ) -> "MidstateTarget":
        hasher = md5_digest if algorithm is HashAlgorithm.MD5 else sha1_digest
        window.setdefault("min_length", 1)
        window.setdefault("max_length", max(4, len(password)))
        return cls(
            algorithm=algorithm,
            digest=hasher(prefix + password.encode("latin-1")),
            charset=charset,
            prefix=prefix,
            **window,
        )

    @property
    def endian(self) -> Endian:
        return Endian.LITTLE if self.algorithm is HashAlgorithm.MD5 else Endian.BIG

    @property
    def mapping(self) -> KeyMapping:
        return KeyMapping(self.charset, self.min_length, self.max_length, KeyOrder.PREFIX_FASTEST)

    @property
    def space_size(self) -> int:
        return self.mapping.size

    def verify(self, key: str) -> bool:
        hasher = md5_digest if self.algorithm is HashAlgorithm.MD5 else sha1_digest
        return hasher(self.prefix + key.encode("latin-1")) == self.digest

    # ------------------------------------------------------------------ #
    def midstate(self) -> tuple:
        """Register state after compressing the prefix's whole blocks.

        Computed once per target — the amortized ``K_f``-style fixed cost.
        """
        whole = len(self.prefix) // BLOCK
        compress = md5_compress if self.algorithm is HashAlgorithm.MD5 else sha1_compress
        init = MD5_INIT if self.algorithm is HashAlgorithm.MD5 else SHA1_INIT
        state = init
        data = self.prefix[: whole * BLOCK]
        for off in range(0, len(data), BLOCK):
            chunk = data[off : off + BLOCK]
            words = [
                int.from_bytes(chunk[i : i + 4], self.endian.value)
                for i in range(0, BLOCK, 4)
            ]
            state = compress(state, words)
        return state


def pack_final_blocks(target: MidstateTarget, chars: np.ndarray) -> np.ndarray:
    """Final 64-byte blocks for a batch of keys after the cached midstate.

    The block holds the prefix remainder, the key, the ``0x80`` padding
    byte and the *total* message bit length — which is what distinguishes
    it from a fresh single-block packing.
    """
    remainder = target.prefix[len(target.prefix) // BLOCK * BLOCK :]
    batch, key_len = chars.shape
    total_len = len(target.prefix) + key_len
    buf = np.zeros((batch, BLOCK), dtype=np.uint8)
    if remainder:
        buf[:, : len(remainder)] = np.frombuffer(remainder, dtype=np.uint8)
    buf[:, len(remainder) : len(remainder) + key_len] = chars
    buf[:, len(remainder) + key_len] = 0x80
    buf[:, 56:64] = np.frombuffer(
        (total_len * 8).to_bytes(8, target.endian.value), dtype=np.uint8
    )
    dtype = "<u4" if target.endian is Endian.LITTLE else ">u4"
    return buf.view(dtype).reshape(batch, 16).astype(np.uint32, copy=False)


def crack_midstate(
    target: MidstateTarget,
    interval: Interval | None = None,
    batch_size: int = 1 << 14,
) -> list[tuple[int, str]]:
    """Scan an interval paying one compression per candidate.

    Regardless of how long the salt prefix is, each key costs a single
    block compression from the cached midstate — the Section IV claim that
    dispatchers "can select intervals of keys just considering the size of
    each interval ... disregarding the keys lengths".
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    mapping = target.mapping
    interval = interval if interval is not None else Interval(0, mapping.size)
    if interval.stop > mapping.size:
        raise IndexError(f"interval {interval} outside space of {mapping.size}")
    mid = target.midstate()
    if target.algorithm is HashAlgorithm.MD5:
        compress = md5_compress_batch
        want = np.array(md5_digest_to_state(target.digest), dtype=np.uint32)
    else:
        compress = sha1_compress_batch
        want = np.array(sha1_digest_to_state(target.digest), dtype=np.uint32)
    found: list[tuple[int, str]] = []
    pos = interval.start
    while pos < interval.stop:
        count = min(batch_size, interval.stop - pos)
        for seg_start, _length, chars in batch_keys(mapping, pos, count):
            blocks = pack_final_blocks(target, chars)
            state = tuple(
                np.full(blocks.shape[0], np.uint32(x), dtype=np.uint32) for x in mid
            )
            got = np.stack(compress(blocks, state=state), axis=1)
            for lane in np.flatnonzero((got == want[None, :]).all(axis=1)):
                found.append(
                    (seg_start + int(lane), chars[int(lane)].tobytes().decode("latin-1"))
                )
        pos += count
    return found
