"""Merkle-Damgard padding and message packing.

MD5, SHA1 and SHA256 all consume 64-byte blocks of sixteen 32-bit words and
pad a message with a ``0x80`` byte, zeros, and the 64-bit message bit length;
they differ only in word endianness (MD5 is little-endian, the SHAs are
big-endian) and in where the length is stored within the final 8 bytes.

Two paths are provided:

* :func:`pad_message` — the general scalar path: any length, multi-block.
* :func:`pack_single_block` — the kernel fast path of the paper
  (Section IV-A): candidates of at most 55 bytes (optionally wrapped in a
  constant prefix/suffix such as a salt) are packed into a *single* block,
  an entire batch at a time, with pure array operations.  "For relatively
  small strings, that is less than 57 characters, the execution time ... is
  essentially independent of the string length."
"""

from __future__ import annotations

import enum

import numpy as np


class Endian(enum.Enum):
    """Word endianness of the hash algorithm's message schedule."""

    LITTLE = "little"  #: MD5
    BIG = "big"  #: SHA1 / SHA256


#: Maximum message bytes that fit a single padded 64-byte block.
SINGLE_BLOCK_CAPACITY = 55


def single_block_capacity() -> int:
    """Bytes available in a single padded block (64 - 1 - 8 = 55)."""
    return SINGLE_BLOCK_CAPACITY


def pad_message(data: bytes, endian: Endian) -> list[list[int]]:
    """Pad *data* and split it into 16-word blocks (scalar reference path).

    Returns a list of blocks, each a list of sixteen Python ints.  Handles
    arbitrary lengths including the boundary cases (55, 56, 63, 64 bytes)
    where the length field spills into an extra block.
    """
    bit_len = len(data) * 8
    padded = bytearray(data)
    padded.append(0x80)
    while len(padded) % 64 != 56:
        padded.append(0x00)
    padded += bit_len.to_bytes(8, endian.value)
    blocks: list[list[int]] = []
    for off in range(0, len(padded), 64):
        chunk = padded[off : off + 64]
        blocks.append(
            [
                int.from_bytes(chunk[i : i + 4], endian.value)
                for i in range(0, 64, 4)
            ]
        )
    return blocks


def pack_single_block(
    chars: np.ndarray,
    endian: Endian,
    prefix: bytes = b"",
    suffix: bytes = b"",
) -> np.ndarray:
    """Pack a batch of fixed-length candidates into single padded blocks.

    Parameters
    ----------
    chars:
        ``(batch, key_length)`` uint8 matrix of candidate bytes (from
        :func:`repro.keyspace.batch_keys`).
    endian:
        Word endianness of the target hash.
    prefix, suffix:
        Constant bytes placed around every candidate — this is how *salting*
        enters the kernel: the salt is known, so it changes each key's
        digest without enlarging the search space (paper, Section I).

    Returns
    -------
    ``(batch, 16)`` native ``uint32`` array, one padded message block per
    lane, ready for the vectorized compress functions.
    """
    if chars.ndim != 2:
        raise ValueError("chars must be a (batch, length) matrix")
    if chars.dtype != np.uint8:
        raise TypeError("chars must be uint8")
    batch, key_len = chars.shape
    total = len(prefix) + key_len + len(suffix)
    if total > SINGLE_BLOCK_CAPACITY:
        raise ValueError(
            f"message of {total} bytes exceeds single-block capacity "
            f"({SINGLE_BLOCK_CAPACITY}); use the scalar multi-block path"
        )
    buf = np.zeros((batch, 64), dtype=np.uint8)
    pos = 0
    if prefix:
        buf[:, : len(prefix)] = np.frombuffer(prefix, dtype=np.uint8)
        pos = len(prefix)
    buf[:, pos : pos + key_len] = chars
    pos += key_len
    if suffix:
        buf[:, pos : pos + len(suffix)] = np.frombuffer(suffix, dtype=np.uint8)
        pos += len(suffix)
    buf[:, pos] = 0x80
    bit_len = total * 8
    buf[:, 56:64] = np.frombuffer(bit_len.to_bytes(8, endian.value), dtype=np.uint8)
    dtype = "<u4" if endian is Endian.LITTLE else ">u4"
    words = buf.view(dtype).reshape(batch, 16)
    return words.astype(np.uint32, copy=False)


def pack_scalar_block(message: bytes, endian: Endian) -> np.ndarray:
    """Pack one short message into a single block (batch of one).

    Convenience wrapper used by targets and tests; rejects messages longer
    than the single-block capacity.
    """
    arr = np.frombuffer(message, dtype=np.uint8).reshape(1, -1)
    return pack_single_block(arr, endian)
