"""Elastic cluster coordination: membership, sharding, work stealing.

ROADMAP item 3: the paper's fleet is carved up once at launch, but real
clusters breathe — workers join a live run, leave gracefully, or get
evicted, and very large keyspaces want *several* cooperating masters
rather than one.  This module adds the three pieces on top of the
existing gather loop (:mod:`repro.cluster.runtime`):

* :class:`MemberRegistry` — the membership ledger behind the
  Join/Welcome/Leave/Evict messages.  Liveness stays the
  :class:`~repro.cluster.health.HealthMonitor`'s job; the registry
  tracks *admission*: who is in the run, who departed on purpose, and
  who is banned.
* :class:`ShardBoard` — exactly-once coverage for a keyspace split
  across N contiguous shards, each with its own
  :class:`~repro.core.progress.ProgressLog`.  Its :meth:`ShardBoard.
  claim` is the one atomic mark-and-dedup step every master goes
  through, so two masters racing on a stolen-then-completed span can
  never double-count: ``subtract_interval`` under the board lock keeps
  only the pieces nobody owned yet (first owner wins).
* :class:`ShardCoordinator` — runs one :class:`~repro.cluster.runtime.
  DistributedMaster` per shard and wires their pending queues into a
  work-stealing protocol: an idle master sends a
  :class:`~repro.cluster.protocol.StealRequestMessage`, the most-loaded
  victim answers with a :class:`~repro.cluster.protocol.
  StealGrantMessage` carrying ~half its pending spans (removed from its
  queue *before* the grant is encoded, so a span is pending on at most
  one master at any instant).

Exactness argument, in one paragraph: a candidate id is counted toward
``tested`` only when :meth:`ShardBoard.claim` returns it as novel, and
``claim`` marks the id into exactly one shard log under one lock —
re-marking raises in :meth:`~repro.core.progress.ProgressLog.mark_done`,
and the subtract step filters everything already owned.  Stealing moves
*pending* (undispatched) spans between queues, which affects who scans
an id but never how it is accounted; duplicated, late, or replayed
replies are deduplicated exactly like in the single-master runtime.
:class:`ElasticBackend` adapts the whole arrangement to the
:class:`~repro.core.backend.ExecutionBackend` interface so the job
scheduler can target an elastic cluster like any local pool.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import cast

from repro.cluster.health import HealthConfig
from repro.cluster.protocol import (
    StealGrantMessage,
    StealRequestMessage,
    decode_any,
)
from repro.cluster.runtime import (
    AllWorkersDeadError,
    DistributedMaster,
    InProcessTransport,
    PendingQueue,
    WorkerConfig,
)
from repro.core.backend import BackendOutcome, ExecutionBackend, WorkUnitResult
from repro.core.progress import ProgressLog
from repro.core.results import ResultMixin
from repro.keyspace import Interval
from repro.keyspace.intervals import (
    is_exact_partition,
    merge_intervals,
    partition_evenly,
    subtract_interval,
)
from repro.obs.schema import MetricNames

#: Membership states a node moves through.
ACTIVE = "active"
LEFT = "left"
EVICTED = "evicted"


@dataclass
class MemberInfo:
    """Everything the registry knows about one member."""

    name: str
    state: str = ACTIVE
    joined_at: float = 0.0
    departed_at: float = 0.0
    rate_keys_per_s: int = 0  #: advertised throughput from the JoinMessage
    backend: str = ""  #: advertised engine tag
    reason: str = ""  #: why it left / was evicted
    joins: int = 0  #: admissions, counting rejoins


class MemberRegistry:
    """Admission ledger of an elastic run.

    Deliberately small: liveness (who is *responding*) belongs to the
    :class:`~repro.cluster.health.HealthMonitor`; the registry answers
    who is *allowed in*.  Eviction is terminal for the run — an evicted
    node's joins and heartbeats are answered with a fresh
    :class:`~repro.cluster.protocol.EvictMessage`, never re-admission.

    Shared between the master's gather loop and transport receive
    threads, so every access holds the lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._members: dict[str, MemberInfo] = {}

    def join(
        self, name: str, now: float = 0.0, rate: int = 0, backend: str = ""
    ) -> bool:
        """Admit (or re-admit) a node; returns ``True`` when the node was
        not active before — the signal to emit a ``member.join`` event.
        Evicted nodes are refused (returns ``False``, state unchanged)."""
        with self._lock:
            info = self._members.get(name)
            if info is None:
                info = MemberInfo(name=name)
                self._members[name] = info
            if info.state == EVICTED:
                return False
            newly = info.joins == 0 or info.state != ACTIVE
            if newly:
                info.joins += 1
                info.joined_at = now
            info.state = ACTIVE
            if rate:
                info.rate_keys_per_s = rate
            if backend:
                info.backend = backend
            return newly

    def leave(self, name: str, now: float = 0.0, reason: str = "") -> None:
        with self._lock:
            info = self._members.get(name)
            if info is None or info.state == EVICTED:
                return
            info.state = LEFT
            info.departed_at = now
            info.reason = reason

    def evict(self, name: str, now: float = 0.0, reason: str = "") -> None:
        with self._lock:
            info = self._members.get(name)
            if info is None:
                info = MemberInfo(name=name)
                self._members[name] = info
            info.state = EVICTED
            info.departed_at = now
            info.reason = reason

    def is_active(self, name: str) -> bool:
        with self._lock:
            info = self._members.get(name)
            return info is not None and info.state == ACTIVE

    def is_evicted(self, name: str) -> bool:
        with self._lock:
            info = self._members.get(name)
            return info is not None and info.state == EVICTED

    def active(self) -> list[str]:
        with self._lock:
            return sorted(
                name for name, info in self._members.items() if info.state == ACTIVE
            )

    def get(self, name: str) -> MemberInfo | None:
        with self._lock:
            return self._members.get(name)


class ShardBoard:
    """Exactly-once coverage for a keyspace sharded across N masters.

    Each shard owns a contiguous span of ``[0, total)`` and its own
    :class:`~repro.core.progress.ProgressLog` (shard *i*'s log spans
    ``[0, shard.stop)`` with everything below ``shard.start``
    pre-marked, so ``is_complete`` means *this shard* is covered).  All
    marking goes through :meth:`claim`, which holds the board lock for
    the whole subtract-then-mark step — the atomicity that makes
    first-owner-wins dedup exact when masters race on stolen spans.

    The board quacks enough like a ``ProgressLog`` (``completed``,
    ``remaining``, ``is_complete``, ``check_invariant``) to be passed
    as the ``progress`` ledger of every lane's
    :meth:`~repro.cluster.runtime.DistributedMaster.run`.
    """

    def __init__(self, total: int, shards: list[Interval], on_match=None) -> None:
        if not is_exact_partition(Interval(0, total), shards):
            raise ValueError("shards must tile [0, total) exactly")
        self.total = total
        self.shards = list(shards)
        self._lock = threading.Lock()
        self._logs: list[ProgressLog] = []
        for shard in self.shards:
            log = ProgressLog(total=shard.stop)
            if shard.start:
                log.mark_done(Interval(0, shard.start))
            self._logs.append(log)
        self._on_match = on_match

    # -- the one write path --------------------------------------------- #
    def claim(self, piece: Interval, matches=()) -> list[Interval]:
        """Atomically mark the unowned part of *piece*; returns it.

        Routes each sub-span to its owning shard log.  Everything some
        master already claimed is filtered out by ``subtract_interval``
        under the lock, so the union of all return values over the whole
        run tiles the space exactly — no id is ever returned twice.
        """
        novel_all: list[Interval] = []
        hit = False
        with self._lock:
            for shard, log in zip(self.shards, self._logs):
                if not piece.overlaps(shard):
                    continue
                sub = Interval(
                    max(piece.start, shard.start), min(piece.stop, shard.stop)
                )
                for novel in subtract_interval(sub, log.completed):
                    piece_matches = tuple(m for m in matches if m[0] in novel)
                    log.mark_done(novel, piece_matches)
                    novel_all.append(novel)
                    hit = hit or bool(piece_matches)
        if hit and self._on_match is not None:
            self._on_match()
        return novel_all

    # -- ProgressLog-compatible views ----------------------------------- #
    @property
    def completed(self) -> list[Interval]:
        """Globally covered spans (each shard's log clipped to its shard)."""
        with self._lock:
            covered = []
            for shard, log in zip(self.shards, self._logs):
                for iv in log.completed:
                    lo = max(iv.start, shard.start)
                    hi = min(iv.stop, shard.stop)
                    if hi > lo:
                        covered.append(Interval(lo, hi))
            return merge_intervals(covered)

    @property
    def found(self) -> list:
        with self._lock:
            out = [m for log in self._logs for m in log.found]
        out.sort()
        return out

    def remaining(self) -> list[Interval]:
        return subtract_interval(Interval(0, self.total), self.completed)

    @property
    def done_count(self) -> int:
        return sum(iv.size for iv in self.completed)

    @property
    def is_complete(self) -> bool:
        with self._lock:
            return all(log.is_complete for log in self._logs)

    def check_invariant(self) -> bool:
        """Covered + remaining must tile [0, total), globally and per shard."""
        with self._lock:
            per_shard = all(log.check_invariant() for log in self._logs)
        return per_shard and is_exact_partition(
            Interval(0, self.total), self.completed + self.remaining()
        )

    def shard_log(self, index: int) -> ProgressLog:
        return self._logs[index]


@dataclass
class ElasticResult(ResultMixin):
    """Merged outcome of a multi-master elastic run."""

    found: list = field(default_factory=list)
    tested: int = 0
    elapsed: float = 0.0
    backend: str = "elastic"
    masters: int = 0
    workers: int = 0
    chunks: int = 0
    steals: int = 0  #: granted steal requests (ownership moved)
    steal_denied: int = 0  #: requests that found every queue empty
    stolen_candidates: int = 0  #: ids whose pending ownership moved
    duplicates: int = 0
    members_joined: int = 0
    members_left: int = 0
    progress: ShardBoard | None = None
    lanes: list = field(default_factory=list)  #: per-master RuntimeResults
    shards: list = field(default_factory=list)  #: the contiguous partition
    metrics: dict | None = None


class ShardCoordinator:
    """N cooperating masters over one keyspace, with work stealing.

    Splits ``[0, space_size)`` evenly into contiguous shards, runs one
    :class:`~repro.cluster.runtime.DistributedMaster` per shard (each
    with its own transport and :class:`~repro.cluster.runtime.
    PendingQueue`), and serves steal requests between them through the
    real wire messages — requests and grants are encoded/decoded even
    in-process, so the protocol's budget and symmetry are exercised on
    every steal.

    A lane that loses all its workers leaves its remaining spans in its
    pending queue, where surviving lanes steal them; the run only fails
    if the board is still incomplete once every lane has returned.
    """

    def __init__(
        self,
        target,
        masters: int = 2,
        workers_per_master: int = 2,
        worker_configs: list[list[WorkerConfig]] | None = None,
        chunk_size: int = 5000,
        stealing: bool = True,
        adaptive: bool = False,
        health: HealthConfig | None = None,
        name: str = "cluster",
    ) -> None:
        if masters < 1:
            raise ValueError("need at least one master")
        if worker_configs is not None and len(worker_configs) != masters:
            raise ValueError("worker_configs must have one list per master")
        if worker_configs is None:
            if workers_per_master < 1:
                raise ValueError("need at least one worker per master")
            worker_configs = [
                [WorkerConfig(name=f"m{i}w{j}") for j in range(workers_per_master)]
                for i in range(masters)
            ]
        self.target = target
        self.masters = masters
        self.worker_configs = worker_configs
        self.chunk_size = chunk_size
        self.stealing = stealing
        self.adaptive = adaptive
        self.health = health if health is not None else HealthConfig()
        self.name = name
        self._names = [f"{name}-m{i}" for i in range(masters)]
        self._pools: list[PendingQueue] = []
        self._recorder = None
        self._board: ShardBoard | None = None
        self._lane_done: list[bool] = []
        self._steal_lock = threading.Lock()
        self._steals = 0
        self._denied = 0
        self._stolen = 0

    # -- the inter-master stealing protocol ----------------------------- #
    def _steal_for(self, thief: int) -> list[Interval] | None:
        """One steal round on behalf of lane *thief*; returns the loot.

        The request and grant travel as protocol bytes: the victim's
        spans leave its queue *before* the grant is encoded, so no id is
        ever pending on two masters, and a grant that would not fit the
        <1KB budget is impossible by construction (``steal_half`` caps
        the span count).

        Tri-state return (the :meth:`~repro.cluster.runtime.
        DistributedMaster.run` steal contract): loot, ``None`` when every
        sibling queue is empty but a sibling lane is still running — its
        in-flight chunks may yet fail and be requeued, so the thief must
        keep polling instead of exiting — or ``[]`` once the cluster is
        drained (board complete, or every other lane finished and left
        nothing behind).
        """
        victim = None
        best = 0
        for j, pool in enumerate(self._pools):
            if j == thief:
                continue
            backlog = pool.total()
            if backlog > best:
                victim, best = j, backlog
        recorder = self._recorder
        if victim is None:
            board = self._board
            drained = (board is not None and board.is_complete) or all(
                done for j, done in enumerate(self._lane_done) if j != thief
            )
            if not drained:
                return None  # a sibling may still requeue work: retry
            with self._steal_lock:
                self._denied += 1
            if recorder is not None:
                recorder.counter(
                    MetricNames.STEAL_REQUESTS, thief=self._names[thief]
                )
                recorder.event(
                    MetricNames.EVENT_STEAL_DENIED, thief=self._names[thief]
                )
            return []
        request = cast(
            StealRequestMessage,
            decode_any(StealRequestMessage(thief=self._names[thief]).encode()),
        )
        if recorder is not None:
            recorder.counter(MetricNames.STEAL_REQUESTS, thief=request.thief)
        loot = self._pools[victim].steal_half()
        grant = cast(
            StealGrantMessage,
            decode_any(
                StealGrantMessage(
                    victim=self._names[victim], intervals=tuple(loot)
                ).encode()
            ),
        )
        if not grant.intervals:
            # The victim's queue drained between selection and the grab:
            # not a drained cluster, just a lost race — retry.
            with self._steal_lock:
                self._denied += 1
            if recorder is not None:
                recorder.event(MetricNames.EVENT_STEAL_DENIED, thief=request.thief)
            return None
        moved = sum(iv.size for iv in grant.intervals)
        with self._steal_lock:
            self._steals += 1
            self._stolen += moved
        if recorder is not None:
            recorder.counter(MetricNames.STEAL_CANDIDATES, moved)
            recorder.event(
                MetricNames.EVENT_STEAL_GRANTED,
                thief=request.thief,
                victim=grant.victim,
                candidates=moved,
                spans=len(grant.intervals),
            )
        return list(grant.intervals)

    # -- the run -------------------------------------------------------- #
    def run(self, stop_on_first: bool = False, recorder=None) -> ElasticResult:
        started = time.perf_counter()
        total = self.target.space_size
        shards = partition_evenly(Interval(0, total), self.masters)
        found_event = threading.Event()
        board = ShardBoard(
            total, shards, on_match=found_event.set if stop_on_first else None
        )
        self._pools = [PendingQueue() for _ in shards]
        self._recorder = recorder
        self._board = board
        self._lane_done = [False] * self.masters
        with self._steal_lock:
            self._steals = 0
            self._denied = 0
            self._stolen = 0

        results: list = [None] * self.masters
        errors: list = [None] * self.masters

        def lane(index: int) -> None:
            transport = InProcessTransport(
                self.worker_configs[index],
                heartbeat_interval=self.health.heartbeat_interval,
            )
            master = DistributedMaster(
                self.target,
                transport=transport,
                chunk_size=self.chunk_size,
                adaptive=self.adaptive,
                health=self.health,
                name=self._names[index],
            )
            try:
                results[index] = master.run(
                    interval=shards[index],
                    progress=cast(ProgressLog, board),
                    stop_on_first=stop_on_first,
                    recorder=recorder,
                    pending_pool=self._pools[index],
                    steal_source=(
                        (lambda: self._steal_for(index)) if self.stealing else None
                    ),
                    preempt=found_event.is_set if stop_on_first else None,
                )
                if stop_on_first and results[index].found:
                    found_event.set()
            except AllWorkersDeadError as exc:
                errors[index] = exc
                results[index] = exc.partial
            finally:
                self._lane_done[index] = True
                transport.close()

        threads = [
            threading.Thread(target=lane, args=(i,), name=self._names[i])
            for i in range(self.masters)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if not board.is_complete and not (stop_on_first and board.found):
            raise AllWorkersDeadError(
                "elastic run incomplete: "
                f"{board.done_count}/{total} covered, "
                f"{sum(1 for e in errors if e is not None)} lane(s) failed",
                progress=board,
                partial=None,
            )

        lanes = [r for r in results if r is not None]
        with self._steal_lock:
            steals, denied, stolen = self._steals, self._denied, self._stolen
        result = ElasticResult(
            found=board.found,
            tested=sum(lane.tested for lane in lanes),
            elapsed=time.perf_counter() - started,
            masters=self.masters,
            workers=sum(len(configs) for configs in self.worker_configs),
            chunks=sum(lane.chunks for lane in lanes),
            steals=steals,
            steal_denied=denied,
            stolen_candidates=stolen,
            duplicates=sum(lane.duplicates for lane in lanes),
            members_joined=sum(lane.members_joined for lane in lanes),
            members_left=sum(lane.members_left for lane in lanes),
            progress=board,
            lanes=lanes,
            shards=list(shards),
            metrics=recorder.export() if recorder is not None else None,
        )
        return result


class _LedgerRelay:
    """A :class:`ProgressLog` proxy that reports every novel mark.

    The elastic backend hands this to the master as the run's ledger;
    each ``mark_done`` both records coverage and forwards the piece to
    the scheduler's ``on_result`` hook as a
    :class:`~repro.core.backend.WorkUnitResult`, so the job's own
    durable log stays current *during* the slice (crash-safe
    checkpoints), not just at the end.
    """

    def __init__(self, log: ProgressLog, notify) -> None:
        self._log = log
        self._notify = notify

    def mark_done(self, piece: Interval, matches=()) -> None:
        self._log.mark_done(piece, matches)
        self._notify(piece, matches)

    @property
    def completed(self) -> list[Interval]:
        return self._log.completed

    @property
    def found(self) -> list:
        return self._log.found

    @property
    def is_complete(self) -> bool:
        return self._log.is_complete

    @property
    def done_count(self) -> int:
        return self._log.done_count

    def remaining(self) -> list[Interval]:
        return self._log.remaining()

    def check_invariant(self) -> bool:
        return self._log.check_invariant()


class ElasticBackend(ExecutionBackend):
    """The job scheduler's window onto an elastic cluster.

    Wraps a started master transport (TCP or in-process) in the
    :class:`~repro.core.backend.ExecutionBackend` contract: the
    scheduler keeps its DRR slicing, cooperative preemption, and
    durable per-chunk checkpointing, while execution happens on
    whatever workers are currently members — including ones that join
    mid-slice.  The transport is caller-owned in spirit but closed by
    :meth:`close` (the scheduler's shutdown path).
    """

    name = "elastic"

    def __init__(
        self,
        transport,
        chunk_size: int = 5000,
        adaptive: bool = True,
        health: HealthConfig | None = None,
        master_name: str = "service-master",
    ) -> None:
        self.transport = transport
        self.chunk_size = chunk_size
        self.adaptive = adaptive
        self.health = health if health is not None else HealthConfig()
        self.master_name = master_name

    @property
    def workers(self) -> int:
        return max(1, len(self.transport.workers()))

    def run(
        self,
        target,
        intervals,
        batch_size: int = 1 << 12,
        stop_on_first: bool = False,
        recorder=None,
        preempt=None,
        on_result=None,
        gather_batch=None,
    ) -> BackendOutcome:
        started = time.perf_counter()
        chunks = [iv for iv in intervals if iv]
        outcome = BackendOutcome(backend=self.name, workers=self.workers)
        if not chunks:
            outcome.elapsed = time.perf_counter() - started
            return outcome
        hull = Interval(
            min(c.start for c in chunks), max(c.stop for c in chunks)
        )
        log = ProgressLog(total=hull.stop)
        # Holes between the requested chunks are outside this slice:
        # pre-mark them (before the relay is attached) so the master
        # never dispatches them and the relay never reports them.
        for hole in subtract_interval(hull, chunks):
            log.mark_done(hole)

        def notify(piece: Interval, matches) -> None:
            if on_result is None:
                return
            on_result(
                WorkUnitResult(
                    interval=piece,
                    matches=list(matches),
                    tested=piece.size,
                    batches=1,
                    elapsed=0.0,
                    worker=self.master_name,
                )
            )

        ledger = _LedgerRelay(log, notify)
        master = DistributedMaster(
            target,
            transport=self.transport,
            chunk_size=min(self.chunk_size, max(c.size for c in chunks)),
            adaptive=self.adaptive,
            health=self.health,
            name=self.master_name,
        )
        try:
            result = master.run(
                interval=hull,
                progress=cast(ProgressLog, ledger),
                stop_on_first=stop_on_first,
                recorder=recorder,
                preempt=preempt,
            )
        except AllWorkersDeadError as exc:
            # The scheduler's own log was kept current by the relay; its
            # ledger — not this slice-local hull log with pre-marked
            # holes — is the one to checkpoint.
            exc.progress = None
            exc.partial = None
            raise
        covered = log.completed
        outcome.found = sorted(result.found)
        outcome.tested = result.tested
        outcome.chunks = result.chunks
        outcome.batches = result.chunks
        outcome.spans = result.chunks
        outcome.elapsed = time.perf_counter() - started
        outcome.unfinished = [
            part for c in chunks for part in subtract_interval(c, covered)
        ]
        outcome.metrics = result.metrics
        return outcome

    def close(self) -> None:
        self.transport.close()
