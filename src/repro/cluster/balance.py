"""The tuning step and the balancing rule (Section III).

For each node ``j`` the tuning step estimates the minimum number of
candidates ``n_j`` needed for a target efficiency and the peak throughput
``X_j``; then the dispatcher balances work so every node finishes together:

.. code-block:: text

    X_max = max_j X_j
    N_max = max_j (n_j * X_max / X_j)
    N_j   = N_max * (X_j / X_max)

A dispatcher subtree acts as a single worker with ``X = sum(X_j)`` and
``n = sum(N_j)`` — which is what makes the scheme compose hierarchically.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

from repro.cluster.node import ClusterNode, GPUWorker
from repro.gpusim.launch import min_batch_for_efficiency
from repro.keyspace import Interval, partition_weighted


@dataclass(frozen=True)
class TunedWorker:
    """Tuning-step output for one dispatch unit (device or subtree)."""

    name: str
    throughput: float  #: X_j, keys/second
    min_candidates: int  #: n_j for the target efficiency


def tune_device(worker: GPUWorker, target_efficiency: float) -> TunedWorker:
    """Tuning step for one device: probe its efficiency curve."""
    n_min = min_batch_for_efficiency(worker.launch, target_efficiency)
    return TunedWorker(worker.name, worker.throughput, n_min)


def tune_node(node: ClusterNode, target_efficiency: float = 0.95) -> TunedWorker:
    """Tuning step for a whole subtree (recursive; Section III).

    The subtree's minimum dispatch size is the sum of the balanced minima of
    its units: ``N_node = sum_j N_j`` with ``N_j = N_max * X_j / X_max``.
    """
    units = [tune_device(w, target_efficiency) for w in node.devices]
    units += [tune_node(c, target_efficiency) for c in node.children]
    x_total = sum(u.throughput for u in units)
    n_node = _balanced_total(units)
    return TunedWorker(node.name, x_total, n_node)


def minimum_dispatch_size(node: ClusterNode, target_efficiency: float = 0.95) -> int:
    """Smallest interval the root should dispatch at once."""
    return tune_node(node, target_efficiency).min_candidates


def _balanced_total(units: list[TunedWorker]) -> int:
    """``sum_j N_j`` after balancing the units against the fastest one."""
    if not units:
        return 0
    x_max = max(u.throughput for u in units)
    n_max = max(
        math.ceil(u.min_candidates * x_max / u.throughput) for u in units
    )
    return sum(math.ceil(n_max * u.throughput / x_max) for u in units)


def tuned_from_measured(
    measured: dict[str, float], min_candidates: int = 1
) -> list[TunedWorker]:
    """Tuning-step output from *measured* per-worker throughput.

    ``measured`` maps worker labels to keys/second, as produced by the
    execution backends' per-worker accounting
    (:meth:`repro.core.backend.BackendOutcome.measured_throughput`) or by
    a :class:`~repro.cluster.runtime.DistributedMaster` run — the real
    ``X_j`` of the balancing rule rather than a modelled one.  Workers
    with no measured throughput are dropped.
    """
    return [
        TunedWorker(name, rate, min_candidates)
        for name, rate in sorted(measured.items())
        if rate > 0
    ]


#: Smallest fraction of the fastest worker's throughput a measured ``X_j``
#: may contribute to the balancing rule.  A worker whose probe chunk was
#: too small (or raced a page cache, or reported before its clock ticked)
#: can legitimately measure ~0 keys/s; feeding that into the rule would
#: starve it with near-zero chunks forever.  The floor keeps every worker
#: in the rotation so the next measurement can correct the estimate.
THROUGHPUT_FLOOR_RATIO = 0.01


def clamp_measured_throughput(
    measured: dict[str, float],
    floor_ratio: float = THROUGHPUT_FLOOR_RATIO,
    recorder=None,
) -> dict[str, float]:
    """Clamp zero/near-zero measured ``X_j`` to a floor, with a warning.

    ``measured`` maps worker labels to keys/second *including* workers
    whose measurement came back as zero (see
    :meth:`repro.core.backend.BackendOutcome.raw_throughput`).  Any rate
    below ``floor_ratio * X_max`` is raised to that floor; each clamp
    emits a :class:`RuntimeWarning` and, when a recorder is given, a
    ``throughput.floor_clamped`` event — the adaptive dispatcher must
    never silently size a worker's chunk from a bogus measurement.
    """
    if not measured:
        return {}
    fastest = max(measured.values())
    if fastest <= 0:
        return {}
    floor = fastest * floor_ratio
    clamped: dict[str, float] = {}
    for name, rate in sorted(measured.items()):
        if rate < floor:
            warnings.warn(
                f"worker {name!r} measured {rate:.1f} keys/s; clamping to "
                f"{floor:.1f} ({floor_ratio:.0%} of the fastest) for the "
                "balancing rule",
                RuntimeWarning,
                stacklevel=2,
            )
            if recorder is not None:
                from repro.obs.schema import MetricNames

                recorder.event(
                    MetricNames.EVENT_THROUGHPUT_FLOOR,
                    worker=name,
                    measured=rate,
                    floor=floor,
                )
            rate = floor
        clamped[name] = rate
    return clamped


def adaptive_chunk_size(base: int, throughput: float, fastest: float) -> int:
    """Scale one worker's chunk by ``N_j = N_max * (X_j / X_max)``.

    ``base`` is the chunk granted to the fastest worker; a slower worker
    receives proportionally less so everyone finishes together.  Always at
    least one candidate.
    """
    if base <= 0:
        raise ValueError("base chunk must be positive")
    if fastest <= 0 or throughput <= 0:
        return base
    return max(1, math.ceil(base * min(1.0, throughput / fastest)))


def balanced_assignments(
    interval: Interval, units: list[TunedWorker]
) -> list[tuple[TunedWorker, Interval]]:
    """Partition an interval across units proportionally to throughput.

    This is the dispatcher's inner loop: "the ratio between the number of
    identifiers to be provided to different nodes should be equal to the
    ratio of the computing power of the nodes" (Section IV).
    """
    if not units:
        raise ValueError("no units to balance across")
    weights = [u.throughput for u in units]
    parts = partition_weighted(interval, weights)
    return list(zip(units, parts))


def expected_finish_times(
    assignments: list[tuple[TunedWorker, Interval]]
) -> dict[str, float]:
    """Per-unit compute time for an assignment (ideal, overhead-free)."""
    return {u.name: iv.size / u.throughput for u, iv in assignments}


def imbalance(assignments: list[tuple[TunedWorker, Interval]]) -> float:
    """Relative spread of finish times: 0 means perfectly balanced.

    The paper's rule drives this to ~0, which is what keeps no node "left
    idle while waiting for others".
    """
    times = list(expected_finish_times(assignments).values())
    if not times or max(times) == 0:
        return 0.0
    return (max(times) - min(times)) / max(times)
