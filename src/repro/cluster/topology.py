"""Network topologies, including the paper's evaluation cluster.

Section VI-A: "The system is heterogeneous and the performance power of the
network tree is deliberately unbalanced to demonstrate the system
flexibility":

* Node A (one GT 540M) dispatches to nodes B and C;
* Node B holds a GTX 660 and a GTX 550 Ti;
* Node C (one 8600M GT) dispatches to node D;
* Node D holds an 8800 GTS 512.
"""

from __future__ import annotations

import networkx as nx

from repro.cluster.node import ClusterNode, GPUWorker, LinkSpec
from repro.gpusim.device import PAPER_DEVICES
from repro.gpusim.launch import LaunchModel
from repro.gpusim.throughput import device_report
from repro.kernels.variants import HashAlgorithm, KernelVariant


def paper_worker(device_name: str, algorithm: HashAlgorithm, **launch_overrides) -> GPUWorker:
    """A worker for one of the Table VII GPUs, profiled by the simulator."""
    device = PAPER_DEVICES[device_name]
    variant = (
        KernelVariant.BYTE_PERM if algorithm is HashAlgorithm.MD5 else KernelVariant.OPTIMIZED
    )
    report = device_report(device, algorithm, variant)
    rate = report.achieved_mkeys * 1e6
    return GPUWorker(
        name=device_name,
        throughput=rate,
        theoretical=report.theoretical_mkeys * 1e6,
        device=device,
        launch=LaunchModel(peak_rate=rate, **launch_overrides),
    )


def build_paper_network(
    algorithm: HashAlgorithm = HashAlgorithm.MD5,
    link: LinkSpec | None = None,
) -> ClusterNode:
    """The A/B/C/D tree of Section VI-A, profiled for *algorithm*."""
    link = link or LinkSpec()
    node_b = ClusterNode(
        name="B",
        devices=[paper_worker("660", algorithm), paper_worker("550Ti", algorithm)],
        uplink=link,
    )
    node_d = ClusterNode(
        name="D", devices=[paper_worker("8800", algorithm)], uplink=link
    )
    node_c = ClusterNode(
        name="C",
        devices=[paper_worker("8600M", algorithm)],
        children=[node_d],
        uplink=link,
    )
    root = ClusterNode(
        name="A",
        devices=[paper_worker("540M", algorithm)],
        children=[node_b, node_c],
    )
    root.validate_tree()
    return root


def to_networkx(root: ClusterNode) -> nx.DiGraph:
    """Export the dispatch tree as a directed graph for analysis.

    Node attributes carry the achieved/theoretical aggregates; edges point
    from dispatcher to child.  Devices appear as leaf nodes prefixed with
    ``dev:`` so graph algorithms see the full fan-out.
    """
    graph = nx.DiGraph()

    def add(node: ClusterNode) -> None:
        graph.add_node(
            node.name,
            kind="node",
            local_throughput=node.local_throughput,
            aggregate_throughput=node.aggregate_throughput,
            aggregate_theoretical=node.aggregate_theoretical,
        )
        for dev in node.devices:
            dev_id = f"dev:{dev.name}"
            graph.add_node(dev_id, kind="device", throughput=dev.throughput)
            graph.add_edge(node.name, dev_id)
        for child in node.children:
            add(child)
            graph.add_edge(node.name, child.name, latency=child.uplink.latency)

    add(root)
    if not nx.is_arborescence(graph):
        raise ValueError("dispatch topology must be a tree")
    return graph


def tree_nodes(root: ClusterNode) -> list[str]:
    """Preorder node names (dispatchers only)."""
    return [n.name for n in root.subtree_nodes()]


def tree_devices(root: ClusterNode) -> list[str]:
    """Depth-first device names."""
    return [d.name for d in root.subtree_devices()]


def flat_network(workers: list[GPUWorker], name: str = "master") -> ClusterNode:
    """A single-level master with all devices attached (for comparisons)."""
    return ClusterNode(name=name, devices=list(workers))
