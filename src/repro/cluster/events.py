"""A minimal discrete-event simulation engine.

Just enough machinery for the dispatch protocol: a clock, a priority queue
of ``(time, sequence, callback)`` events, and deterministic FIFO ordering
for simultaneous events.  Callbacks schedule further events; the run ends
when the queue drains (or a horizon is hit).
"""

from __future__ import annotations

import heapq
from typing import Callable


class Simulator:
    """Event queue + clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* at ``now + delay`` (ties break in FIFO order)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback))
        self._seq += 1

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Run *callback* at an absolute time (must not be in the past)."""
        self.schedule(time - self.now, callback)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Drain the queue; returns the final clock value.

        ``until`` stops the clock at a horizon without executing later
        events; ``max_events`` guards against runaway callback loops.
        """
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            callback()
            self._processed += 1
            if self._processed > max_events:
                raise RuntimeError("event budget exhausted — callback loop?")
        return self.now

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed
