"""Cluster substrate: the hierarchical, heterogeneous dispatch network.

The paper's evaluation runs on four PCs in a tree (A dispatches to B and C;
C dispatches to D) holding five GPUs of wildly different throughput.  This
package provides:

* :mod:`repro.cluster.events` — a minimal discrete-event simulation engine;
* :mod:`repro.cluster.node` — devices, nodes, links and their aggregates;
* :mod:`repro.cluster.topology` — tree construction, the paper's network,
  and a networkx view for analysis;
* :mod:`repro.cluster.balance` — the tuning + balancing rule of Section III
  (``N_j = N_max * X_j / X_max``);
* :mod:`repro.cluster.simulate` — the DES of a full cracking run, producing
  the whole-network throughput and efficiency of Table IX;
* :mod:`repro.cluster.fault` — node-failure injection and repartitioning
  (the paper's minimum fault-tolerance model and its future-work concern);
* :mod:`repro.cluster.local` — a *real* parallel backend executing the same
  dispatch protocol across CPU processes with the vectorized kernels;
* :mod:`repro.cluster.transport` — the length-prefixed TCP master/worker
  transport speaking the same wire protocol across real sockets;
* :mod:`repro.cluster.health` — heartbeat liveness, per-worker deadlines,
  reconnect backoff, and the quarantine circuit breaker;
* :mod:`repro.cluster.chaos` — seeded fault injection (drops, delays,
  duplicates, corruption) for both transport seams;
* :mod:`repro.cluster.elastic` — dynamic membership (join/leave/evict),
  multi-master keyspace sharding, and inter-master work stealing
  (see docs/ELASTICITY.md).
"""

from repro.cluster.events import Simulator
from repro.cluster.node import ClusterNode, GPUWorker, LinkSpec
from repro.cluster.topology import build_paper_network, to_networkx, tree_nodes, tree_devices
from repro.cluster.balance import (
    TunedWorker,
    tune_node,
    balanced_assignments,
    minimum_dispatch_size,
)
from repro.cluster.simulate import ClusterRunResult, simulate_run
from repro.cluster.fault import FaultPlan, FaultToleranceReport, run_with_faults
from repro.cluster.local import LocalCluster, LocalCrackOutcome
from repro.cluster.dispatch import AdaptiveDispatcher, RoundRecord, WorkerEstimate
from repro.cluster.protocol import (
    ControlMessage,
    EvictMessage,
    GatherMessage,
    HeartbeatMessage,
    JoinMessage,
    LeaveMessage,
    ScatterMessage,
    StealGrantMessage,
    StealRequestMessage,
    WelcomeMessage,
    decode_any,
)
from repro.cluster.health import BackoffPolicy, HealthConfig, HealthMonitor
from repro.cluster.chaos import ChaosConfig, ChaosStream, ChaosTransport
from repro.cluster.transport import (
    EvictedError,
    TcpMasterTransport,
    WorkerClient,
    parse_address,
)
from repro.cluster.runtime import (
    AllWorkersDeadError,
    DistributedMaster,
    InProcessTransport,
    PendingQueue,
    RuntimeResult,
    WorkerConfig,
    execute_scatter,
)
from repro.cluster.elastic import (
    ElasticBackend,
    ElasticResult,
    MemberRegistry,
    ShardBoard,
    ShardCoordinator,
)

__all__ = [
    "AllWorkersDeadError",
    "DistributedMaster",
    "InProcessTransport",
    "PendingQueue",
    "RuntimeResult",
    "WorkerConfig",
    "execute_scatter",
    "ElasticBackend",
    "ElasticResult",
    "MemberRegistry",
    "ShardBoard",
    "ShardCoordinator",
    "EvictedError",
    "ControlMessage",
    "EvictMessage",
    "JoinMessage",
    "LeaveMessage",
    "WelcomeMessage",
    "StealGrantMessage",
    "StealRequestMessage",
    "BackoffPolicy",
    "HealthConfig",
    "HealthMonitor",
    "ChaosConfig",
    "ChaosStream",
    "ChaosTransport",
    "TcpMasterTransport",
    "WorkerClient",
    "parse_address",
    "AdaptiveDispatcher",
    "RoundRecord",
    "WorkerEstimate",
    "GatherMessage",
    "HeartbeatMessage",
    "ScatterMessage",
    "decode_any",
    "Simulator",
    "ClusterNode",
    "GPUWorker",
    "LinkSpec",
    "build_paper_network",
    "to_networkx",
    "tree_nodes",
    "tree_devices",
    "TunedWorker",
    "tune_node",
    "balanced_assignments",
    "minimum_dispatch_size",
    "ClusterRunResult",
    "simulate_run",
    "FaultPlan",
    "FaultToleranceReport",
    "run_with_faults",
    "LocalCluster",
    "LocalCrackOutcome",
]
