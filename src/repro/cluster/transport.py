"""Real TCP master/worker transport for the dispatch protocol.

The in-process runtime (:mod:`repro.cluster.runtime`) proved the protocol
over thread queues; this module carries the *same* wire messages
(:mod:`repro.cluster.protocol`) across real sockets, the way the paper's
cluster and HashKitty-style client/server crackers actually run:

* **Framing** — every message travels as a length + CRC32 prefixed frame.
  The CRC turns random corruption into a *detected drop* (the liveness
  layer retries it) instead of a silently wrong decode; an insane length
  prefix means the byte stream itself is lost, which closes the
  connection and lets the worker's reconnect logic take over.
* **Registration** — a worker's first frame is a
  :class:`~repro.cluster.protocol.JoinMessage` (legacy clients may still
  open with a :class:`~repro.cluster.protocol.HeartbeatMessage`) carrying
  its name; the master keys the connection by that name, so a
  reconnecting worker replaces its old (dead) connection and keeps its
  identity, throughput history, and quarantine record.
* **Master side** — :class:`TcpMasterTransport` funnels every worker's
  frames into one inbound queue shaped exactly like the in-process
  transport's, so :class:`~repro.cluster.runtime.DistributedMaster` runs
  unchanged over either.
* **Worker side** — :class:`WorkerClient` executes scatter assignments on
  a local execution backend, beacons heartbeats from a side thread,
  honours ``cancel`` control frames at batch boundaries, and reconnects
  with exponential backoff + jitter when the link drops.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.cluster.health import BackoffPolicy
from repro.cluster.protocol import (
    ControlMessage,
    EvictMessage,
    HeartbeatMessage,
    JoinMessage,
    MESSAGE_BUDGET,
    ScatterMessage,
    WelcomeMessage,
    decode_any,
)
from repro.obs.schema import MetricNames

#: length (4 bytes) + CRC32 of the payload (4 bytes), network order.
FRAME_HEADER = struct.Struct("!II")

#: Hard ceiling on a frame payload.  Protocol messages respect the <1KB
#: budget, so anything bigger is a desynchronized or hostile stream.
MAX_FRAME_PAYLOAD = 4 * MESSAGE_BUDGET

#: How long the master waits for a fresh connection's registration frame.
REGISTER_TIMEOUT = 5.0


class FrameError(ValueError):
    """The byte stream cannot be framed any more (fatal for the link)."""


class ConnectionClosed(ConnectionError):
    """The peer hung up (or the stream desynchronized beyond recovery)."""


class EvictedError(RuntimeError):
    """The master revoked this worker's membership with an ``EvictMessage``.

    Eviction is *terminal*: the master will answer every subsequent
    heartbeat or join attempt from this name with another eviction frame,
    so reconnecting can never succeed.  :meth:`WorkerClient.run` raises
    this instead of burning its reconnect budget against a closed door;
    the CLI surfaces the reason and exits non-zero.
    """

    def __init__(self, worker: str, reason: str = "") -> None:
        detail = f"worker {worker!r} was evicted by the master"
        if reason:
            detail += f": {reason}"
        super().__init__(detail)
        self.worker = worker
        self.reason = reason


def encode_frame(payload: bytes) -> bytes:
    """Wrap one protocol message in a length+CRC frame."""
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds "
                         f"{MAX_FRAME_PAYLOAD}")
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary chunking of the stream.

    ``feed`` returns every *complete, checksum-valid* payload.  A frame
    whose CRC does not match is counted on :attr:`corrupt` and skipped —
    the length prefix still delimits it, so the stream stays in sync.  A
    length prefix beyond :data:`MAX_FRAME_PAYLOAD` raises
    :class:`FrameError`: framing itself is lost and the connection must
    be torn down.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.corrupt = 0

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer.extend(data)
        out: list[bytes] = []
        while len(self._buffer) >= FRAME_HEADER.size:
            length, crc = FRAME_HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_PAYLOAD:
                raise FrameError(f"frame length {length} exceeds "
                                 f"{MAX_FRAME_PAYLOAD}: stream desynchronized")
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[FRAME_HEADER.size:end])
            del self._buffer[:end]
            if zlib.crc32(payload) != crc:
                self.corrupt += 1
                continue
            out.append(payload)
        return out


class MessageStream:
    """A framed, thread-safe message pipe over one connected socket."""

    def __init__(self, sock: socket.socket) -> None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - not a TCP socket (tests)
            pass
        self._sock = sock
        self._decoder = FrameDecoder()
        self._pending: list[bytes] = []
        self._send_lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def corrupt_frames(self) -> int:
        return self._decoder.corrupt

    def send(self, payload: bytes) -> None:
        self.send_raw(encode_frame(payload))

    def send_raw(self, frame: bytes) -> None:
        """Ship pre-framed bytes (the chaos wrapper's corruption hook)."""
        try:
            with self._send_lock:
                self._sock.sendall(frame)
                self.bytes_sent += len(frame)
        except OSError as exc:
            raise ConnectionClosed(f"send failed: {exc}") from exc

    def recv(self, timeout: float | None = None) -> bytes | None:
        """Next payload, ``None`` on timeout; :class:`ConnectionClosed` on
        EOF or an unrecoverable framing fault."""
        if self._pending:
            return self._pending.pop(0)
        self._sock.settimeout(timeout)
        while True:
            try:
                data = self._sock.recv(65536)
            except (TimeoutError, socket.timeout):
                return None
            except OSError as exc:
                raise ConnectionClosed(f"recv failed: {exc}") from exc
            if not data:
                raise ConnectionClosed("peer closed the connection")
            self.bytes_received += len(data)
            try:
                frames = self._decoder.feed(data)
            except FrameError as exc:
                raise ConnectionClosed(str(exc)) from exc
            if frames:
                self._pending.extend(frames[1:])
                return frames[0]

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass


class TcpMasterTransport:
    """Listening side: accepts workers, funnels their frames to one queue.

    Presents the master-transport interface the
    :class:`~repro.cluster.runtime.DistributedMaster` gather loop drives:
    ``poll(timeout)`` yields ``(worker, payload)`` tuples (``payload is
    None`` marks a disconnect), ``send(worker, payload)`` frames bytes to
    one worker, ``workers()`` lists the currently connected names.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        recorder=None,
        stream_wrapper=None,
    ) -> None:
        self._listener = socket.create_server((host, port))
        self.address = self._listener.getsockname()[:2]
        self._recorder = recorder
        self._stream_wrapper = stream_wrapper
        self._inbound: queue.Queue = queue.Queue()
        self._streams: dict[str, MessageStream] = {}
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._accept_thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    def start(self) -> "TcpMasterTransport":
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="tcp-master-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def poll(self, timeout: float) -> tuple[str, bytes | None] | None:
        try:
            return self._inbound.get(timeout=timeout)
        except queue.Empty:
            return None

    def send(self, worker: str, payload: bytes) -> bool:
        with self._lock:
            stream = self._streams.get(worker)
        if stream is None:
            return False
        try:
            stream.send(payload)
        except ConnectionClosed:
            self._drop(worker, stream)
            return False
        return True

    def broadcast(self, payload: bytes) -> int:
        """Best-effort send to every connected worker; returns the count."""
        return sum(1 for worker in self.workers() if self.send(worker, payload))

    def workers(self) -> list[str]:
        with self._lock:
            return sorted(self._streams)

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until *count* workers have registered (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.workers()) >= count:
                return True
            time.sleep(0.02)
        return len(self.workers()) >= count

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._lock:
            streams = list(self._streams.values())
            self._streams.clear()
        for stream in streams:
            stream.close()

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        stream = MessageStream(conn)
        if self._stream_wrapper is not None:
            stream = self._stream_wrapper(stream)
        name = None
        try:
            hello = stream.recv(timeout=REGISTER_TIMEOUT)
            if hello is None:
                return
            msg = decode_any(hello)
            if not isinstance(msg, (JoinMessage, HeartbeatMessage)):
                return  # not speaking the registration protocol
            name = msg.node
            with self._lock:
                old = self._streams.get(name)
                self._streams[name] = stream
            if old is not None:
                old.close()
            if self._recorder is not None:
                self._recorder.event(
                    MetricNames.EVENT_WORKER_CONNECTED, worker=name
                )
            self._inbound.put((name, hello))
            while not self._closed.is_set():
                payload = stream.recv(timeout=1.0)
                if payload is None:
                    continue
                self._inbound.put((name, payload))
        except (ConnectionClosed, ValueError, OSError):
            pass
        finally:
            if name is not None:
                self._drop(name, stream)
            stream.close()

    def _drop(self, worker: str, stream: MessageStream) -> None:
        with self._lock:
            if self._streams.get(worker) is stream:
                del self._streams[worker]
            else:
                return  # a newer connection already replaced this one
        self._inbound.put((worker, None))


# ---------------------------------------------------------------------- #


@dataclass
class WorkerStats:
    """What one :class:`WorkerClient` lifetime accomplished."""

    chunks: int = 0
    tested: int = 0
    cancelled: int = 0  #: cancel control frames honoured
    reconnects: int = 0
    connection_failures: int = 0
    heartbeats: int = 0
    corrupt_frames: int = 0
    welcomes: int = 0  #: WelcomeMessage acks received on registration
    cluster_members: int = 0  #: member count from the latest welcome
    found: list = field(default_factory=list)


class WorkerClient:
    """A TCP worker node: connect, register, crack, heartbeat, reconnect.

    ``repro worker --connect HOST:PORT`` is a thin CLI shell around this
    class.  The client survives master restarts and dropped links: every
    disconnect triggers a reconnect with exponential backoff + jitter,
    bounded by ``max_failures`` *consecutive* failures; any successful
    connection resets the count.  A ``shutdown`` control frame ends the
    client cleanly; a ``cancel`` frame aborts the in-flight assignment at
    the next batch boundary and replies with the completed prefix so the
    master's ledger stays exact.  An ``EvictMessage`` is terminal: the
    client stops immediately and :meth:`run` raises
    :class:`EvictedError` rather than reconnecting into a master that
    has revoked its membership.
    """

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        backend: str = "serial",
        pool_workers: int = 1,
        batch_size: int = 1 << 14,
        heartbeat_interval: float = 0.2,
        backoff: BackoffPolicy | None = None,
        max_failures: int = 8,
        chaos=None,
        slowdown: float = 0.0,
        recorder=None,
        rng=None,
    ) -> None:
        from repro.core.backend import resolve_backend

        if not name:
            raise ValueError("worker needs a non-empty name")
        self.name = name
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self.heartbeat_interval = heartbeat_interval
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.max_failures = max_failures
        self.chaos = chaos
        self.slowdown = slowdown
        self.recorder = recorder
        self.rng = rng
        self.stats = WorkerStats()
        self.backend_label = backend
        self._backend = resolve_backend(backend, workers=pool_workers)
        self._shutdown = threading.Event()
        self._cancel = threading.Event()
        self._busy = threading.Event()
        self._rate = 0
        self._evicted: str | None = None

    def stop(self) -> None:
        """Ask the client to exit after the current assignment."""
        self._shutdown.set()

    # ------------------------------------------------------------------ #
    def run(self) -> WorkerStats:
        failures = 0
        connected_before = False
        while not self._shutdown.is_set():
            try:
                sock = socket.create_connection((self.host, self.port), timeout=5)
            except OSError:
                failures += 1
                self.stats.connection_failures += 1
                if failures > self.max_failures:
                    break
                time.sleep(self.backoff.delay(failures - 1, self.rng))
                continue
            stream = MessageStream(sock)
            if self.chaos is not None:
                from repro.cluster.chaos import ChaosStream

                stream = ChaosStream(stream, self.chaos, self.recorder, self.rng)
            if connected_before:
                self.stats.reconnects += 1
                if self.recorder is not None:
                    self.recorder.counter(
                        MetricNames.CLUSTER_RECONNECTS, worker=self.name
                    )
            connected_before = True
            try:
                self._serve_connection(stream)
                failures = 0
            except ConnectionClosed:
                failures += 1
                self.stats.connection_failures += 1
                if failures > self.max_failures:
                    break
                time.sleep(self.backoff.delay(failures - 1, self.rng))
            finally:
                self.stats.corrupt_frames += getattr(stream, "corrupt_frames", 0)
                stream.close()
        if self._evicted is not None:
            raise EvictedError(self.name, self._evicted)
        return self.stats

    # ------------------------------------------------------------------ #
    def _heartbeat(self) -> HeartbeatMessage:
        return HeartbeatMessage(
            node=self.name, busy=self._busy.is_set(), rate_keys_per_s=self._rate
        )

    def _heartbeat_loop(self, stream, link_up: threading.Event) -> None:
        while link_up.is_set() and not self._shutdown.is_set():
            try:
                stream.send(self._heartbeat().encode())
                self.stats.heartbeats += 1
            except ConnectionClosed:
                return
            link_up.wait(0)  # fairness point
            time.sleep(self.heartbeat_interval)

    def _reader_loop(self, stream, work_q: queue.Queue, link_up: threading.Event):
        try:
            while link_up.is_set() and not self._shutdown.is_set():
                payload = stream.recv(timeout=0.5)
                if payload is None:
                    continue
                try:
                    msg = decode_any(payload)
                except ValueError:
                    continue  # corrupt payload inside a valid frame: drop
                if isinstance(msg, ScatterMessage):
                    work_q.put(msg)
                elif isinstance(msg, WelcomeMessage):
                    self.stats.welcomes += 1
                    self.stats.cluster_members = msg.members
                elif isinstance(msg, EvictMessage):
                    # Terminal: membership is revoked, reconnecting would
                    # only earn another eviction frame.
                    self._evicted = msg.reason or "membership revoked"
                    self._shutdown.set()
                    work_q.put(None)
                    return
                elif isinstance(msg, ControlMessage):
                    if msg.command == "cancel":
                        self._cancel.set()
                        self.stats.cancelled += 1
                    elif msg.command == "shutdown":
                        self._shutdown.set()
                        work_q.put(None)
                        return
        except ConnectionClosed as exc:
            work_q.put(exc)

    def _join(self) -> JoinMessage:
        return JoinMessage(
            node=self.name, rate_keys_per_s=self._rate, backend=self.backend_label
        )

    def _serve_connection(self, stream) -> None:
        from repro.cluster.runtime import execute_scatter

        stream.send(self._join().encode())
        work_q: queue.Queue = queue.Queue()
        link_up = threading.Event()
        link_up.set()
        threads = [
            threading.Thread(
                target=self._heartbeat_loop, args=(stream, link_up), daemon=True
            ),
            threading.Thread(
                target=self._reader_loop, args=(stream, work_q, link_up), daemon=True
            ),
        ]
        for t in threads:
            t.start()
        try:
            while not self._shutdown.is_set():
                item = work_q.get()
                if item is None:
                    return  # shutdown control frame
                if isinstance(item, ConnectionClosed):
                    raise item
                self._cancel.clear()
                self._busy.set()
                try:
                    replies, tested, elapsed = execute_scatter(
                        item,
                        self._backend,
                        batch_size=self.batch_size,
                        preempt=self._cancel.is_set,
                        slowdown=self.slowdown,
                    )
                finally:
                    self._busy.clear()
                if elapsed > 0:
                    self._rate = int(tested / elapsed)
                self.stats.chunks += 1
                self.stats.tested += tested
                for reply in replies:
                    self.stats.found.extend(reply.matches)
                    stream.send(reply.encode())
        finally:
            link_up.clear()


def parse_address(text: str) -> tuple[str, int]:
    """``HOST:PORT`` or ``tcp://HOST:PORT`` -> ``(host, port)``."""
    spec = text
    if spec.startswith("tcp://"):
        spec = spec[len("tcp://"):]
    elif "//" in spec:
        raise ValueError(f"address {text!r} has an unsupported scheme (use tcp://)")
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {text!r} is not HOST:PORT")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"address {text!r} has a non-numeric port") from None
