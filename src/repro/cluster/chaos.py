"""Fault injection for the cluster transport: drops, delays, dups, garbage.

The fault-tolerance claims in docs/FAULT_TOLERANCE.md are only worth
anything if they survive a hostile network, so this module wraps the two
transport seams with configurable, *seeded* (reproducible) faults:

* :class:`ChaosStream` wraps a :class:`~repro.cluster.transport.
  MessageStream` — send-side faults on a real socket: messages are
  dropped before framing, delayed, duplicated, or shipped with flipped
  payload bytes (which the receiver's CRC turns into a detected drop).
* :class:`ChaosTransport` wraps a master transport (TCP or in-process) —
  faults on both the scatter direction (``send``) and the gather
  direction (``poll``), including held-back delayed deliveries and
  corrupted payloads *inside* valid frames (which exercises the decoder
  tolerance path rather than the CRC path).

Every injected fault is counted on a :class:`repro.obs.Recorder` under
the ``chaos.*`` metric names, so a chaos run's exported metrics document
both what the network did and how the liveness layer answered.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.cluster.transport import encode_frame
from repro.obs.schema import MetricNames


@dataclass(frozen=True)
class ChaosConfig:
    """Per-message fault probabilities (each rolled independently)."""

    drop: float = 0.0  #: P(message silently dropped)
    delay: float = 0.0  #: P(message delayed by ``delay_seconds``)
    delay_seconds: float = 0.2
    duplicate: float = 0.0  #: P(message delivered twice)
    corrupt: float = 0.0  #: P(message bytes flipped in flight)
    seed: int | None = None

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")

    @property
    def active(self) -> bool:
        return any((self.drop, self.delay, self.duplicate, self.corrupt))

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse a CLI spec: ``drop=0.1,delay=0.3,delay-seconds=0.5,
        duplicate=0.05,corrupt=0.02,seed=7``."""
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"chaos spec entry {part!r} is not key=value")
            key = key.strip().replace("-", "_")
            if key == "seed":
                kwargs[key] = int(value)
            elif key in ("drop", "delay", "delay_seconds", "duplicate", "corrupt"):
                kwargs[key] = float(value)
            else:
                raise ValueError(f"unknown chaos knob {key!r}")
        return cls(**kwargs)


def _flip_bytes(data: bytes, rng: random.Random, count: int = 2) -> bytes:
    """Return *data* with up to *count* random bytes XOR-flipped."""
    if not data:
        return data
    out = bytearray(data)
    for _ in range(count):
        pos = rng.randrange(len(out))
        out[pos] ^= 0xFF
    return bytes(out)


class _FaultRoller:
    """Shared dice-rolling + counting between the two wrappers."""

    def __init__(self, config: ChaosConfig, recorder=None, rng=None) -> None:
        self.config = config
        self.recorder = recorder
        self.rng = rng if rng is not None else config.rng()
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self.corrupted = 0

    def _count(self, what: str, metric: str) -> None:
        setattr(self, what, getattr(self, what) + 1)
        if self.recorder is not None:
            self.recorder.counter(metric)

    def roll_drop(self) -> bool:
        if self.rng.random() < self.config.drop:
            self._count("dropped", MetricNames.CHAOS_DROPPED)
            return True
        return False

    def roll_delay(self) -> bool:
        if self.rng.random() < self.config.delay:
            self._count("delayed", MetricNames.CHAOS_DELAYED)
            return True
        return False

    def roll_duplicate(self) -> bool:
        if self.rng.random() < self.config.duplicate:
            self._count("duplicated", MetricNames.CHAOS_DUPLICATED)
            return True
        return False

    def roll_corrupt(self) -> bool:
        if self.rng.random() < self.config.corrupt:
            self._count("corrupted", MetricNames.CHAOS_CORRUPTED)
            return True
        return False


class ChaosStream:
    """A :class:`~repro.cluster.transport.MessageStream` with send faults.

    Corruption flips bytes *inside the framed payload* while keeping the
    original (now wrong) CRC, so the peer's decoder detects and drops the
    frame — the realistic bit-rot path.  Receive passes through clean:
    chaos on a socket pair only needs to mangle one direction to exercise
    both endpoints' recovery.
    """

    def __init__(self, stream, config: ChaosConfig, recorder=None, rng=None) -> None:
        self.inner = stream
        self.faults = _FaultRoller(config, recorder, rng)

    def send(self, payload: bytes) -> None:
        if self.faults.roll_drop():
            return
        if self.faults.roll_delay():
            time.sleep(self.faults.config.delay_seconds)
        if self.faults.roll_corrupt():
            frame = bytearray(encode_frame(payload))
            start = 8  # leave the header intact: CRC must catch the flip
            pos = self.faults.rng.randrange(start, len(frame))
            frame[pos] ^= 0xFF
            self.inner.send_raw(bytes(frame))
            return
        self.inner.send(payload)
        if self.faults.roll_duplicate():
            self.inner.send(payload)

    def recv(self, timeout: float | None = None):
        return self.inner.recv(timeout)

    def close(self) -> None:
        self.inner.close()

    def __getattr__(self, name):
        return getattr(self.inner, name)


class ChaosTransport:
    """A master transport wrapper injecting faults in both directions.

    Works over any transport speaking the ``poll/send/workers`` interface
    (TCP or the in-process queues), which is what the fault-injection
    test suite drives: scatters can vanish or arrive corrupted, gathers
    can be dropped, delayed, duplicated, or mangled — and the master's
    liveness layer must still finish the search with exact coverage.
    """

    def __init__(self, inner, config: ChaosConfig, recorder=None,
                 clock=time.monotonic) -> None:
        self.inner = inner
        self.faults = _FaultRoller(config, recorder)
        self._clock = clock
        self._held: list = []  # (release_time, item) held-back deliveries

    # -- master-transport interface ------------------------------------- #
    def start(self):
        if hasattr(self.inner, "start"):
            self.inner.start()
        return self

    def poll(self, timeout: float):
        now = self._clock()
        for i, (release, item) in enumerate(self._held):
            if release <= now:
                del self._held[i]
                return item
        item = self.inner.poll(timeout)
        if item is None:
            return None
        worker, payload = item
        if payload is None:  # disconnect markers are never chaos targets
            return item
        if self.faults.roll_drop():
            return None
        if self.faults.roll_corrupt():
            payload = _flip_bytes(payload, self.faults.rng)
            item = (worker, payload)
        if self.faults.roll_duplicate():
            self._held.append((self._clock(), (worker, payload)))
        if self.faults.roll_delay():
            self._held.append(
                (self._clock() + self.faults.config.delay_seconds, item)
            )
            return None
        return item

    def send(self, worker: str, payload: bytes) -> bool:
        if self.faults.roll_drop():
            return True  # looks sent; the liveness layer must notice
        if self.faults.roll_corrupt():
            payload = _flip_bytes(payload, self.faults.rng)
        ok = self.inner.send(worker, payload)
        if ok and self.faults.roll_duplicate():
            self.inner.send(worker, payload)
        return ok

    def workers(self):
        return self.inner.workers()

    def close(self) -> None:
        self.inner.close()

    def __getattr__(self, name):
        return getattr(self.inner, name)
