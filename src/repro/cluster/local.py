"""A real parallel backend: the dispatch protocol on CPU workers.

This is the "closest hardware we actually have" counterpart of the GPU
cluster: a master scatters id intervals to a pool of workers — threads or
processes, selected through :mod:`repro.core.backend` — each running the
vectorized search kernels of :mod:`repro.apps.cracking` on its own core,
and gathers the (index, key) matches.  The protocol is the same
Section III pattern the simulator models — small scatter payloads,
independent interval searches, a trivial merge — so the examples can
demonstrate real speedups and real cracks.

With ``adaptive=True`` the master first probes each worker's real
throughput ``X_j`` (the paper's tuning step) and sizes subsequent chunks
by the balancing rule ``N_j = N_max * (X_j / X_max)`` via
:mod:`repro.cluster.balance`.  A worker whose probe measures ~0 keys/s is
clamped to a throughput floor (with a warning) rather than starved.

Pass a :class:`repro.obs.Recorder` to :meth:`LocalCluster.crack` to
capture the probe/scatter/search/gather phase timings, per-worker ``X_j``
gauges, and the rebalance decision (before/after chunk sizes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.apps.cracking import CrackTarget
from repro.core.backend import (
    ExecutionBackend,
    default_worker_count,
    resolve_backend,
)
from repro.core.results import ResultMixin
from repro.keyspace import Interval, split_interval
from repro.obs.schema import MetricNames


@dataclass
class LocalCrackOutcome(ResultMixin):
    """Result of a local parallel crack (unified ``RunResult`` surface)."""

    found: list = field(default_factory=list)  #: sorted (index, key) pairs
    tested: int = 0
    chunks_dispatched: int = 0
    elapsed: float = 0.0
    workers: int = 1
    backend: str = "serial"
    #: Per-worker measured throughput (keys/s) — the real ``X_j``.
    worker_throughput: dict = field(default_factory=dict)
    metrics: dict | None = None  #: repro-metrics/v2 payload when recorded


class LocalCluster:
    """Master + worker-pool executor for crack targets.

    ``workers=1`` runs inline (deterministic, no pools — useful under test
    runners); more workers use the configured execution backend
    (``"process"`` by default via ``"auto"``, or ``"thread"``/``"serial"``
    explicitly).  Chunks are served from a shared queue, so heterogeneous
    core speeds self-balance the way the paper's dynamic dispatching does.
    """

    def __init__(
        self,
        workers: int | None = None,
        batch_size: int = 1 << 14,
        backend: str | ExecutionBackend = "auto",
    ) -> None:
        if isinstance(backend, ExecutionBackend):
            workers = backend.workers
        elif workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError("need at least one worker")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.workers = workers
        self.batch_size = batch_size
        self.backend = resolve_backend(backend, workers=workers)
        self.workers = self.backend.workers

    def close(self) -> None:
        """Release the backend's warm worker pool (idempotent)."""
        self.backend.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------ #
    def crack(
        self,
        target: CrackTarget,
        interval: Interval | None = None,
        chunk_size: int | None = None,
        stop_on_first: bool = False,
        adaptive: bool = False,
        recorder=None,
        gather_batch: int | None = None,
    ) -> LocalCrackOutcome:
        """Search an interval (default: the whole space) in parallel.

        ``stop_on_first`` stops dispatching new chunks once a match has
        been gathered (in-flight chunks still complete), the paper's "stop
        condition ... a satisfactory number of solutions has been found".
        ``adaptive`` runs the measured tuning step first and sizes chunks
        by each worker's real throughput.  ``gather_batch`` sets the
        chunks-per-reply span width (``None``: the backend's tuned or
        heuristic default).  ``recorder`` captures phase timings and
        rebalance decisions (see :mod:`repro.obs`).
        """
        interval = interval if interval is not None else Interval(0, target.space_size)
        if chunk_size is None:
            tuned = getattr(self.backend, "tuned", None)
            if tuned is not None and tuned.chunk_size <= interval.size:
                # The sweep's measured-best chunk for this backend shape.
                chunk_size = tuned.chunk_size
            else:
                # A few chunks per worker keeps the pool busy, tail short.
                chunk_size = max(1, interval.size // (self.workers * 4) or 1)
        started = time.perf_counter()
        outcome = LocalCrackOutcome(workers=self.workers, backend=self.backend.name)
        if adaptive and interval.size > 4 * chunk_size:
            interval = self._tuned_probe(target, interval, chunk_size, outcome, recorder)
            tuned = self._adaptive_chunk(chunk_size, outcome.worker_throughput)
            if recorder is not None:
                recorder.event(
                    MetricNames.EVENT_REBALANCE,
                    before=chunk_size,
                    after=tuned,
                    workers=len(outcome.worker_throughput),
                )
            chunk_size = tuned
        chunks = split_interval(interval, chunk_size)
        result = self.backend.run(
            target,
            chunks,
            batch_size=self.batch_size,
            stop_on_first=stop_on_first,
            recorder=recorder,
            gather_batch=gather_batch,
        )
        outcome.found.extend(result.found)
        outcome.found.sort()
        outcome.tested += result.tested
        outcome.chunks_dispatched += result.chunks
        for name, rate in result.measured_throughput().items():
            outcome.worker_throughput[name] = rate
        outcome.elapsed = time.perf_counter() - started
        if recorder is not None:
            recorder.counter(MetricNames.CLUSTER_CHUNKS, outcome.chunks_dispatched)
            outcome.metrics = recorder.export()
        return outcome

    # ------------------------------------------------------------------ #
    def _tuned_probe(
        self,
        target: CrackTarget,
        interval: Interval,
        chunk_size: int,
        outcome: LocalCrackOutcome,
        recorder=None,
    ) -> Interval:
        """Measure per-worker ``X_j`` on a leading slice of the interval.

        The probe's candidates count toward the search (its matches and
        counters are merged), so no work is wasted — this is the paper's
        tuning step folded into the first dispatch round.  Workers that
        measure ~0 keys/s are clamped to the throughput floor with a
        warning instead of being silently dropped from the balancing rule.
        """
        from repro.cluster.balance import clamp_measured_throughput

        probe_size = min(interval.size, chunk_size * self.workers)
        probe = Interval(interval.start, interval.start + probe_size)
        probe_chunk = max(1, probe_size // max(1, self.workers * 2))
        probe_started = time.perf_counter()
        result = self.backend.run(
            target,
            split_interval(probe, probe_chunk),
            batch_size=self.batch_size,
            recorder=recorder,
        )
        if recorder is not None:
            recorder.span_record(
                MetricNames.PHASE_PROBE,
                time.perf_counter() - probe_started,
                backend=self.backend.name,
            )
        outcome.found.extend(result.found)
        outcome.tested += result.tested
        outcome.chunks_dispatched += result.chunks
        outcome.worker_throughput.update(
            clamp_measured_throughput(result.raw_throughput(), recorder=recorder)
        )
        return Interval(probe.stop, interval.stop)

    @staticmethod
    def _adaptive_chunk(base: int, measured: dict) -> int:
        """Mean of the balanced per-worker chunks, ``N_j = N_max X_j/X_max``."""
        from repro.cluster.balance import adaptive_chunk_size

        if not measured:
            return base
        fastest = max(measured.values())
        sizes = [adaptive_chunk_size(base, x, fastest) for x in measured.values()]
        return max(1, sum(sizes) // len(sizes))
