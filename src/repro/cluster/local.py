"""A real parallel backend: the dispatch protocol on CPU processes.

This is the "closest hardware we actually have" counterpart of the GPU
cluster: a master process scatters id intervals to a pool of worker
processes, each running the vectorized search kernels of
:mod:`repro.apps.cracking` on its own core, and gathers the (index, key)
matches.  The protocol is the same Section III pattern the simulator
models — small scatter payloads, independent interval searches, a trivial
merge — so the examples can demonstrate real speedups and real cracks.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field

from repro.apps.cracking import CrackTarget, crack_interval
from repro.keyspace import Interval, split_interval


def _worker_search(args: tuple) -> tuple[Interval, list]:
    """Module-level worker body (must be picklable for multiprocessing)."""
    target, interval, batch_size = args
    return interval, crack_interval(target, interval, batch_size=batch_size)


@dataclass
class LocalCrackOutcome:
    """Result of a local parallel crack."""

    found: list = field(default_factory=list)  #: sorted (index, key) pairs
    candidates_tested: int = 0
    chunks_dispatched: int = 0
    elapsed: float = 0.0
    workers: int = 1

    @property
    def keys(self) -> list:
        return [key for _, key in self.found]

    @property
    def mkeys_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.candidates_tested / self.elapsed / 1e6


class LocalCluster:
    """Master + worker-pool executor for crack targets.

    ``workers=1`` runs inline (deterministic, no processes — useful under
    test runners); more workers use a ``multiprocessing`` pool.  Chunks are
    served from a shared queue, so heterogeneous core speeds self-balance
    the way the paper's dynamic dispatching does.
    """

    def __init__(self, workers: int | None = None, batch_size: int = 1 << 14) -> None:
        if workers is None:
            workers = max(1, (os.cpu_count() or 2) - 1)
        if workers < 1:
            raise ValueError("need at least one worker")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.workers = workers
        self.batch_size = batch_size

    # ------------------------------------------------------------------ #
    def crack(
        self,
        target: CrackTarget,
        interval: Interval | None = None,
        chunk_size: int | None = None,
        stop_on_first: bool = False,
    ) -> LocalCrackOutcome:
        """Search an interval (default: the whole space) in parallel.

        ``stop_on_first`` stops dispatching new chunks once a match has
        been gathered (in-flight chunks still complete), the paper's "stop
        condition ... a satisfactory number of solutions has been found".
        """
        interval = interval if interval is not None else Interval(0, target.space_size)
        if chunk_size is None:
            # A few chunks per worker keeps the pool busy and the tail short.
            chunk_size = max(1, interval.size // (self.workers * 4) or 1)
        chunks = split_interval(interval, chunk_size)
        started = time.perf_counter()
        outcome = LocalCrackOutcome(workers=self.workers)
        if self.workers == 1:
            for chunk in chunks:
                matches = crack_interval(target, chunk, batch_size=self.batch_size)
                outcome.found.extend(matches)
                outcome.candidates_tested += chunk.size
                outcome.chunks_dispatched += 1
                if stop_on_first and outcome.found:
                    break
        else:
            jobs = ((target, chunk, self.batch_size) for chunk in chunks)
            with mp.Pool(processes=self.workers) as pool:
                for scanned, matches in pool.imap_unordered(_worker_search, jobs):
                    outcome.found.extend(matches)
                    outcome.candidates_tested += scanned.size
                    outcome.chunks_dispatched += 1
                    if stop_on_first and outcome.found:
                        pool.terminate()
                        break
        outcome.found.sort()
        outcome.elapsed = time.perf_counter() - started
        return outcome
