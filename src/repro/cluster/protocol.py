"""Wire protocol of the dispatch network.

Section II's claim — "our approach requires a minimal amount of memory
(less than 1 Kbyte) and does not require any initialization phase and
separate generation of passwords" — is a statement about what travels
between master and workers: an id interval plus the tiny problem
description, and back a match list plus counters.  This module defines
those messages with an explicit binary encoding so the claim is enforced
by construction (every encoder asserts its output fits the budget) and the
simulator's byte counts are grounded in real payloads.

Encoding: a 4-byte magic/type header, then fixed-width fields; ids are
128-bit unsigned (sufficient for any charset up to length 20), strings are
length-prefixed latin-1.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.keyspace import Interval

#: The §II budget every message must respect.
MESSAGE_BUDGET = 1024

_MAGIC_SCATTER = b"XKS\x01"
_MAGIC_GATHER = b"XKS\x02"
_MAGIC_HEARTBEAT = b"XKS\x03"
_MAGIC_CONTROL = b"XKS\x04"
_MAGIC_JOIN = b"XKS\x05"
_MAGIC_WELCOME = b"XKS\x06"
_MAGIC_LEAVE = b"XKS\x07"
_MAGIC_EVICT = b"XKS\x08"
_MAGIC_STEAL_REQUEST = b"XKS\x09"
_MAGIC_STEAL_GRANT = b"XKS\x0a"

_ID_BYTES = 16  # 128-bit candidate ids

#: Algorithm tags on the wire (1 byte).
_ALGO_CODES = {"md5": 1, "sha1": 2, "ntlm": 3}
_ALGO_NAMES = {code: name for name, code in _ALGO_CODES.items()}


def _pack_id(value: int) -> bytes:
    if not 0 <= value < 2 ** (8 * _ID_BYTES):
        raise ValueError("candidate id exceeds the 128-bit wire format")
    return value.to_bytes(_ID_BYTES, "big")


def _unpack_id(data: bytes) -> int:
    return int.from_bytes(data, "big")


def _take(data: bytes, pos: int, count: int, what: str) -> bytes:
    """Slice *count* bytes or fail loudly — a short slice would otherwise
    decode silently into a wrong value (``int.from_bytes`` and ``decode``
    both accept any length)."""
    if len(data) - pos < count:
        raise ValueError(f"truncated message: {what} needs {count} bytes, "
                         f"{len(data) - pos} left")
    return data[pos : pos + count]


@dataclass(frozen=True)
class ScatterMessage:
    """Master -> worker: one work assignment.

    Carries the interval, the target digest, and the space description —
    everything a node needs to *generate* its own candidates (no password
    lists ever travel, which is the point).
    """

    interval: Interval
    digest: bytes  #: 16 (MD5/NTLM) or 20 (SHA1) bytes
    charset: str  #: the alphabet, in digit order
    min_length: int
    max_length: int
    prefix: bytes = b""
    suffix: bytes = b""
    #: Hash algorithm tag — explicit on the wire, because digest length is
    #: ambiguous (MD5 and NTLM are both 16 bytes).
    algorithm: str = "md5"

    def encode(self) -> bytes:
        try:
            algo_code = _ALGO_CODES[self.algorithm]
        except KeyError:
            raise ValueError(f"unknown algorithm tag {self.algorithm!r}") from None
        charset_b = self.charset.encode("latin-1")
        out = b"".join(
            [
                _MAGIC_SCATTER,
                struct.pack("!B", algo_code),
                _pack_id(self.interval.start),
                _pack_id(self.interval.stop),
                struct.pack("!BB", self.min_length, self.max_length),
                struct.pack("!B", len(self.digest)),
                self.digest,
                struct.pack("!B", len(charset_b)),
                charset_b,
                struct.pack("!B", len(self.prefix)),
                self.prefix,
                struct.pack("!B", len(self.suffix)),
                self.suffix,
            ]
        )
        if len(out) > MESSAGE_BUDGET:
            raise ValueError(f"scatter message of {len(out)} bytes breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "ScatterMessage":
        if data[:4] != _MAGIC_SCATTER:
            raise ValueError("not a scatter message")
        pos = 4
        (algo_code,) = struct.unpack_from("!B", data, pos); pos += 1
        try:
            algorithm = _ALGO_NAMES[algo_code]
        except KeyError:
            raise ValueError(f"unknown algorithm code {algo_code}") from None
        start = _unpack_id(_take(data, pos, _ID_BYTES, "start id")); pos += _ID_BYTES
        stop = _unpack_id(_take(data, pos, _ID_BYTES, "stop id")); pos += _ID_BYTES
        min_length, max_length = struct.unpack_from("!BB", data, pos); pos += 2
        (dlen,) = struct.unpack_from("!B", data, pos); pos += 1
        digest = _take(data, pos, dlen, "digest"); pos += dlen
        (clen,) = struct.unpack_from("!B", data, pos); pos += 1
        charset = _take(data, pos, clen, "charset").decode("latin-1"); pos += clen
        (plen,) = struct.unpack_from("!B", data, pos); pos += 1
        prefix = _take(data, pos, plen, "prefix"); pos += plen
        (slen,) = struct.unpack_from("!B", data, pos); pos += 1
        suffix = _take(data, pos, slen, "suffix"); pos += slen
        return cls(
            Interval(start, stop), digest, charset, min_length, max_length,
            prefix, suffix, algorithm,
        )


@dataclass(frozen=True)
class GatherMessage:
    """Worker -> master: results of one assignment.

    Matches are (id, key) pairs; an exhaustive search rarely has more than
    one, and the encoder enforces the budget regardless.
    """

    interval: Interval
    tested: int
    elapsed_us: int
    matches: tuple = field(default_factory=tuple)  #: ((id, key), ...)

    def encode(self) -> bytes:
        parts = [
            _MAGIC_GATHER,
            _pack_id(self.interval.start),
            _pack_id(self.interval.stop),
            _pack_id(self.tested),
            struct.pack("!Q", self.elapsed_us),
            struct.pack("!B", len(self.matches)),
        ]
        for index, key in self.matches:
            key_b = key.encode("latin-1")
            parts.append(_pack_id(index))
            parts.append(struct.pack("!B", len(key_b)))
            parts.append(key_b)
        out = b"".join(parts)
        if len(out) > MESSAGE_BUDGET:
            raise ValueError(f"gather message of {len(out)} bytes breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "GatherMessage":
        if data[:4] != _MAGIC_GATHER:
            raise ValueError("not a gather message")
        pos = 4
        start = _unpack_id(_take(data, pos, _ID_BYTES, "start id")); pos += _ID_BYTES
        stop = _unpack_id(_take(data, pos, _ID_BYTES, "stop id")); pos += _ID_BYTES
        tested = _unpack_id(_take(data, pos, _ID_BYTES, "tested count")); pos += _ID_BYTES
        (elapsed_us,) = struct.unpack_from("!Q", data, pos); pos += 8
        (n,) = struct.unpack_from("!B", data, pos); pos += 1
        matches = []
        for _ in range(n):
            index = _unpack_id(_take(data, pos, _ID_BYTES, "match id")); pos += _ID_BYTES
            (klen,) = struct.unpack_from("!B", data, pos); pos += 1
            key = _take(data, pos, klen, "match key").decode("latin-1"); pos += klen
            matches.append((index, key))
        return cls(Interval(start, stop), tested, elapsed_us, tuple(matches))


@dataclass(frozen=True)
class HeartbeatMessage:
    """Worker -> master liveness beacon (the fault-detection input)."""

    node: str
    busy: bool
    rate_keys_per_s: int

    def encode(self) -> bytes:
        node_b = self.node.encode("latin-1")
        out = (
            _MAGIC_HEARTBEAT
            + struct.pack("!B?Q", len(node_b), self.busy, self.rate_keys_per_s)
            + node_b
        )
        if len(out) > MESSAGE_BUDGET:
            raise ValueError("heartbeat breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "HeartbeatMessage":
        if data[:4] != _MAGIC_HEARTBEAT:
            raise ValueError("not a heartbeat message")
        nlen, busy, rate = struct.unpack_from("!B?Q", data, 4)
        node = _take(data, 14, nlen, "node name").decode("latin-1")
        return cls(node, busy, rate)


@dataclass(frozen=True)
class ControlMessage:
    """Master -> worker out-of-band command.

    ``cancel`` asks the worker to abandon its current assignment at the
    next batch boundary (the master no longer needs the chunk — a match
    was found, or another worker finished the same interval first);
    ``shutdown`` ends the worker process cleanly.  Commands are advisory:
    a worker that ignores them is merely slow, never incorrect, because
    the master's gather path is idempotent.
    """

    command: str  #: "cancel" | "shutdown"
    reason: str = ""

    COMMANDS = ("cancel", "shutdown")

    def encode(self) -> bytes:
        if self.command not in self.COMMANDS:
            raise ValueError(f"unknown control command {self.command!r}")
        command_b = self.command.encode("latin-1")
        reason_b = self.reason.encode("latin-1")
        out = (
            _MAGIC_CONTROL
            + struct.pack("!BB", len(command_b), len(reason_b))
            + command_b
            + reason_b
        )
        if len(out) > MESSAGE_BUDGET:
            raise ValueError("control message breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "ControlMessage":
        if data[:4] != _MAGIC_CONTROL:
            raise ValueError("not a control message")
        clen, rlen = struct.unpack_from("!BB", data, 4)
        pos = 6
        command = _take(data, pos, clen, "command").decode("latin-1"); pos += clen
        reason = _take(data, pos, rlen, "reason").decode("latin-1")
        if command not in cls.COMMANDS:
            raise ValueError(f"unknown control command {command!r}")
        return cls(command, reason)


@dataclass(frozen=True)
class JoinMessage:
    """Worker -> master: request membership in a (possibly live) run.

    Sent as the very first frame of a connection.  Unlike a bare
    heartbeat — which merely proves liveness — a join carries the
    worker's advertised capabilities so the master can seed its
    weight estimate before the first gather arrives, and it is the
    explicit trigger for a :class:`WelcomeMessage` plus an immediate
    dispatch from the pending queue (elastic scale-out, ROADMAP 3).
    """

    node: str
    rate_keys_per_s: int = 0  #: advertised throughput hint; 0 = unknown
    backend: str = ""  #: informational engine tag ("serial", "process", ...)

    def encode(self) -> bytes:
        node_b = self.node.encode("latin-1")
        backend_b = self.backend.encode("latin-1")
        out = (
            _MAGIC_JOIN
            + struct.pack("!BQB", len(node_b), self.rate_keys_per_s, len(backend_b))
            + node_b
            + backend_b
        )
        if len(out) > MESSAGE_BUDGET:
            raise ValueError("join message breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "JoinMessage":
        if data[:4] != _MAGIC_JOIN:
            raise ValueError("not a join message")
        nlen, rate, blen = struct.unpack_from("!BQB", data, 4)
        pos = 14
        node = _take(data, pos, nlen, "node name").decode("latin-1"); pos += nlen
        backend = _take(data, pos, blen, "backend tag").decode("latin-1")
        return cls(node, rate, backend)


@dataclass(frozen=True)
class WelcomeMessage:
    """Master -> worker: membership acknowledged.

    Tells the new arrival who admitted it and how many members the
    registry currently holds — enough for the worker to log a useful
    join line and for tests to assert the registry's view made it to
    the other end of the wire.
    """

    master: str
    members: int  #: active members including the new arrival

    def encode(self) -> bytes:
        master_b = self.master.encode("latin-1")
        out = (
            _MAGIC_WELCOME
            + struct.pack("!BI", len(master_b), self.members)
            + master_b
        )
        if len(out) > MESSAGE_BUDGET:
            raise ValueError("welcome message breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "WelcomeMessage":
        if data[:4] != _MAGIC_WELCOME:
            raise ValueError("not a welcome message")
        mlen, members = struct.unpack_from("!BI", data, 4)
        master = _take(data, 9, mlen, "master name").decode("latin-1")
        return cls(master, members)


@dataclass(frozen=True)
class LeaveMessage:
    """Worker -> master: graceful departure.

    A leaving worker's outstanding chunk is requeued without the
    failure accounting a crash would incur — departure is a planned
    event, not a fault, so it must not push the node toward
    quarantine/eviction thresholds if it later rejoins.
    """

    node: str
    reason: str = ""

    def encode(self) -> bytes:
        node_b = self.node.encode("latin-1")
        reason_b = self.reason.encode("latin-1")
        out = (
            _MAGIC_LEAVE
            + struct.pack("!BB", len(node_b), len(reason_b))
            + node_b
            + reason_b
        )
        if len(out) > MESSAGE_BUDGET:
            raise ValueError("leave message breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "LeaveMessage":
        if data[:4] != _MAGIC_LEAVE:
            raise ValueError("not a leave message")
        nlen, rlen = struct.unpack_from("!BB", data, 4)
        pos = 6
        node = _take(data, pos, nlen, "node name").decode("latin-1"); pos += nlen
        reason = _take(data, pos, rlen, "leave reason").decode("latin-1")
        return cls(node, reason)


@dataclass(frozen=True)
class EvictMessage:
    """Master -> worker: membership revoked for this run.

    Terminal for the connection *and* for the reconnect loop: a
    worker that receives this must stop retrying (the registry will
    refuse it anyway) and surface a typed error to its operator
    instead of spinning on the backoff policy forever.
    """

    node: str
    reason: str = ""

    def encode(self) -> bytes:
        node_b = self.node.encode("latin-1")
        reason_b = self.reason.encode("latin-1")
        out = (
            _MAGIC_EVICT
            + struct.pack("!BB", len(node_b), len(reason_b))
            + node_b
            + reason_b
        )
        if len(out) > MESSAGE_BUDGET:
            raise ValueError("evict message breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "EvictMessage":
        if data[:4] != _MAGIC_EVICT:
            raise ValueError("not an evict message")
        nlen, rlen = struct.unpack_from("!BB", data, 4)
        pos = 6
        node = _take(data, pos, nlen, "node name").decode("latin-1"); pos += nlen
        reason = _take(data, pos, rlen, "evict reason").decode("latin-1")
        return cls(node, reason)


#: A steal grant must fit the same <1KB budget as every other message:
#: each interval is two 128-bit ids, so 24 spans (768 bytes of ids plus
#: the header) is the most one grant can carry.
STEAL_GRANT_MAX_INTERVALS = 24


@dataclass(frozen=True)
class StealRequestMessage:
    """Thief master -> victim master: ask for pending work.

    ``budget`` caps how many ids the thief wants (0 = "half of
    whatever you have", the classic work-stealing split).
    """

    thief: str
    budget: int = 0

    def encode(self) -> bytes:
        thief_b = self.thief.encode("latin-1")
        out = (
            _MAGIC_STEAL_REQUEST
            + struct.pack("!B", len(thief_b))
            + _pack_id(self.budget)
            + thief_b
        )
        if len(out) > MESSAGE_BUDGET:
            raise ValueError("steal request breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "StealRequestMessage":
        if data[:4] != _MAGIC_STEAL_REQUEST:
            raise ValueError("not a steal request")
        (tlen,) = struct.unpack_from("!B", data, 4)
        pos = 5
        budget = _unpack_id(_take(data, pos, _ID_BYTES, "steal budget"))
        pos += _ID_BYTES
        thief = _take(data, pos, tlen, "thief name").decode("latin-1")
        return cls(thief, budget)


@dataclass(frozen=True)
class StealGrantMessage:
    """Victim master -> thief master: ownership of these spans moves.

    The victim removes the spans from its own pending queue *before*
    encoding the grant, so at any instant each id is pending on at
    most one master; completed replies that race the transfer are
    deduplicated by ``subtract_interval`` against the shard board
    (first owner wins).  An empty grant is a valid "nothing to steal".
    """

    victim: str
    intervals: tuple = field(default_factory=tuple)  #: (Interval, ...)

    def encode(self) -> bytes:
        if len(self.intervals) > STEAL_GRANT_MAX_INTERVALS:
            raise ValueError(
                f"steal grant of {len(self.intervals)} intervals exceeds "
                f"the {STEAL_GRANT_MAX_INTERVALS}-span budget"
            )
        victim_b = self.victim.encode("latin-1")
        parts = [
            _MAGIC_STEAL_GRANT,
            struct.pack("!BB", len(victim_b), len(self.intervals)),
            victim_b,
        ]
        for span in self.intervals:
            parts.append(_pack_id(span.start))
            parts.append(_pack_id(span.stop))
        out = b"".join(parts)
        if len(out) > MESSAGE_BUDGET:
            raise ValueError("steal grant breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "StealGrantMessage":
        if data[:4] != _MAGIC_STEAL_GRANT:
            raise ValueError("not a steal grant")
        vlen, n = struct.unpack_from("!BB", data, 4)
        pos = 6
        victim = _take(data, pos, vlen, "victim name").decode("latin-1"); pos += vlen
        intervals = []
        for _ in range(n):
            start = _unpack_id(_take(data, pos, _ID_BYTES, "span start")); pos += _ID_BYTES
            stop = _unpack_id(_take(data, pos, _ID_BYTES, "span stop")); pos += _ID_BYTES
            intervals.append(Interval(start, stop))
        return cls(victim, tuple(intervals))


def decode_any(data: bytes):
    """Dispatch on the magic header.

    Any malformed payload — truncated, garbage after a valid magic —
    raises :class:`ValueError` with a diagnostic, never a bare
    ``struct.error``, so callers handle one exception type.
    """
    magic = data[:4]
    decoders = {
        _MAGIC_SCATTER: ScatterMessage.decode,
        _MAGIC_GATHER: GatherMessage.decode,
        _MAGIC_HEARTBEAT: HeartbeatMessage.decode,
        _MAGIC_CONTROL: ControlMessage.decode,
        _MAGIC_JOIN: JoinMessage.decode,
        _MAGIC_WELCOME: WelcomeMessage.decode,
        _MAGIC_LEAVE: LeaveMessage.decode,
        _MAGIC_EVICT: EvictMessage.decode,
        _MAGIC_STEAL_REQUEST: StealRequestMessage.decode,
        _MAGIC_STEAL_GRANT: StealGrantMessage.decode,
    }
    if magic not in decoders:
        raise ValueError(f"unknown message magic {magic!r}")
    try:
        return decoders[magic](data)
    except struct.error as exc:
        raise ValueError(f"truncated message: {exc}") from exc
