"""Wire protocol of the dispatch network.

Section II's claim — "our approach requires a minimal amount of memory
(less than 1 Kbyte) and does not require any initialization phase and
separate generation of passwords" — is a statement about what travels
between master and workers: an id interval plus the tiny problem
description, and back a match list plus counters.  This module defines
those messages with an explicit binary encoding so the claim is enforced
by construction (every encoder asserts its output fits the budget) and the
simulator's byte counts are grounded in real payloads.

Encoding: a 4-byte magic/type header, then fixed-width fields; ids are
128-bit unsigned (sufficient for any charset up to length 20), strings are
length-prefixed latin-1.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.keyspace import Interval

#: The §II budget every message must respect.
MESSAGE_BUDGET = 1024

_MAGIC_SCATTER = b"XKS\x01"
_MAGIC_GATHER = b"XKS\x02"
_MAGIC_HEARTBEAT = b"XKS\x03"
_MAGIC_CONTROL = b"XKS\x04"

_ID_BYTES = 16  # 128-bit candidate ids

#: Algorithm tags on the wire (1 byte).
_ALGO_CODES = {"md5": 1, "sha1": 2, "ntlm": 3}
_ALGO_NAMES = {code: name for name, code in _ALGO_CODES.items()}


def _pack_id(value: int) -> bytes:
    if not 0 <= value < 2 ** (8 * _ID_BYTES):
        raise ValueError("candidate id exceeds the 128-bit wire format")
    return value.to_bytes(_ID_BYTES, "big")


def _unpack_id(data: bytes) -> int:
    return int.from_bytes(data, "big")


def _take(data: bytes, pos: int, count: int, what: str) -> bytes:
    """Slice *count* bytes or fail loudly — a short slice would otherwise
    decode silently into a wrong value (``int.from_bytes`` and ``decode``
    both accept any length)."""
    if len(data) - pos < count:
        raise ValueError(f"truncated message: {what} needs {count} bytes, "
                         f"{len(data) - pos} left")
    return data[pos : pos + count]


@dataclass(frozen=True)
class ScatterMessage:
    """Master -> worker: one work assignment.

    Carries the interval, the target digest, and the space description —
    everything a node needs to *generate* its own candidates (no password
    lists ever travel, which is the point).
    """

    interval: Interval
    digest: bytes  #: 16 (MD5/NTLM) or 20 (SHA1) bytes
    charset: str  #: the alphabet, in digit order
    min_length: int
    max_length: int
    prefix: bytes = b""
    suffix: bytes = b""
    #: Hash algorithm tag — explicit on the wire, because digest length is
    #: ambiguous (MD5 and NTLM are both 16 bytes).
    algorithm: str = "md5"

    def encode(self) -> bytes:
        try:
            algo_code = _ALGO_CODES[self.algorithm]
        except KeyError:
            raise ValueError(f"unknown algorithm tag {self.algorithm!r}") from None
        charset_b = self.charset.encode("latin-1")
        out = b"".join(
            [
                _MAGIC_SCATTER,
                struct.pack("!B", algo_code),
                _pack_id(self.interval.start),
                _pack_id(self.interval.stop),
                struct.pack("!BB", self.min_length, self.max_length),
                struct.pack("!B", len(self.digest)),
                self.digest,
                struct.pack("!B", len(charset_b)),
                charset_b,
                struct.pack("!B", len(self.prefix)),
                self.prefix,
                struct.pack("!B", len(self.suffix)),
                self.suffix,
            ]
        )
        if len(out) > MESSAGE_BUDGET:
            raise ValueError(f"scatter message of {len(out)} bytes breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "ScatterMessage":
        if data[:4] != _MAGIC_SCATTER:
            raise ValueError("not a scatter message")
        pos = 4
        (algo_code,) = struct.unpack_from("!B", data, pos); pos += 1
        try:
            algorithm = _ALGO_NAMES[algo_code]
        except KeyError:
            raise ValueError(f"unknown algorithm code {algo_code}") from None
        start = _unpack_id(_take(data, pos, _ID_BYTES, "start id")); pos += _ID_BYTES
        stop = _unpack_id(_take(data, pos, _ID_BYTES, "stop id")); pos += _ID_BYTES
        min_length, max_length = struct.unpack_from("!BB", data, pos); pos += 2
        (dlen,) = struct.unpack_from("!B", data, pos); pos += 1
        digest = _take(data, pos, dlen, "digest"); pos += dlen
        (clen,) = struct.unpack_from("!B", data, pos); pos += 1
        charset = _take(data, pos, clen, "charset").decode("latin-1"); pos += clen
        (plen,) = struct.unpack_from("!B", data, pos); pos += 1
        prefix = _take(data, pos, plen, "prefix"); pos += plen
        (slen,) = struct.unpack_from("!B", data, pos); pos += 1
        suffix = _take(data, pos, slen, "suffix"); pos += slen
        return cls(
            Interval(start, stop), digest, charset, min_length, max_length,
            prefix, suffix, algorithm,
        )


@dataclass(frozen=True)
class GatherMessage:
    """Worker -> master: results of one assignment.

    Matches are (id, key) pairs; an exhaustive search rarely has more than
    one, and the encoder enforces the budget regardless.
    """

    interval: Interval
    tested: int
    elapsed_us: int
    matches: tuple = field(default_factory=tuple)  #: ((id, key), ...)

    def encode(self) -> bytes:
        parts = [
            _MAGIC_GATHER,
            _pack_id(self.interval.start),
            _pack_id(self.interval.stop),
            _pack_id(self.tested),
            struct.pack("!Q", self.elapsed_us),
            struct.pack("!B", len(self.matches)),
        ]
        for index, key in self.matches:
            key_b = key.encode("latin-1")
            parts.append(_pack_id(index))
            parts.append(struct.pack("!B", len(key_b)))
            parts.append(key_b)
        out = b"".join(parts)
        if len(out) > MESSAGE_BUDGET:
            raise ValueError(f"gather message of {len(out)} bytes breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "GatherMessage":
        if data[:4] != _MAGIC_GATHER:
            raise ValueError("not a gather message")
        pos = 4
        start = _unpack_id(_take(data, pos, _ID_BYTES, "start id")); pos += _ID_BYTES
        stop = _unpack_id(_take(data, pos, _ID_BYTES, "stop id")); pos += _ID_BYTES
        tested = _unpack_id(_take(data, pos, _ID_BYTES, "tested count")); pos += _ID_BYTES
        (elapsed_us,) = struct.unpack_from("!Q", data, pos); pos += 8
        (n,) = struct.unpack_from("!B", data, pos); pos += 1
        matches = []
        for _ in range(n):
            index = _unpack_id(_take(data, pos, _ID_BYTES, "match id")); pos += _ID_BYTES
            (klen,) = struct.unpack_from("!B", data, pos); pos += 1
            key = _take(data, pos, klen, "match key").decode("latin-1"); pos += klen
            matches.append((index, key))
        return cls(Interval(start, stop), tested, elapsed_us, tuple(matches))


@dataclass(frozen=True)
class HeartbeatMessage:
    """Worker -> master liveness beacon (the fault-detection input)."""

    node: str
    busy: bool
    rate_keys_per_s: int

    def encode(self) -> bytes:
        node_b = self.node.encode("latin-1")
        out = (
            _MAGIC_HEARTBEAT
            + struct.pack("!B?Q", len(node_b), self.busy, self.rate_keys_per_s)
            + node_b
        )
        if len(out) > MESSAGE_BUDGET:
            raise ValueError("heartbeat breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "HeartbeatMessage":
        if data[:4] != _MAGIC_HEARTBEAT:
            raise ValueError("not a heartbeat message")
        nlen, busy, rate = struct.unpack_from("!B?Q", data, 4)
        node = _take(data, 14, nlen, "node name").decode("latin-1")
        return cls(node, busy, rate)


@dataclass(frozen=True)
class ControlMessage:
    """Master -> worker out-of-band command.

    ``cancel`` asks the worker to abandon its current assignment at the
    next batch boundary (the master no longer needs the chunk — a match
    was found, or another worker finished the same interval first);
    ``shutdown`` ends the worker process cleanly.  Commands are advisory:
    a worker that ignores them is merely slow, never incorrect, because
    the master's gather path is idempotent.
    """

    command: str  #: "cancel" | "shutdown"
    reason: str = ""

    COMMANDS = ("cancel", "shutdown")

    def encode(self) -> bytes:
        if self.command not in self.COMMANDS:
            raise ValueError(f"unknown control command {self.command!r}")
        command_b = self.command.encode("latin-1")
        reason_b = self.reason.encode("latin-1")
        out = (
            _MAGIC_CONTROL
            + struct.pack("!BB", len(command_b), len(reason_b))
            + command_b
            + reason_b
        )
        if len(out) > MESSAGE_BUDGET:
            raise ValueError("control message breaks the <1KB budget")
        return out

    @classmethod
    def decode(cls, data: bytes) -> "ControlMessage":
        if data[:4] != _MAGIC_CONTROL:
            raise ValueError("not a control message")
        clen, rlen = struct.unpack_from("!BB", data, 4)
        pos = 6
        command = _take(data, pos, clen, "command").decode("latin-1"); pos += clen
        reason = _take(data, pos, rlen, "reason").decode("latin-1")
        if command not in cls.COMMANDS:
            raise ValueError(f"unknown control command {command!r}")
        return cls(command, reason)


def decode_any(data: bytes):
    """Dispatch on the magic header.

    Any malformed payload — truncated, garbage after a valid magic —
    raises :class:`ValueError` with a diagnostic, never a bare
    ``struct.error``, so callers handle one exception type.
    """
    magic = data[:4]
    decoders = {
        _MAGIC_SCATTER: ScatterMessage.decode,
        _MAGIC_GATHER: GatherMessage.decode,
        _MAGIC_HEARTBEAT: HeartbeatMessage.decode,
        _MAGIC_CONTROL: ControlMessage.decode,
    }
    if magic not in decoders:
        raise ValueError(f"unknown message magic {magic!r}")
    try:
        return decoders[magic](data)
    except struct.error as exc:
        raise ValueError(f"truncated message: {exc}") from exc
