"""Adaptive dispatching: runtime re-estimation of node throughput.

Section III: "The proposed pattern can be extended to a dynamic network
that can be configured at runtime, by executing the above mentioned steps
each time the number of depending nodes or their actual performance
metrics vary."

:class:`AdaptiveDispatcher` implements that loop: every round it partitions
the next chunk with the balancing rule using its *current* throughput
estimates, then folds each worker's reported ``candidates / elapsed`` back
into the estimate with an exponential moving average.  Starting from wrong
estimates (or after a device throttles) the finish-time imbalance decays
geometrically toward zero, which is the property the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.cluster.balance import TunedWorker, balanced_assignments, imbalance
from repro.keyspace import Interval


@dataclass
class WorkerEstimate:
    """The master's belief about one worker's throughput."""

    name: str
    rate: float  #: estimated keys/second
    rounds_seen: int = 0

    def update(self, observed_rate: float, alpha: float) -> None:
        """EWMA fold of a fresh observation."""
        if observed_rate <= 0:
            raise ValueError("observed rate must be positive")
        self.rate = (1.0 - alpha) * self.rate + alpha * observed_rate
        self.rounds_seen += 1


@dataclass
class RoundRecord:
    """One dispatch round's accounting."""

    index: int
    assignments: dict  #: worker -> interval size
    finish_times: dict  #: worker -> seconds
    imbalance: float  #: (max - min) / max of finish times


class AdaptiveDispatcher:
    """Balancing with online throughput re-estimation."""

    def __init__(
        self,
        initial_estimates: Mapping[str, float],
        alpha: float = 0.5,
    ) -> None:
        if not initial_estimates:
            raise ValueError("need at least one worker")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.estimates = {
            name: WorkerEstimate(name, rate) for name, rate in initial_estimates.items()
        }
        for est in self.estimates.values():
            if est.rate <= 0:
                raise ValueError("initial estimates must be positive")
        self.history: list[RoundRecord] = []

    # ------------------------------------------------------------------ #
    def plan_round(self, interval: Interval) -> dict[str, Interval]:
        """Partition *interval* with the balancing rule on current beliefs."""
        units = [
            TunedWorker(est.name, est.rate, 1) for est in self.estimates.values()
        ]
        return {u.name: part for u, part in balanced_assignments(interval, units)}

    def report(self, name: str, candidates: int, elapsed: float) -> None:
        """Fold a worker's round result into its estimate."""
        if candidates <= 0 or elapsed <= 0:
            return  # empty share: nothing learned
        self.estimates[name].update(candidates / elapsed, self.alpha)

    # ------------------------------------------------------------------ #
    def run_simulated(
        self,
        total_candidates: int,
        round_size: int,
        true_rate: Callable[[str, int], float],
    ) -> list[RoundRecord]:
        """Drive the loop against simulated workers.

        ``true_rate(name, round_index)`` gives the worker's *actual*
        throughput that round — allowing drift, throttling, or any
        adversarial schedule.  Rounds are barriers (the master gathers all
        results before re-planning), matching the protocol's merge step.
        """
        if total_candidates <= 0 or round_size <= 0:
            raise ValueError("candidates and round_size must be positive")
        start = 0
        index = 0
        while start < total_candidates:
            n = min(round_size, total_candidates - start)
            plan = self.plan_round(Interval(start, start + n))
            finish: dict[str, float] = {}
            for name, part in plan.items():
                if not part:
                    finish[name] = 0.0
                    continue
                rate = true_rate(name, index)
                elapsed = part.size / rate
                finish[name] = elapsed
                self.report(name, part.size, elapsed)
            busy = [t for t in finish.values() if t > 0]
            record = RoundRecord(
                index=index,
                assignments={name: part.size for name, part in plan.items()},
                finish_times=finish,
                imbalance=(max(busy) - min(busy)) / max(busy) if busy else 0.0,
            )
            self.history.append(record)
            start += n
            index += 1
        return self.history

    # ------------------------------------------------------------------ #
    def estimate_error(self, true_rates: Mapping[str, float]) -> float:
        """Largest relative error of the current estimates."""
        return max(
            abs(est.rate - true_rates[name]) / true_rates[name]
            for name, est in self.estimates.items()
        )
