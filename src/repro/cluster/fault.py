"""Fault tolerance: node failures and search-space repartitioning.

Section III sketches a "minimum fault tolerance model": monitor node
activity and recompute the partitioning each time nodes drop, noting the
caveat that a dead *dispatcher* silences its whole subtree.  This module
implements that model at round granularity:

* each round, the master deals the next chunk to the currently-alive
  devices using the balancing rule;
* a device (or a dispatcher node, killing its subtree) that fails during a
  round never returns its result; after a detection timeout its interval is
  *requeued* and the next round is partitioned over the survivors;
* optional recoveries bring subtrees back, triggering rebalancing again
  ("the pattern can be extended to a dynamic network configured at
  runtime").

The invariant proved by the tests: the union of completed intervals tiles
the search space exactly — no candidate is lost or double-counted as nodes
come and go.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import ClusterNode
from repro.keyspace import Interval, partition_weighted
from repro.keyspace.intervals import is_exact_partition, merge_intervals
from repro.obs.schema import MetricNames


@dataclass(frozen=True)
class FaultPlan:
    """When nodes fail and recover, in round indices (0-based).

    Keys are *node* names: failing a dispatcher silences every device in
    its subtree, exactly the paper's concern — unless
    ``reparent_orphans`` is set, which implements the paper's future-work
    proposal ("a smart way to reconfigure the cluster topology when a
    subset of dispatching nodes becomes inactive"): after the detection
    timeout plus a reconfiguration delay, the dead dispatcher's *live*
    children re-attach to its parent and keep contributing.
    """

    failures: dict = field(default_factory=dict)  #: node -> round it dies
    recoveries: dict = field(default_factory=dict)  #: node -> round it returns
    #: Seconds the master waits before declaring a silent node dead.
    detection_timeout: float = 1.0
    #: Re-attach a dead dispatcher's children to its parent (future work).
    reparent_orphans: bool = False
    #: Seconds to renegotiate the topology after each reparenting.
    reconfiguration_time: float = 0.5


@dataclass
class FaultToleranceReport:
    """Outcome of a run under fault injection."""

    total_candidates: int
    rounds: int
    wall_time: float
    requeued_candidates: int
    completed: dict  #: device name -> list[Interval]
    failure_events: list  #: (round, node) pairs as detected

    @property
    def throughput(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.total_candidates / self.wall_time

    @property
    def covered_exactly(self) -> bool:
        """True when completed intervals tile the space with no gap/overlap."""
        everything = [iv for parts in self.completed.values() for iv in parts]
        return is_exact_partition(
            Interval(0, self.total_candidates), merge_intervals(everything)
        )


def _alive_devices(root: ClusterNode, dead_nodes: set, reparent: bool = False) -> list:
    """Devices reachable through live dispatchers.

    Without *reparent*, a dead node silences its whole subtree (the paper's
    stated weakness).  With it, only the dead node's own devices are lost:
    its children are treated as re-attached to the surviving ancestor, so
    the walk continues through them.  The root itself cannot be reparented.
    """
    out = []

    def walk(node: ClusterNode, is_root: bool = False) -> None:
        if node.name in dead_nodes:
            if not reparent or is_root:
                return  # the whole subtree is silenced
            for child in node.children:
                walk(child)  # orphans re-attach to the grandparent
            return
        out.extend(node.devices)
        for child in node.children:
            walk(child)

    walk(root, is_root=True)
    return out


def run_with_faults(
    root: ClusterNode,
    total_candidates: int,
    round_size: int,
    plan: FaultPlan | None = None,
    max_rounds: int = 10_000,
    recorder=None,
) -> FaultToleranceReport:
    """Round-based run with fault injection and repartitioning.

    ``recorder`` (a :class:`repro.obs.Recorder`) captures the fault
    timeline: one ``worker.dead`` event per detected failure, one
    ``chunk.requeued`` event plus ``cluster.chunks_failed`` /
    ``cluster.requeued_candidates`` counters per interval a dying node
    lost mid-round.
    """
    if recorder is None:
        from repro.obs.recorder import NULL_RECORDER as recorder  # noqa: N813
    if total_candidates <= 0 or round_size <= 0:
        raise ValueError("candidates and round_size must be positive")
    plan = plan or FaultPlan()
    unknown = (set(plan.failures) | set(plan.recoveries)) - {
        n.name for n in root.subtree_nodes()
    }
    if unknown:
        raise ValueError(f"fault plan names unknown nodes: {sorted(unknown)}")

    pending: list[Interval] = [Interval(0, total_candidates)]
    completed: dict[str, list[Interval]] = {
        d.name: [] for d in root.subtree_devices()
    }
    dead: set = set()
    failure_events: list[tuple[int, str]] = []
    wall_time = 0.0
    rounds = 0
    requeued = 0

    while pending:
        if rounds >= max_rounds:
            raise RuntimeError("fault-tolerance run did not converge")
        # Apply scheduled recoveries before dealing the round.
        for name, back_at in plan.recoveries.items():
            if back_at <= rounds and name in dead:
                dead.discard(name)
        failing_now = {name for name, at in plan.failures.items() if at == rounds}
        devices = _alive_devices(root, dead, plan.reparent_orphans)
        if not devices:
            raise RuntimeError("no devices alive — the search cannot proceed")
        # Deal the next chunk over live devices, balanced by throughput.
        chunk, rest = _take(pending, round_size)
        assignments = partition_weighted(chunk, [d.throughput for d in devices])
        pending = rest
        # Devices under a node failing *this* round lose their interval.
        dead_after = dead | failing_now
        lost_devices = {
            d.name
            for d in root.subtree_devices()
            if d not in _alive_devices(root, dead_after, plan.reparent_orphans)
        }
        round_times = []
        for device, part in zip(devices, assignments):
            if not part:
                continue
            if device.name in lost_devices:
                pending.insert(0, part)
                requeued += part.size
                recorder.counter(MetricNames.CLUSTER_CHUNKS_FAILED)
                recorder.counter(MetricNames.CLUSTER_REQUEUED, part.size)
                recorder.event(
                    MetricNames.EVENT_CHUNK_REQUEUED,
                    worker=device.name,
                    round=rounds,
                    start=part.start,
                    stop=part.stop,
                )
            else:
                completed[device.name].append(part)
                round_times.append(device.compute_time(part.size))
        wall_time += max(round_times, default=0.0)
        if failing_now:
            wall_time += plan.detection_timeout
            if plan.reparent_orphans:
                wall_time += plan.reconfiguration_time
            for name in sorted(failing_now):
                failure_events.append((rounds, name))
                recorder.event(MetricNames.EVENT_WORKER_DEAD, worker=name, round=rounds)
            dead |= failing_now
        rounds += 1

    for name in completed:
        completed[name] = merge_intervals(completed[name])
    return FaultToleranceReport(
        total_candidates=total_candidates,
        rounds=rounds,
        wall_time=wall_time,
        requeued_candidates=requeued,
        completed=completed,
        failure_events=failure_events,
    )


def _take(pending: list[Interval], size: int) -> tuple[Interval, list[Interval]]:
    """Pop up to *size* contiguous candidates from the work queue.

    The queue holds disjoint intervals; we always serve the front one, so a
    requeued interval is re-dealt before fresh work (no starvation).
    """
    head = pending[0]
    taken, rest_of_head = head.take(size)
    rest = ([rest_of_head] if rest_of_head else []) + pending[1:]
    return taken, rest
