"""Discrete-event simulation of a whole-network cracking run (Table IX).

The master walks the dispatch protocol of Section III over the tree:

1. partition the round's interval among local devices and child subtrees
   proportionally to achieved throughput (the balancing rule);
2. scatter: sends serialize on the dispatcher's uplink, each costing
   ``K_scatter`` (latency + payload/bandwidth);
3. children recursively run the same protocol; devices compute for
   ``K_search`` given by their launch model;
4. gather: each unit's result travels back; the master applies the merge
   test ``K_C_M`` once all results arrived.

The run reports the metrics of Table IX: whole-network throughput, and
efficiency relative to the sum of the devices' *theoretical* throughputs
(which is how the paper computes its 0.852 / 0.898).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.balance import minimum_dispatch_size
from repro.cluster.events import Simulator
from repro.cluster.node import GATHER_BYTES, SCATTER_BYTES, ClusterNode, GPUWorker
from repro.keyspace import Interval, partition_weighted

#: Host-side cost of handing an interval to a local device (driver call).
LOCAL_DISPATCH_COST = 50e-6


@dataclass
class DeviceRunStats:
    """Per-device accounting over a simulated run."""

    candidates: int = 0
    busy_time: float = 0.0
    intervals: list[Interval] = field(default_factory=list)


@dataclass
class ClusterRunResult:
    """Outcome of a simulated network run."""

    total_candidates: int
    elapsed: float
    rounds: int
    device_stats: dict[str, DeviceRunStats]
    aggregate_achieved: float  #: sum of devices' achieved keys/s
    aggregate_theoretical: float  #: sum of devices' peak keys/s
    found: list[tuple[str, int]] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Whole-network keys/second."""
        if self.elapsed <= 0:
            return 0.0
        return self.total_candidates / self.elapsed

    @property
    def mkeys_per_second(self) -> float:
        return self.throughput / 1e6

    @property
    def dispatch_efficiency(self) -> float:
        """Throughput over the sum of achieved device rates: how much the
        dispatch protocol itself loses (1.0 = perfect parallelism)."""
        return self.throughput / self.aggregate_achieved

    @property
    def network_efficiency(self) -> float:
        """The Table IX 'efficiency' column: throughput over the sum of
        theoretical device rates."""
        return self.throughput / self.aggregate_theoretical

    def utilization(self, device: str) -> float:
        """Busy fraction of one device."""
        if self.elapsed <= 0:
            return 0.0
        return self.device_stats[device].busy_time / self.elapsed


def simulate_run(
    root: ClusterNode,
    total_candidates: int,
    round_size: int | None = None,
    target_efficiency: float = 0.95,
    merge_cost: float = 100e-6,
    solution_ids: tuple = (),
    round_seconds: float = 1.0,
) -> ClusterRunResult:
    """Simulate cracking *total_candidates* keys on the network.

    ``round_size`` defaults to the larger of the tuning step's minimum
    dispatch size and ``round_seconds`` of aggregate work — Section III
    allows ``N_node`` to be "arbitrarily increased to minimize the overhead
    caused by the dispatch and merge steps".  ``solution_ids`` plants
    candidate ids whose discovery is attributed to whichever device scans
    them.
    """
    if total_candidates <= 0:
        raise ValueError("total_candidates must be positive")
    root.validate_tree()
    if round_size is None:
        round_size = max(
            minimum_dispatch_size(root, target_efficiency),
            int(root.aggregate_throughput * round_seconds),
            1,
        )
    round_size = min(round_size, total_candidates)

    sim = Simulator()
    stats: dict[str, DeviceRunStats] = {
        d.name: DeviceRunStats() for d in root.subtree_devices()
    }
    found: list[tuple[str, int]] = []
    state = {"rounds": 0}

    def dispatch(node: ClusterNode, interval: Interval, done) -> None:
        """Run the Section III protocol for one node, then call done()."""
        units: list[tuple[object, float]] = [(d, d.throughput) for d in node.devices]
        units += [(c, c.aggregate_throughput) for c in node.children]
        parts = partition_weighted(interval, [w for _, w in units])
        outstanding = {"n": 0}

        def unit_done() -> None:
            outstanding["n"] -= 1
            if outstanding["n"] == 0:
                # All results gathered: apply the merge test K_C_M.
                sim.schedule(merge_cost, done)

        send_offset = 0.0
        for (unit, _), part in zip(units, parts):
            if not part:
                continue
            outstanding["n"] += 1
            if isinstance(unit, GPUWorker):
                begin = send_offset + LOCAL_DISPATCH_COST
                send_offset = begin

                def start_device(worker=unit, piece=part):
                    compute = worker.compute_time(piece.size)
                    entry = stats[worker.name]
                    entry.candidates += piece.size
                    entry.busy_time += compute
                    entry.intervals.append(piece)
                    for sol in solution_ids:
                        if sol in piece:
                            found.append((worker.name, sol))
                    sim.schedule(compute, unit_done)

                sim.schedule(begin, start_device)
            else:
                child: ClusterNode = unit
                scatter = child.uplink.transfer_time(SCATTER_BYTES)
                send_offset += scatter  # sends serialize on the master

                def start_child(c=child, piece=part, arrive=send_offset):
                    def child_done():
                        gather = c.uplink.transfer_time(GATHER_BYTES)
                        sim.schedule(gather, unit_done)

                    dispatch(c, piece, child_done)

                sim.schedule(send_offset, start_child)
        if outstanding["n"] == 0:  # degenerate: empty interval
            sim.schedule(0.0, done)

    def run_round(start: int) -> None:
        if start >= total_candidates:
            return
        state["rounds"] += 1
        n = min(round_size, total_candidates - start)
        dispatch(
            root,
            Interval(start, start + n),
            lambda: run_round(start + n),
        )

    run_round(0)
    elapsed = sim.run()
    return ClusterRunResult(
        total_candidates=total_candidates,
        elapsed=elapsed,
        rounds=state["rounds"],
        device_stats=stats,
        aggregate_achieved=root.aggregate_throughput,
        aggregate_theoretical=root.aggregate_theoretical,
        found=sorted(found, key=lambda pair: pair[1]),
    )
