"""Cluster entities: devices, links, nodes.

A :class:`GPUWorker` wraps one device's *achieved* and *theoretical*
throughput (from :mod:`repro.gpusim`) plus its launch-overhead model; a
:class:`ClusterNode` is a PC holding devices and possibly dispatching to
child nodes over a :class:`LinkSpec`.  The hierarchical aggregation rule of
Section III — "they can be considered as computing nodes with a throughput
that is the sum of the throughputs of the child nodes" — lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.device import DeviceSpec
from repro.gpusim.launch import LaunchModel


@dataclass(frozen=True)
class LinkSpec:
    """A network link: fixed latency plus byte-rate transfer time."""

    latency: float = 0.5e-3  #: seconds, one way
    bandwidth: float = 12.5e6  #: bytes/second (100 Mbit Ethernet)

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("invalid link parameters")

    def transfer_time(self, nbytes: int) -> float:
        """One-way time to move *nbytes* over the link."""
        return self.latency + nbytes / self.bandwidth


#: Scatter payload: an id interval (two 128-bit ids), the digest, the space
#: description — comfortably under the paper's "less than 1 Kbyte".
SCATTER_BYTES = 256
#: Gather payload: match list (usually empty) + the node's counters.
GATHER_BYTES = 64


@dataclass
class GPUWorker:
    """One compute device with its measured performance profile."""

    name: str
    throughput: float  #: achieved keys/second (the dispatch weight X_j)
    theoretical: float = 0.0  #: peak keys/second (Table IX denominator)
    device: DeviceSpec | None = None
    launch: LaunchModel | None = None

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ValueError("worker throughput must be positive")
        if self.theoretical == 0.0:
            self.theoretical = self.throughput
        if self.launch is None:
            self.launch = LaunchModel(peak_rate=self.throughput)

    def compute_time(self, candidates: int) -> float:
        """Wall-clock seconds to test an interval on this device."""
        return self.launch.time_for(candidates)


@dataclass
class ClusterNode:
    """A PC in the network: local devices plus optional dispatch children."""

    name: str
    devices: list[GPUWorker] = field(default_factory=list)
    children: list["ClusterNode"] = field(default_factory=list)
    #: Link connecting this node to its parent (unused on the root).
    uplink: LinkSpec = field(default_factory=LinkSpec)

    def __post_init__(self) -> None:
        if not self.devices and not self.children:
            raise ValueError(f"node {self.name!r} has neither devices nor children")

    # ------------------------------------------------------------------ #
    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def local_throughput(self) -> float:
        """Achieved keys/second of this node's own devices."""
        return sum(w.throughput for w in self.devices)

    @property
    def aggregate_throughput(self) -> float:
        """Achieved keys/second of the whole subtree (Section III)."""
        return self.local_throughput + sum(c.aggregate_throughput for c in self.children)

    @property
    def aggregate_theoretical(self) -> float:
        """Peak keys/second of the whole subtree (Table IX denominator)."""
        return sum(w.theoretical for w in self.devices) + sum(
            c.aggregate_theoretical for c in self.children
        )

    def subtree_devices(self) -> list[GPUWorker]:
        """All devices in the subtree, depth-first."""
        out = list(self.devices)
        for child in self.children:
            out.extend(child.subtree_devices())
        return out

    def subtree_nodes(self) -> list["ClusterNode"]:
        """All nodes in the subtree, preorder."""
        out = [self]
        for child in self.children:
            out.extend(child.subtree_nodes())
        return out

    def find(self, name: str) -> "ClusterNode":
        """Locate a node by name anywhere in the subtree."""
        for node in self.subtree_nodes():
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def validate_tree(self) -> None:
        """Reject duplicate node/device names (dispatch needs unique ids)."""
        names = [n.name for n in self.subtree_nodes()]
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names in tree")
        dev_names = [d.name for d in self.subtree_devices()]
        if len(set(dev_names)) != len(dev_names):
            raise ValueError("duplicate device names in tree")
