"""An in-process distributed runtime: the full protocol, running for real.

Everything the paper's system does on a LAN, executed here over thread
queues standing in for sockets:

* the master serializes :class:`~repro.cluster.protocol.ScatterMessage`
  bytes to worker inboxes and decodes
  :class:`~repro.cluster.protocol.GatherMessage` bytes coming back — the
  exact payloads whose size Section II bounds;
* chunk sizes follow each worker's *measured* throughput (the adaptive
  balancing of Section III), starting from equal priors;
* a worker that stops answering is declared dead after a timeout and its
  outstanding interval is requeued over the survivors (the minimum fault
  tolerance model);
* a :class:`~repro.core.progress.ProgressLog` tracks exactly-once coverage
  and makes the run resumable.

Workers execute the real vectorized crack kernels, so a run of this
runtime genuinely cracks hashes while exercising every protocol path.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.apps.cracking import CrackTarget
from repro.cluster.protocol import GatherMessage, ScatterMessage
from repro.core.backend import resolve_backend
from repro.core.progress import ProgressLog
from repro.core.results import ResultMixin
from repro.keyspace import Charset, Interval, split_interval
from repro.obs.schema import MetricNames


@dataclass
class WorkerConfig:
    """One worker's identity and (test-oriented) behaviour knobs."""

    name: str
    batch_size: int = 1 << 12
    #: Die silently after completing this many chunks (fault injection).
    fail_after_chunks: int | None = None
    #: Artificial per-chunk delay in seconds (heterogeneity injection).
    slowdown: float = 0.0
    #: Execution backend this node runs its interval searches on —
    #: ``"serial"`` (default), ``"thread"`` or ``"process"``; a node with
    #: ``pool_workers > 1`` behaves like the paper's multi-GPU node.
    backend: str = "serial"
    pool_workers: int = 1


class _Worker(threading.Thread):
    """A worker node: decode scatter, crack, encode gather."""

    def __init__(self, config: WorkerConfig, master_outbox: queue.Queue) -> None:
        super().__init__(name=f"worker-{config.name}", daemon=True)
        self.config = config
        self.inbox: queue.Queue = queue.Queue()
        self.master_outbox = master_outbox
        self._chunks_done = 0
        self._backend = resolve_backend(config.backend, workers=config.pool_workers)

    def run(self) -> None:
        while True:
            raw = self.inbox.get()
            if raw is None:  # shutdown
                return
            msg = ScatterMessage.decode(raw)
            if (
                self.config.fail_after_chunks is not None
                and self._chunks_done >= self.config.fail_after_chunks
            ):
                continue  # silently drop work: a crashed node
            started = time.perf_counter()
            if msg.algorithm == "ntlm":
                from repro.apps.ntlm import NTLMTarget, crack_ntlm

                ntlm = NTLMTarget(
                    digest=msg.digest,
                    charset=Charset(msg.charset),
                    min_length=msg.min_length,
                    max_length=msg.max_length,
                )
                matches = crack_ntlm(ntlm, msg.interval, batch_size=self.config.batch_size)
            else:
                target = CrackTarget(
                    algorithm=HashAlgorithm(msg.algorithm),
                    digest=msg.digest,
                    charset=Charset(msg.charset),
                    min_length=msg.min_length,
                    max_length=msg.max_length,
                    prefix=msg.prefix,
                    suffix=msg.suffix,
                )
                if self._backend.workers > 1:
                    # A multi-unit node spreads its interval over its own
                    # pool, like the paper's dispatcher inside a node.
                    sub = max(1, msg.interval.size // (self._backend.workers * 2))
                    chunks = split_interval(msg.interval, sub)
                else:
                    chunks = [msg.interval]
                outcome = self._backend.run(
                    target, chunks, batch_size=self.config.batch_size
                )
                matches = outcome.found
            if self.config.slowdown:
                time.sleep(self.config.slowdown)
            elapsed = time.perf_counter() - started
            reply = GatherMessage(
                interval=msg.interval,
                tested=msg.interval.size,
                elapsed_us=max(1, int(elapsed * 1e6)),
                matches=tuple(matches[:8]),  # wire budget: cap the list
            )
            self.master_outbox.put((self.config.name, reply.encode()))
            self._chunks_done += 1


from repro.kernels.variants import HashAlgorithm  # noqa: E402


@dataclass
class RuntimeResult(ResultMixin):
    """Outcome of a distributed run (unified ``RunResult`` surface)."""

    found: list = field(default_factory=list)
    progress: ProgressLog | None = None
    chunks: int = 0
    requeued: int = 0
    dead_workers: list = field(default_factory=list)
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Measured per-worker throughput (keys/s) from the gather messages —
    #: the real ``X_j`` the balancing rule consumes.
    worker_throughput: dict = field(default_factory=dict)
    tested: int = 0  #: candidates confirmed scanned via gather messages
    elapsed: float = 0.0  #: master wall-clock for the whole run
    backend: str = "distributed"
    metrics: dict | None = None  #: repro-metrics/v1 payload when recorded


class DistributedMaster:
    """Drives a crack target (MD5/SHA1/NTLM) over protocol-speaking workers."""

    def __init__(
        self,
        target,
        workers: list[WorkerConfig],
        chunk_size: int = 5000,
        reply_timeout: float = 30.0,
        adaptive: bool = False,
    ) -> None:
        if not workers:
            raise ValueError("need at least one worker")
        if len({w.name for w in workers}) != len(workers):
            raise ValueError("duplicate worker names")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.target = target
        self.worker_configs = list(workers)
        self.chunk_size = chunk_size
        self.reply_timeout = reply_timeout
        #: Size chunks by each worker's *measured* throughput (Section III's
        #: adaptive balancing): ``N_j = N_max * (X_j / X_max)``.
        self.adaptive = adaptive

    # ------------------------------------------------------------------ #
    def run(
        self,
        interval: Interval | None = None,
        stop_on_first: bool = False,
        progress: ProgressLog | None = None,
        recorder=None,
        checkpoint=None,
        checkpoint_every: int = 8,
    ) -> RuntimeResult:
        """Execute the search; returns the gathered matches and accounting.

        ``progress`` may carry a previous session's checkpoint: completed
        intervals are never re-dispatched.  ``checkpoint`` — a callable
        receiving the :class:`ProgressLog` — is invoked every
        ``checkpoint_every`` gathered chunks and once at the end, so the
        master persists its coverage through the same durable store
        (:class:`repro.service.JobStore`) checkpointed local runs use.
        ``recorder`` (a :class:`repro.obs.Recorder`) captures the per-node
        chunk timeline, adaptive rebalance decisions, and fault events
        (worker deaths and requeues); the export lands on
        ``result.metrics``.
        """
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        target = self.target
        interval = interval if interval is not None else Interval(0, target.space_size)
        log = progress if progress is not None else ProgressLog(total=interval.stop)
        result = RuntimeResult(progress=log)
        run_started = time.perf_counter()
        last_chunk_sizes: dict[str, int] = {}

        replies: queue.Queue = queue.Queue()
        threads = {cfg.name: _Worker(cfg, replies) for cfg in self.worker_configs}
        for t in threads.values():
            t.start()
        alive = set(threads)
        outstanding: dict[str, Interval] = {}
        pending_gaps = [
            gap
            for gap in log.remaining()
            if gap.overlaps(interval)
        ]
        queue_intervals: list[Interval] = [
            Interval(max(gap.start, interval.start), min(gap.stop, interval.stop))
            for gap in pending_gaps
        ]
        queue_intervals = [iv for iv in queue_intervals if iv]

        tested_by: dict[str, int] = {}
        elapsed_by: dict[str, float] = {}

        def chunk_size_for(worker: str) -> int:
            """Per-worker chunk: measured ``N_j = N_max * X_j / X_max``."""
            if not self.adaptive:
                return self.chunk_size
            rates = result.worker_throughput
            if not rates or worker not in rates:
                return self.chunk_size
            from repro.cluster.balance import (
                THROUGHPUT_FLOOR_RATIO,
                adaptive_chunk_size,
            )

            fastest = max(rates.values())
            # Floor a near-zero measurement so a mismeasured worker keeps
            # receiving non-degenerate chunks (its next gather corrects X_j).
            rate = max(rates[worker], fastest * THROUGHPUT_FLOOR_RATIO)
            size = adaptive_chunk_size(self.chunk_size, rate, fastest)
            if recorder is not None and last_chunk_sizes.get(worker) != size:
                recorder.event(
                    MetricNames.EVENT_REBALANCE,
                    worker=worker,
                    before=last_chunk_sizes.get(worker, self.chunk_size),
                    after=size,
                )
                last_chunk_sizes[worker] = size
            return size

        def next_chunk(size: int) -> Interval | None:
            while queue_intervals:
                head = queue_intervals[0]
                chunk, rest = head.take(size)
                if rest:
                    queue_intervals[0] = rest
                else:
                    queue_intervals.pop(0)
                if chunk:
                    return chunk
            return None

        def dispatch(worker: str) -> bool:
            chunk = next_chunk(chunk_size_for(worker))
            if chunk is None:
                return False
            msg = ScatterMessage(
                interval=chunk,
                digest=target.digest,
                charset=target.charset.symbols,
                min_length=target.min_length,
                max_length=target.max_length,
                prefix=getattr(target, "prefix", b""),
                suffix=getattr(target, "suffix", b""),
                algorithm=(
                    target.algorithm.value
                    if hasattr(target, "algorithm")
                    else "ntlm"
                ),
            )
            raw = msg.encode()
            result.bytes_sent += len(raw)
            outstanding[worker] = chunk
            threads[worker].inbox.put(raw)
            return True

        # Prime every worker with one chunk.
        for name in list(alive):
            if not dispatch(name):
                break
        stopping = False
        try:
            while outstanding:
                try:
                    name, raw = replies.get(timeout=self.reply_timeout)
                except queue.Empty:
                    # Every outstanding worker missed the deadline: declare
                    # them dead and requeue their intervals (Section III's
                    # monitoring + repartitioning).
                    for dead, chunk in list(outstanding.items()):
                        alive.discard(dead)
                        result.dead_workers.append(dead)
                        result.requeued += chunk.size
                        queue_intervals.insert(0, chunk)
                        del outstanding[dead]
                        if recorder is not None:
                            recorder.counter(MetricNames.CLUSTER_CHUNKS_FAILED)
                            recorder.counter(MetricNames.CLUSTER_REQUEUED, chunk.size)
                            recorder.event(
                                MetricNames.EVENT_WORKER_DEAD, worker=dead
                            )
                            recorder.event(
                                MetricNames.EVENT_CHUNK_REQUEUED,
                                worker=dead,
                                start=chunk.start,
                                stop=chunk.stop,
                            )
                    if not alive:
                        raise RuntimeError("all workers died before completion")
                    for name in list(alive):
                        if name not in outstanding and not dispatch(name):
                            break
                    continue
                reply = GatherMessage.decode(raw)
                result.bytes_received += len(raw)
                expected = outstanding.pop(name, None)
                if expected != reply.interval:  # pragma: no cover - defensive
                    raise RuntimeError("protocol violation: interval mismatch")
                log.mark_done(reply.interval, reply.matches)
                result.found.extend(reply.matches)
                result.chunks += 1
                result.tested += reply.tested
                if checkpoint is not None and result.chunks % checkpoint_every == 0:
                    checkpoint(log)
                    if recorder is not None:
                        recorder.counter(MetricNames.SERVICE_CHECKPOINTS)
                tested_by[name] = tested_by.get(name, 0) + reply.tested
                elapsed_by[name] = elapsed_by.get(name, 0.0) + reply.elapsed_us / 1e6
                if elapsed_by[name] > 0:
                    result.worker_throughput[name] = tested_by[name] / elapsed_by[name]
                if recorder is not None:
                    recorder.counter(MetricNames.CLUSTER_CHUNKS, worker=name)
                    recorder.span_record(
                        MetricNames.PHASE_SEARCH,
                        reply.elapsed_us / 1e6,
                        backend="distributed",
                        worker=name,
                    )
                    recorder.event(
                        MetricNames.EVENT_CHUNK_DONE,
                        worker=name,
                        start=reply.interval.start,
                        stop=reply.interval.stop,
                        elapsed_us=reply.elapsed_us,
                    )
                if stop_on_first and result.found:
                    stopping = True
                if not stopping:
                    dispatch(name)
        finally:
            for t in threads.values():
                t.inbox.put(None)
            # Final durable write: whatever was gathered survives the run,
            # even when the loop above raised (e.g. every worker died).
            if checkpoint is not None:
                checkpoint(log)
                if recorder is not None:
                    recorder.counter(MetricNames.SERVICE_CHECKPOINTS)
        result.found.sort()
        result.elapsed = time.perf_counter() - run_started
        if recorder is not None:
            for name, rate in sorted(result.worker_throughput.items()):
                recorder.gauge(
                    MetricNames.WORKER_KEYS_PER_SECOND,
                    rate,
                    backend="distributed",
                    worker=name,
                )
            result.metrics = recorder.export()
        return result
