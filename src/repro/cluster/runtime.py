"""The distributed runtime: one gather loop over pluggable transports.

Everything the paper's system does on a LAN, executed either over thread
queues standing in for sockets (:class:`InProcessTransport`) or over the
real length-prefixed TCP transport
(:class:`~repro.cluster.transport.TcpMasterTransport`):

* the master serializes :class:`~repro.cluster.protocol.ScatterMessage`
  bytes out and decodes :class:`~repro.cluster.protocol.GatherMessage`
  bytes coming back — the exact payloads whose size Section II bounds;
* chunk sizes follow each worker's *measured* throughput (the adaptive
  balancing of Section III), starting from equal priors;
* liveness is heartbeat-driven (:class:`~repro.cluster.health.
  HealthMonitor`): a silent worker is declared dead after the grace and
  its outstanding interval requeued, per-worker deadlines scale with the
  worker's own ``X_j`` so a straggler never condemns the survivors, and
  flapping workers are quarantined then probed back in;
* stragglers' chunks are speculatively re-dispatched to idle workers and
  the first reply wins — the gather path is *idempotent*
  (:func:`~repro.keyspace.intervals.subtract_interval` keeps only the
  novel pieces of any reply), so duplicates, late replies, and replays
  can never double-count coverage;
* a :class:`~repro.core.progress.ProgressLog` tracks exactly-once
  coverage and makes the run resumable; when every worker is gone the
  master raises :class:`AllWorkersDeadError` carrying that log (or, with
  ``fallback="local"``, finishes the remaining gaps itself).

Workers execute the real vectorized crack kernels, so a run of this
runtime genuinely cracks hashes while exercising every protocol path.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.apps.cracking import CrackTarget
from repro.cluster.health import ALIVE, PROBING, QUARANTINED, HealthConfig, HealthMonitor
from repro.cluster.protocol import (
    STEAL_GRANT_MAX_INTERVALS,
    ControlMessage,
    EvictMessage,
    GatherMessage,
    HeartbeatMessage,
    JoinMessage,
    LeaveMessage,
    ScatterMessage,
    WelcomeMessage,
    decode_any,
)
from repro.core.backend import resolve_backend
from repro.core.progress import ProgressLog
from repro.core.results import ResultMixin
from repro.keyspace import Charset, Interval, split_interval
from repro.keyspace.intervals import merge_intervals, subtract_interval
from repro.obs.schema import MetricNames


@dataclass
class WorkerConfig:
    """One worker's identity and (test-oriented) behaviour knobs."""

    name: str
    batch_size: int = 1 << 12
    #: Die silently after completing this many chunks (fault injection).
    fail_after_chunks: int | None = None
    #: Artificial per-chunk delay in seconds (heterogeneity injection).
    slowdown: float = 0.0
    #: Execution backend this node runs its interval searches on —
    #: ``"serial"`` (default), ``"thread"`` or ``"process"``; a node with
    #: ``pool_workers > 1`` behaves like the paper's multi-GPU node.
    backend: str = "serial"
    pool_workers: int = 1


def execute_scatter(
    msg: ScatterMessage,
    backend,
    batch_size: int = 1 << 12,
    preempt=None,
    slowdown: float = 0.0,
    match_cap: int = 8,
):
    """Execute one assignment; returns ``(replies, tested, elapsed)``.

    The shared worker-side engine of both the in-process ``_Worker`` and
    the TCP :class:`~repro.cluster.transport.WorkerClient`.  The interval
    is scanned in sub-chunks so a ``preempt`` signal (a cancel control
    frame) takes effect at a chunk boundary; whatever *did* complete is
    reported as one :class:`GatherMessage` per contiguous completed
    region, so a cancelled worker still contributes exact coverage.  A
    scan cancelled before any sub-chunk finished replies with an explicit
    empty interval so the master retires the assignment promptly.
    """
    started = time.perf_counter()
    if msg.algorithm == "ntlm":
        from repro.apps.ntlm import NTLMTarget, crack_ntlm

        ntlm = NTLMTarget(
            digest=msg.digest,
            charset=Charset(msg.charset),
            min_length=msg.min_length,
            max_length=msg.max_length,
        )
        matches = list(crack_ntlm(ntlm, msg.interval, batch_size=batch_size))
        gathered = [msg.interval] if msg.interval else []
    else:
        target = CrackTarget(
            algorithm=HashAlgorithm(msg.algorithm),
            digest=msg.digest,
            charset=Charset(msg.charset),
            min_length=msg.min_length,
            max_length=msg.max_length,
            prefix=msg.prefix,
            suffix=msg.suffix,
        )
        tuned = getattr(backend, "tuned", None)
        if tuned is not None and tuned.chunk_size <= msg.interval.size:
            # The sweep's measured-best sub-chunk for this pool shape.
            sub = tuned.chunk_size
        elif backend.workers > 1:
            # A multi-unit node spreads its interval over its own pool,
            # like the paper's dispatcher inside a node.
            sub = max(1, msg.interval.size // (backend.workers * 2))
        else:
            sub = max(batch_size, -(-msg.interval.size // 8))
        chunks = split_interval(msg.interval, sub) if msg.interval else []
        outcome = backend.run(target, chunks, batch_size=batch_size, preempt=preempt)
        matches = list(outcome.found)
        unfinished = set(outcome.unfinished)
        gathered = merge_intervals(c for c in chunks if c not in unfinished)
    if slowdown:
        time.sleep(slowdown)
    elapsed = time.perf_counter() - started
    tested = sum(iv.size for iv in gathered)
    replies: list[GatherMessage] = []
    if not gathered:
        replies.append(
            GatherMessage(
                interval=Interval(msg.interval.start, msg.interval.start),
                tested=0,
                elapsed_us=max(1, int(elapsed * 1e6)),
            )
        )
    for iv in gathered:
        iv_matches = tuple(m for m in matches if m[0] in iv)[:match_cap]
        share = elapsed * (iv.size / tested) if tested else elapsed
        replies.append(
            GatherMessage(
                interval=iv,
                tested=iv.size,
                elapsed_us=max(1, int(share * 1e6)),
                matches=iv_matches,
            )
        )
    return replies, tested, elapsed


class PendingQueue:
    """Thread-safe pool of not-yet-dispatched intervals — the unit of
    work stealing.

    The owning master dispatches from the *head*; a thief steals from
    the *tail* (:meth:`steal_half`), so the two ends never contend for
    the same span.  Every mutation holds the lock: the queue is shared
    between a lane's gather loop and the coordinator thread serving a
    sibling's :class:`~repro.cluster.protocol.StealRequestMessage`, and
    a span must never be visible in two queues at once (the grant is
    encoded only after the spans left this pool).
    """

    def __init__(self, intervals=()) -> None:
        self._lock = threading.Lock()
        self._items: list[Interval] = [iv for iv in intervals if iv]

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self._items)

    def total(self) -> int:
        """Pending candidate ids (the victim-selection heuristic)."""
        with self._lock:
            return sum(iv.size for iv in self._items)

    def snapshot(self) -> list[Interval]:
        with self._lock:
            return list(self._items)

    def seed(self, intervals) -> None:
        with self._lock:
            self._items.extend(iv for iv in intervals if iv)

    def push_front(self, intervals) -> None:
        """Requeue spans at the head (hot work: failures, steal loot)."""
        with self._lock:
            self._items[:0] = [iv for iv in intervals if iv]

    def take(self, size: int) -> Interval | None:
        """Pop up to *size* ids off the head; ``None`` when empty."""
        with self._lock:
            while self._items:
                head = self._items[0]
                chunk, rest = head.take(size)
                if rest:
                    self._items[0] = rest
                else:
                    self._items.pop(0)
                if chunk:
                    return chunk
            return None

    def subtract(self, piece: Interval) -> None:
        """Drop every id of *piece* wherever it appears in the queue."""
        with self._lock:
            self._items[:] = [
                part for iv in self._items for part in subtract_interval(iv, [piece])
            ]

    def drain(self) -> list[Interval]:
        with self._lock:
            items = self._items
            self._items = []
            return items

    def steal_half(
        self, max_intervals: int = STEAL_GRANT_MAX_INTERVALS
    ) -> list[Interval]:
        """Remove and return ~half the pending ids, tail first.

        The spans are gone from this queue before the caller sees them,
        so at any instant each id is pending on at most one master —
        the first-owner-wins half of the stealing exactness argument
        (the other half is ``subtract_interval`` dedup on the board).
        """
        with self._lock:
            total = sum(iv.size for iv in self._items)
            if total == 0:
                return []
            budget = (total + 1) // 2
            stolen: list[Interval] = []
            got = 0
            while self._items and got < budget and len(stolen) < max_intervals:
                tail = self._items[-1]
                need = budget - got
                if tail.size <= need:
                    stolen.append(self._items.pop())
                    got += tail.size
                else:
                    self._items[-1] = Interval(tail.start, tail.stop - need)
                    stolen.append(Interval(tail.stop - need, tail.stop))
                    got += need
            stolen.reverse()
            return stolen


class _Worker(threading.Thread):
    """An in-process worker node: decode scatter, crack, encode gather.

    A separate daemon thread beacons :class:`HeartbeatMessage` at the
    configured interval — a worker that crashes (``fail_after_chunks``)
    goes *fully* silent, heartbeats included, which is exactly the signal
    the master's liveness layer is built to catch.
    """

    def __init__(
        self,
        config: WorkerConfig,
        master_outbox: queue.Queue,
        heartbeat_interval: float = 0.2,
    ) -> None:
        super().__init__(name=f"worker-{config.name}", daemon=True)
        self.config = config
        self.inbox: queue.Queue = queue.Queue()
        self.master_outbox = master_outbox
        self.cancel_event = threading.Event()
        self.heartbeat_interval = heartbeat_interval
        self._halt = threading.Event()
        self._chunks_done = 0
        self._tested = 0
        self._elapsed = 0.0
        self._backend = resolve_backend(config.backend, workers=config.pool_workers)
        self._beacon = threading.Thread(
            target=self._heartbeat_loop,
            name=f"heartbeat-{config.name}",
            daemon=True,
        )

    def start(self) -> None:
        super().start()
        self._beacon.start()

    def deliver(self, payload: bytes) -> None:
        """Transport entry point — what the master's ``send`` calls.

        Cancel is handled out-of-band: the inbox is not drained while a
        chunk is being scanned, so the signal reaches the scan through
        the preempt event instead of queueing behind the work.
        """
        try:
            msg = decode_any(payload)
        except ValueError:
            msg = None
        if isinstance(msg, ControlMessage) and msg.command == "cancel":
            self.cancel_event.set()
            return
        self.inbox.put(payload)

    def shutdown(self) -> None:
        self.inbox.put(None)

    def _heartbeat_loop(self) -> None:
        while not self._halt.is_set():
            rate = int(self._tested / self._elapsed) if self._elapsed > 0 else 0
            beat = HeartbeatMessage(
                node=self.config.name, busy=False, rate_keys_per_s=rate
            )
            self.master_outbox.put((self.config.name, beat.encode()))
            self._halt.wait(self.heartbeat_interval)

    def run(self) -> None:
        try:
            while True:
                raw = self.inbox.get()
                if raw is None:  # shutdown sentinel
                    return
                try:
                    msg = decode_any(raw)
                except ValueError:
                    continue  # garbage frames are dropped, never fatal
                if isinstance(msg, ControlMessage):
                    if msg.command == "shutdown":
                        return
                    continue
                if not isinstance(msg, ScatterMessage):
                    continue
                if (
                    self.config.fail_after_chunks is not None
                    and self._chunks_done >= self.config.fail_after_chunks
                ):
                    return  # crash: drop the chunk and go silent
                self.cancel_event.clear()
                replies, tested, elapsed = execute_scatter(
                    msg,
                    self._backend,
                    batch_size=self.config.batch_size,
                    preempt=self.cancel_event.is_set,
                    slowdown=self.config.slowdown,
                )
                self._chunks_done += 1
                self._tested += tested
                self._elapsed += elapsed
                for reply in replies:
                    self.master_outbox.put((self.config.name, reply.encode()))
        finally:
            self._halt.set()


from repro.kernels.variants import HashAlgorithm  # noqa: E402


class InProcessTransport:
    """Thread-queue transport with the same interface as the TCP master.

    ``send`` never fails — a crashed worker's inbox still accepts frames,
    like a kernel socket buffering toward a dead peer — so liveness must
    come from heartbeats and deadlines, exactly as over a real network.
    """

    def __init__(
        self, configs: list[WorkerConfig], heartbeat_interval: float = 0.2
    ) -> None:
        names = [cfg.name for cfg in configs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate worker names")
        self._inbound: queue.Queue = queue.Queue()
        self._heartbeat_interval = heartbeat_interval
        self._workers = {
            cfg.name: _Worker(cfg, self._inbound, heartbeat_interval)
            for cfg in configs
        }
        self._started = False

    def start(self) -> "InProcessTransport":
        if not self._started:
            self._started = True
            for worker in self._workers.values():
                worker.start()
        return self

    def add_worker(self, config: WorkerConfig) -> None:
        """Admit a new worker into a (possibly live) run — elastic join.

        The worker's first heartbeat registers it with the master's
        liveness layer, which immediately hands it a chunk from the
        pending queue; nothing else needs to know it is new.
        """
        if config.name in self._workers:
            raise ValueError(f"duplicate worker name {config.name!r}")
        worker = _Worker(config, self._inbound, self._heartbeat_interval)
        self._workers[config.name] = worker
        if self._started:
            worker.start()

    def poll(self, timeout: float):
        try:
            return self._inbound.get(timeout=timeout)
        except queue.Empty:
            return None

    def send(self, name: str, payload: bytes) -> bool:
        worker = self._workers.get(name)
        if worker is None:
            return False
        worker.deliver(payload)
        return True

    def workers(self) -> list[str]:
        return sorted(self._workers)

    def close(self) -> None:
        for worker in self._workers.values():
            worker.shutdown()


class AllWorkersDeadError(RuntimeError):
    """Every worker is gone and unfinished keyspace remains.

    Carries the exact coverage at the moment of failure so callers — the
    job scheduler, the CLI — can checkpoint it and resume the run later
    instead of restarting from zero: ``progress`` is the
    :class:`ProgressLog`, ``partial`` the :class:`RuntimeResult` with
    everything gathered so far.
    """

    def __init__(self, message: str, progress=None, partial=None) -> None:
        super().__init__(message)
        self.progress = progress
        self.partial = partial


@dataclass
class _Dispatch:
    """One outstanding assignment the master is waiting on."""

    chunk: Interval
    sent_at: float
    deadline: float
    speculative: bool = False
    probe: bool = False


@dataclass
class RuntimeResult(ResultMixin):
    """Outcome of a distributed run (unified ``RunResult`` surface)."""

    found: list = field(default_factory=list)
    progress: ProgressLog | None = None
    chunks: int = 0
    requeued: int = 0
    dead_workers: list = field(default_factory=list)
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Measured per-worker throughput (keys/s) from the gather messages —
    #: the real ``X_j`` the balancing rule consumes.
    worker_throughput: dict = field(default_factory=dict)
    tested: int = 0  #: candidates confirmed scanned via gather messages
    elapsed: float = 0.0  #: master wall-clock for the whole run
    backend: str = "distributed"
    metrics: dict | None = None  #: repro-metrics/v2 payload when recorded
    # -- fault-tolerance accounting ------------------------------------- #
    heartbeats: int = 0  #: beacons the master consumed
    reconnects: int = 0  #: dead workers that rejoined
    late_replies: int = 0  #: replies with no matching outstanding dispatch
    duplicates: int = 0  #: replies whose coverage was already complete
    speculated: int = 0  #: straggler chunks re-dispatched speculatively
    speculative_wins: int = 0  #: speculative copies that beat the original
    cancels_sent: int = 0  #: cancel control frames sent
    corrupt_payloads: int = 0  #: undecodable inbound payloads dropped
    quarantined: list = field(default_factory=list)  #: circuit-broken workers
    fallback_used: bool = False  #: remaining gaps were finished locally
    # -- elastic membership / work stealing ------------------------------ #
    members_joined: int = 0  #: explicit JoinMessages admitted
    members_left: int = 0  #: graceful LeaveMessage departures
    evicted: list = field(default_factory=list)  #: membership revocations
    steals: int = 0  #: successful steals from sibling masters
    stolen_candidates: int = 0  #: ids whose ownership moved here
    preempted: bool = False  #: the run was cut short by ``preempt``


class DistributedMaster:
    """Drives a crack target (MD5/SHA1/NTLM) over protocol-speaking workers.

    Two construction modes: the legacy in-process one (pass ``workers``,
    a list of :class:`WorkerConfig` — the master builds and owns an
    :class:`InProcessTransport` per run), or transport mode (pass a
    started ``transport`` such as :class:`~repro.cluster.transport.
    TcpMasterTransport` — the caller owns its lifetime).  Either way the
    gather loop is the same: heartbeat liveness, per-worker deadlines,
    quarantine + probes, speculation, idempotent first-reply-wins dedup.
    """

    def __init__(
        self,
        target,
        workers: list[WorkerConfig] | None = None,
        chunk_size: int = 5000,
        reply_timeout: float = 30.0,
        adaptive: bool = False,
        transport=None,
        health: HealthConfig | None = None,
        fallback: str | None = None,
        clock=time.monotonic,
        name: str = "master",
        membership=None,
    ) -> None:
        if transport is None and not workers:
            raise ValueError("need at least one worker")
        if transport is not None and workers:
            raise ValueError("pass worker configs or a transport, not both")
        if workers and len({w.name for w in workers}) != len(workers):
            raise ValueError("duplicate worker names")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if fallback not in (None, "local"):
            raise ValueError("fallback must be None or 'local'")
        self.target = target
        self.worker_configs = list(workers) if workers else []
        self.chunk_size = chunk_size
        #: With no measured throughput yet, the prior deadline for any
        #: assignment (the legacy global reply timeout, now per-worker).
        self.reply_timeout = reply_timeout
        #: Size chunks by each worker's *measured* throughput (Section III's
        #: adaptive balancing): ``N_j = N_max * (X_j / X_max)``.
        self.adaptive = adaptive
        self.transport = transport
        self.health = health if health is not None else HealthConfig()
        self.fallback = fallback
        self.clock = clock
        #: This master's identity on the wire (WelcomeMessage.master and
        #: the thief/victim names of the stealing protocol).
        self.name = name
        #: A :class:`~repro.cluster.elastic.MemberRegistry`; built per
        #: run when not supplied, so membership events always flow.
        self.membership = membership

    # ------------------------------------------------------------------ #
    def run(
        self,
        interval: Interval | None = None,
        stop_on_first: bool = False,
        progress: ProgressLog | None = None,
        recorder=None,
        checkpoint=None,
        checkpoint_every: int = 8,
        preempt=None,
        pending_pool: PendingQueue | None = None,
        steal_source=None,
    ) -> RuntimeResult:
        """Execute the search; returns the gathered matches and accounting.

        ``progress`` may carry a previous session's checkpoint: completed
        intervals are never re-dispatched.  ``checkpoint`` — a callable
        receiving the :class:`ProgressLog` — is invoked every
        ``checkpoint_every`` gathered chunks and once at the end, so the
        master persists its coverage through the same durable store
        (:class:`repro.service.JobStore`) checkpointed local runs use.
        ``recorder`` (a :class:`repro.obs.Recorder`) captures the per-node
        chunk timeline, adaptive rebalance decisions, and every fault
        event — heartbeat misses, deadline expiries, quarantines, probes,
        speculations, late/duplicate replies; the export lands on
        ``result.metrics``.

        Raises :class:`AllWorkersDeadError` (a ``RuntimeError``) when no
        worker is recoverable and keyspace remains — unless the master
        was built with ``fallback="local"``, in which case the remaining
        gaps are finished on a local serial backend.

        Elastic hooks: ``preempt`` (a callable) cuts the run short at
        the next loop tick — outstanding chunks are cancelled, the drain
        window collected, and ``result.preempted`` set; ``pending_pool``
        substitutes a shared :class:`PendingQueue` so a coordinator can
        steal from this master while it runs; ``steal_source`` (a
        callable returning intervals) is consulted whenever the local
        pool runs dry — non-empty loot extends the run's domain instead
        of ending it.  ``progress`` may be any ledger exposing the
        :class:`~repro.core.progress.ProgressLog` surface; one with a
        ``claim(piece, matches)`` method (the shard board) gets
        atomic first-owner-wins marking instead of the two-step
        subtract-then-mark.
        """
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        target = self.target
        interval = interval if interval is not None else Interval(0, target.space_size)
        log = progress if progress is not None else ProgressLog(total=interval.stop)
        result = RuntimeResult(progress=log)
        run_started = time.perf_counter()
        clock = self.clock
        health = HealthMonitor(self.health, clock=clock)
        last_chunk_sizes: dict[str, int] = {}

        own_transport = self.transport is None
        transport = (
            InProcessTransport(
                self.worker_configs,
                heartbeat_interval=self.health.heartbeat_interval,
            )
            if own_transport
            else self.transport
        )
        transport.start()

        membership = self.membership
        if membership is None:
            from repro.cluster.elastic import MemberRegistry

            membership = MemberRegistry()
        #: Atomic mark-and-dedup when the ledger is a shard board; the
        #: plain ProgressLog path keeps the legacy two-step below.
        claim = getattr(log, "claim", None)

        seed: list[Interval] = []
        for gap in log.remaining():
            if not gap.overlaps(interval):
                continue
            clipped = Interval(max(gap.start, interval.start), min(gap.stop, interval.stop))
            if clipped:
                seed.append(clipped)
        pending = pending_pool if pending_pool is not None else PendingQueue()
        pending.seed(seed)
        #: The id range replies may legitimately cover — starts as the
        #: requested interval, grows with every stolen span.
        domain = [interval.start, interval.stop]

        outstanding: dict[str, _Dispatch] = {}
        #: chunk (start, stop) -> the workers currently scanning it; more
        #: than one entry means a speculative copy is racing the original.
        inflight: dict[tuple, set] = {}
        tested_by: dict[str, int] = {}
        elapsed_by: dict[str, float] = {}
        stopping = False
        stop_deadline = 0.0
        tick = min(0.05, self.health.heartbeat_interval / 4)

        def chunk_size_for(worker: str) -> int:
            """Per-worker chunk: measured ``N_j = N_max * X_j / X_max``."""
            if not self.adaptive:
                return self.chunk_size
            rates = result.worker_throughput
            if not rates or worker not in rates:
                return self.chunk_size
            from repro.cluster.balance import (
                THROUGHPUT_FLOOR_RATIO,
                adaptive_chunk_size,
            )

            fastest = max(rates.values())
            # Floor a near-zero measurement so a mismeasured worker keeps
            # receiving non-degenerate chunks (its next gather corrects X_j).
            rate = max(rates[worker], fastest * THROUGHPUT_FLOOR_RATIO)
            size = adaptive_chunk_size(self.chunk_size, rate, fastest)
            if recorder is not None and last_chunk_sizes.get(worker) != size:
                recorder.event(
                    MetricNames.EVENT_REBALANCE,
                    worker=worker,
                    before=last_chunk_sizes.get(worker, self.chunk_size),
                    after=size,
                )
                last_chunk_sizes[worker] = size
            return size

        def next_chunk(size: int) -> Interval | None:
            return pending.take(size)

        def remove_from_pending(piece: Interval) -> None:
            pending.subtract(piece)

        def try_steal(now: float) -> bool:
            """Ask the coordinator for a sibling's pending spans.

            The source speaks a tri-state: a list of spans (loot), ``[]``
            (the whole cluster is drained — exiting is safe), or ``None``
            (nothing stealable *yet*, but a sibling still has work in
            flight that may be requeued — stay in the gather loop and
            ask again next tick).
            """
            if steal_source is None or stopping:
                return False
            loot = steal_source()
            if loot is None:
                return True
            if not loot:
                return False
            pending.push_front(loot)
            for span in loot:
                domain[0] = min(domain[0], span.start)
                domain[1] = max(domain[1], span.stop)
            result.steals += 1
            result.stolen_candidates += sum(span.size for span in loot)
            return True

        def scatter_for(chunk: Interval) -> ScatterMessage:
            return ScatterMessage(
                interval=chunk,
                digest=target.digest,
                charset=target.charset.symbols,
                min_length=target.min_length,
                max_length=target.max_length,
                prefix=getattr(target, "prefix", b""),
                suffix=getattr(target, "suffix", b""),
                algorithm=(
                    target.algorithm.value if hasattr(target, "algorithm") else "ntlm"
                ),
            )

        def note_quarantined(worker: str) -> None:
            if worker not in result.quarantined:
                result.quarantined.append(worker)
            if recorder is not None:
                recorder.event(MetricNames.EVENT_WORKER_QUARANTINED, worker=worker)

        def dispatch(
            worker: str,
            chunk: Interval | None = None,
            probe: bool = False,
            speculative: bool = False,
        ) -> bool:
            if stopping:
                return False
            if chunk is None:
                size = self.health.probe_chunk if probe else chunk_size_for(worker)
                chunk = next_chunk(size)
                if chunk is None:
                    return False
            raw = scatter_for(chunk).encode()
            now = clock()
            deadline = health.deadline_for(
                chunk.size,
                result.worker_throughput.get(worker),
                now=now,
                fallback=self.reply_timeout,
            )
            outstanding[worker] = _Dispatch(
                chunk, now, deadline, speculative=speculative, probe=probe
            )
            inflight.setdefault((chunk.start, chunk.stop), set()).add(worker)
            result.bytes_sent += len(raw)
            if not transport.send(worker, raw):
                fail(worker, "send-failed", now)
            return True

        def fail(worker: str, reason: str, now: float) -> None:
            """A liveness failure: requeue the assignment, maybe quarantine."""
            dead_dispatch = outstanding.pop(worker, None)
            state_after = health.record_failure(worker, now)
            result.dead_workers.append(worker)
            if recorder is not None:
                recorder.event(
                    MetricNames.EVENT_WORKER_DEAD, worker=worker, reason=reason
                )
                if dead_dispatch is not None:
                    recorder.counter(MetricNames.CLUSTER_CHUNKS_FAILED)
            if dead_dispatch is not None:
                chunk = dead_dispatch.chunk
                key = (chunk.start, chunk.stop)
                holders = inflight.get(key, set())
                holders.discard(worker)
                if not holders:
                    # No speculative twin still carries this chunk: requeue
                    # whatever of it is not already covered.
                    inflight.pop(key, None)
                    requeue = subtract_interval(chunk, log.completed)
                    pending.push_front(requeue)
                    requeued = sum(p.size for p in requeue)
                    if requeued:
                        result.requeued += requeued
                        if recorder is not None:
                            recorder.counter(MetricNames.CLUSTER_REQUEUED, requeued)
                            recorder.event(
                                MetricNames.EVENT_CHUNK_REQUEUED,
                                worker=worker,
                                start=chunk.start,
                                stop=chunk.stop,
                            )
            if state_after == QUARANTINED:
                note_quarantined(worker)
            threshold = self.health.evict_after_deaths
            if threshold and membership.is_active(worker):
                info = health.get(worker)
                if info is not None and info.deaths >= threshold:
                    evict_worker(worker, now, f"{info.deaths} deaths")

        def evict_worker(worker: str, now: float, reason: str) -> None:
            """Revoke membership: terminal for this run, never re-admitted."""
            membership.evict(worker, now, reason)
            health.forget(worker)
            transport.send(worker, EvictMessage(node=worker, reason=reason).encode())
            result.evicted.append(worker)
            if recorder is not None:
                recorder.event(
                    MetricNames.EVENT_MEMBER_EVICTED, worker=worker, reason=reason
                )

        def begin_stop(now: float, reason: str = "stop_on_first") -> None:
            nonlocal stopping, stop_deadline
            stopping = True
            stop_deadline = now + self.health.cancel_grace
            if outstanding:
                raw = ControlMessage("cancel", reason).encode()
                for worker in list(outstanding):
                    transport.send(worker, raw)
                    result.cancels_sent += 1
                    if recorder is not None:
                        recorder.event(
                            MetricNames.EVENT_CANCEL_SENT,
                            worker=worker,
                            reason=reason,
                        )

        def handle_heartbeat(name: str, rate: int, now: float) -> None:
            if membership.is_evicted(name):
                # Membership revocations are terminal for the run: any
                # proof of life from an evicted node is answered with a
                # (re-)evict instead of re-admission.
                transport.send(
                    name, EvictMessage(node=name, reason="membership revoked").encode()
                )
                return
            membership.join(name, now)
            transition = health.heartbeat(name, now)
            result.heartbeats += 1
            if recorder is not None:
                recorder.counter(MetricNames.CLUSTER_HEARTBEATS, worker=name)
            if name not in result.worker_throughput and rate > 0:
                # A reconnecting worker advertises its measured rate, so
                # deadlines are right-sized from its very first chunk.
                result.worker_throughput[name] = float(rate)
            if transition == "registered":
                if recorder is not None:
                    recorder.event(MetricNames.EVENT_WORKER_CONNECTED, worker=name)
                dispatch(name)
            elif transition == "rejoined":
                result.reconnects += 1
                if recorder is not None:
                    recorder.counter(MetricNames.CLUSTER_RECONNECTS)
                    recorder.event(MetricNames.EVENT_WORKER_REJOINED, worker=name)
                dispatch(name)
            elif transition == "quarantined":
                note_quarantined(name)

        def handle_join(name: str, msg: JoinMessage, now: float) -> None:
            """Admit (or refuse) an explicit membership request."""
            if membership.is_evicted(name):
                transport.send(
                    name, EvictMessage(node=name, reason="membership revoked").encode()
                )
                return
            newly = membership.join(
                name, now, rate=msg.rate_keys_per_s, backend=msg.backend
            )
            if newly:
                result.members_joined += 1
                if recorder is not None:
                    recorder.event(
                        MetricNames.EVENT_MEMBER_JOINED,
                        worker=name,
                        backend=msg.backend,
                        rate=msg.rate_keys_per_s,
                    )
            handle_heartbeat(name, msg.rate_keys_per_s, now)
            welcome = WelcomeMessage(
                master=self.name, members=len(membership.active())
            )
            transport.send(name, welcome.encode())
            if (
                not stopping
                and name not in outstanding
                and health.dispatchable(name)
            ):
                # A rejoining member whose heartbeat caused no transition
                # still deserves work right away.
                dispatch(name)

        def handle_leave(name: str, msg: LeaveMessage, now: float) -> None:
            """Graceful departure: requeue without failure accounting."""
            was_active = membership.is_active(name)
            membership.leave(name, now, msg.reason)
            parted = outstanding.pop(name, None)
            if parted is not None:
                key = (parted.chunk.start, parted.chunk.stop)
                holders = inflight.get(key, set())
                holders.discard(name)
                if not holders:
                    inflight.pop(key, None)
                    requeue = subtract_interval(parted.chunk, log.completed)
                    pending.push_front(requeue)
                    result.requeued += sum(p.size for p in requeue)
            health.forget(name)
            if was_active:
                result.members_left += 1
                if recorder is not None:
                    recorder.event(
                        MetricNames.EVENT_MEMBER_LEFT, worker=name, reason=msg.reason
                    )

        def handle_reply(name: str, reply: GatherMessage, now: float) -> None:
            dispatched = outstanding.get(name)
            consumed = (
                dispatched is not None
                and dispatched.chunk.start <= reply.interval.start
                and reply.interval.stop <= dispatched.chunk.stop
            )
            if consumed:
                del outstanding[name]
            else:
                # Late or unsolicited: a worker we already declared dead
                # (or whose chunk was cancelled) finished anyway.  Its
                # coverage still counts — exactly once — and the reply
                # doubles as proof of life.
                result.late_replies += 1
                if recorder is not None:
                    recorder.event(
                        MetricNames.EVENT_LATE_REPLY,
                        worker=name,
                        start=reply.interval.start,
                        stop=reply.interval.stop,
                    )
                handle_heartbeat(name, 0, now)
            lo = max(reply.interval.start, domain[0])
            hi = min(reply.interval.stop, domain[1])
            covered_part = Interval(lo, hi) if hi > lo else None
            if covered_part is None:
                novel = []
            elif claim is not None:
                # The shard board marks and dedups under one lock —
                # first owner wins even when sibling masters race on a
                # stolen-then-completed span.
                novel = claim(covered_part, reply.matches)
            else:
                novel = subtract_interval(covered_part, log.completed)
            if covered_part is not None and not novel:
                result.duplicates += 1
                if recorder is not None:
                    recorder.counter(MetricNames.CLUSTER_DUPLICATES)
            for piece in novel:
                piece_matches = tuple(m for m in reply.matches if m[0] in piece)
                if claim is None:
                    log.mark_done(piece, piece_matches)
                result.found.extend(piece_matches)
                result.tested += piece.size
                remove_from_pending(piece)
            if reply.tested:
                tested_by[name] = tested_by.get(name, 0) + reply.tested
                elapsed_by[name] = elapsed_by.get(name, 0.0) + reply.elapsed_us / 1e6
                if elapsed_by[name] > 0:
                    result.worker_throughput[name] = (
                        tested_by[name] / elapsed_by[name]
                    )
            if recorder is not None and reply.interval:
                recorder.counter(MetricNames.CLUSTER_CHUNKS, worker=name)
                recorder.span_record(
                    MetricNames.PHASE_SEARCH,
                    reply.elapsed_us / 1e6,
                    backend="distributed",
                    worker=name,
                )
                recorder.event(
                    MetricNames.EVENT_CHUNK_DONE,
                    worker=name,
                    start=reply.interval.start,
                    stop=reply.interval.stop,
                    elapsed_us=reply.elapsed_us,
                )
            if not consumed:
                return
            if reply.interval:
                result.chunks += 1
            # First reply wins: retire every other copy of the chunk.
            key = (dispatched.chunk.start, dispatched.chunk.stop)
            holders = inflight.pop(key, set())
            holders.discard(name)
            for other in holders:
                outstanding.pop(other, None)
                transport.send(
                    other, ControlMessage("cancel", "completed elsewhere").encode()
                )
                result.cancels_sent += 1
                if recorder is not None:
                    recorder.event(
                        MetricNames.EVENT_CANCEL_SENT, worker=other, reason="dedup"
                    )
            if dispatched.speculative and reply.interval:
                result.speculative_wins += 1
                if recorder is not None:
                    recorder.event(
                        MetricNames.EVENT_SPECULATION_WIN,
                        worker=name,
                        start=dispatched.chunk.start,
                        stop=dispatched.chunk.stop,
                    )
            if dispatched.probe and reply.interval:
                health.probe_succeeded(name, now)
                if recorder is not None:
                    recorder.event(
                        MetricNames.EVENT_WORKER_PROBED, worker=name, ok=True
                    )
            if not stopping:
                # Any part of the assignment neither this (possibly
                # partial) reply nor anyone else delivered goes back on
                # the queue.
                leftover = subtract_interval(dispatched.chunk, log.completed)
                for other_dispatch in outstanding.values():
                    leftover = [
                        part
                        for piece in leftover
                        for part in subtract_interval(piece, [other_dispatch.chunk])
                    ]
                pending.push_front(leftover)
            if (
                checkpoint is not None
                and reply.interval
                and result.chunks % checkpoint_every == 0
            ):
                checkpoint(log)
                if recorder is not None:
                    recorder.counter(MetricNames.SERVICE_CHECKPOINTS)
            if not stopping and health.dispatchable(name):
                dispatch(name)

        def try_speculate(worker: str, now: float) -> bool:
            """Give an idle worker a copy of the oldest straggler chunk."""
            best_name, best = None, None
            for other, d in outstanding.items():
                if other == worker or d.probe:
                    continue
                if len(inflight.get((d.chunk.start, d.chunk.stop), ())) > 1:
                    continue  # already has a speculative copy
                expected = (d.deadline - d.sent_at) / self.health.deadline_slack
                # Never speculate before a full liveness window has passed:
                # a *silently dead* straggler should be caught (and its
                # chunk requeued) by the heartbeat timeout, not papered
                # over; speculation is for workers that are alive but slow.
                straggler_age = max(
                    self.health.speculation_slack * expected,
                    self.health.heartbeat_timeout,
                )
                if now - d.sent_at <= straggler_age:
                    continue
                if best is None or d.sent_at < best.sent_at:
                    best_name, best = other, d
            if best is None:
                return False
            result.speculated += 1
            if recorder is not None:
                recorder.counter(MetricNames.CLUSTER_SPECULATED)
                recorder.event(
                    MetricNames.EVENT_CHUNK_SPECULATED,
                    worker=worker,
                    origin=best_name,
                    start=best.chunk.start,
                    stop=best.chunk.stop,
                )
            dispatch(worker, chunk=best.chunk, speculative=True)
            return True

        def run_local_fallback() -> None:
            """Graceful degradation: finish the remaining gaps in-process."""
            result.fallback_used = True
            gaps = merge_intervals(pending.drain())
            if recorder is not None:
                recorder.event(
                    MetricNames.EVENT_FALLBACK_LOCAL,
                    remaining=sum(g.size for g in gaps),
                )
            if hasattr(target, "algorithm"):
                backend = resolve_backend("serial")
                chunks = [
                    c for gap in gaps for c in split_interval(gap, self.chunk_size)
                ]
                outcome = backend.run(
                    target, chunks, batch_size=1 << 14, stop_on_first=stop_on_first
                )
                unfinished = set(outcome.unfinished)
                for chunk in chunks:
                    if chunk in unfinished:
                        continue
                    chunk_matches = tuple(
                        m for m in outcome.found if m[0] in chunk
                    )
                    for piece in subtract_interval(chunk, log.completed):
                        log.mark_done(
                            piece, tuple(m for m in chunk_matches if m[0] in piece)
                        )
                    result.chunks += 1
                    result.tested += chunk.size
                result.found.extend(outcome.found)
            else:
                from repro.apps.ntlm import crack_ntlm

                for gap in gaps:
                    matches = crack_ntlm(target, gap)
                    for piece in subtract_interval(gap, log.completed):
                        log.mark_done(
                            piece, tuple(m for m in matches if m[0] in piece)
                        )
                    result.found.extend(matches)
                    result.chunks += 1
                    result.tested += gap.size
                    if stop_on_first and result.found:
                        break

        def finalize() -> None:
            result.found.sort()
            result.elapsed = time.perf_counter() - run_started
            if recorder is not None:
                for name, rate in sorted(result.worker_throughput.items()):
                    recorder.gauge(
                        MetricNames.WORKER_KEYS_PER_SECOND,
                        rate,
                        backend="distributed",
                        worker=name,
                    )
                recorder.gauge(
                    MetricNames.MEMBER_COUNT,
                    float(len(membership.active())),
                    master=self.name,
                )
                result.metrics = recorder.export()

        try:
            now = clock()
            for name in transport.workers():
                membership.join(name, now)
                if membership.is_evicted(name):
                    # Banned before the run started: notify, never dispatch.
                    transport.send(
                        name,
                        EvictMessage(node=name, reason="membership revoked").encode(),
                    )
                    continue
                health.register(name, now)
                if recorder is not None:
                    recorder.event(MetricNames.EVENT_WORKER_CONNECTED, worker=name)
                dispatch(name)
            while True:
                now = clock()
                if stopping:
                    if not outstanding or now >= stop_deadline:
                        break
                elif not pending and not outstanding:
                    if not try_steal(now):
                        break
                item = transport.poll(tick)
                now = clock()
                if item is not None:
                    name, payload = item
                    if payload is None:
                        # The transport saw the connection drop.
                        if health.state(name) in (ALIVE, PROBING):
                            fail(name, "disconnect", now)
                    else:
                        try:
                            msg = decode_any(payload)
                        except ValueError:
                            result.corrupt_payloads += 1
                            if recorder is not None:
                                recorder.counter(MetricNames.CLUSTER_CORRUPT)
                            msg = None
                        if isinstance(msg, HeartbeatMessage):
                            handle_heartbeat(name, msg.rate_keys_per_s, now)
                        elif isinstance(msg, GatherMessage):
                            result.bytes_received += len(payload)
                            handle_reply(name, msg, now)
                        elif isinstance(msg, JoinMessage):
                            handle_join(name, msg, now)
                        elif isinstance(msg, LeaveMessage):
                            handle_leave(name, msg, now)
                if stop_on_first and result.found and not stopping:
                    begin_stop(now)
                if preempt is not None and not stopping and preempt():
                    result.preempted = True
                    begin_stop(now, reason="preempted")
                if stopping:
                    continue
                for worker in health.missed_heartbeats(now):
                    if recorder is not None:
                        recorder.event(
                            MetricNames.EVENT_HEARTBEAT_MISSED, worker=worker
                        )
                    fail(worker, "heartbeat", now)
                for worker, d in list(outstanding.items()):
                    if now > d.deadline:
                        if recorder is not None:
                            recorder.event(
                                MetricNames.EVENT_DEADLINE_EXPIRED,
                                worker=worker,
                                start=d.chunk.start,
                                stop=d.chunk.stop,
                            )
                        fail(worker, "deadline", now)
                for worker in health.due_probes(now):
                    if worker in outstanding or not pending:
                        continue
                    health.probe_started(worker)
                    if recorder is not None:
                        recorder.event(
                            MetricNames.EVENT_WORKER_PROBED, worker=worker, ok=False
                        )
                    dispatch(worker, probe=True)
                known = health.known()
                exhausted = (
                    bool(known)
                    and not any(health.recoverable(w, now) for w in known)
                ) or (
                    # Everyone left or was evicted: no liveness entries
                    # remain, but unlike a fresh cluster awaiting its
                    # first join, nobody is coming back.
                    not known
                    and bool(result.members_left or result.evicted)
                    and not membership.active()
                )
                if pending and not outstanding and exhausted:
                    if self.fallback == "local":
                        run_local_fallback()
                        break
                    finalize()
                    raise AllWorkersDeadError(
                        "all workers died before completion",
                        progress=log,
                        partial=result,
                    )
                for worker in transport.workers():
                    if (
                        worker in outstanding
                        or not health.dispatchable(worker)
                        or not membership.is_active(worker)
                    ):
                        continue
                    if not dispatch(worker):
                        # An idle worker with an empty local pool: real
                        # stolen work beats a speculative duplicate.
                        if try_steal(now) and dispatch(worker):
                            continue
                        try_speculate(worker, now)
        finally:
            if own_transport:
                transport.close()
            # Final durable write: whatever was gathered survives the run,
            # even when the loop above raised (e.g. every worker died).
            if checkpoint is not None:
                checkpoint(log)
                if recorder is not None:
                    recorder.counter(MetricNames.SERVICE_CHECKPOINTS)
        finalize()
        return result
