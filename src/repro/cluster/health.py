"""Liveness, deadlines, backoff, and quarantine for distributed workers.

Section III's fault model is "the master monitors the nodes and
repartitions on failure" — this module is the *monitoring* half, factored
out of the gather loop so the policy is unit-testable with a fake clock:

* **Heartbeat liveness** — every worker beacons
  :class:`~repro.cluster.protocol.HeartbeatMessage` at a fixed interval;
  a worker that misses ``heartbeat_grace`` consecutive intervals is
  declared dead and its outstanding chunk is requeued, usually long
  before the chunk's own deadline would expire.
* **Per-worker chunk deadlines** — the time budget for an assignment is
  scaled by *that worker's* measured throughput ``X_j``
  (``deadline_slack * chunk_size / X_j``, floored at ``min_deadline``),
  so one straggler can never condemn every outstanding worker the way a
  single global reply timeout does.
* **Quarantine / circuit breaker** — a worker that fails
  ``quarantine_failures`` times within ``quarantine_window`` seconds is
  excluded from dispatch for ``quarantine_period`` seconds, then probed
  back in with a deliberately small chunk (``probe_chunk``); only a
  completed probe restores full duty.
* **Reconnect backoff** — :class:`BackoffPolicy` gives disconnected
  workers exponential delays with jitter so a flapping master address is
  not hammered in lockstep.

All state transitions take an explicit ``now`` so tests (and the
hypothesis property suite) drive the monitor deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

#: Worker lifecycle states the monitor tracks.
ALIVE = "alive"
DEAD = "dead"
QUARANTINED = "quarantined"
PROBING = "probing"


@dataclass(frozen=True)
class HealthConfig:
    """Tuning knobs of the liveness model (see docs/FAULT_TOLERANCE.md)."""

    #: Seconds between worker heartbeat beacons.
    heartbeat_interval: float = 0.2
    #: Missed intervals before a worker is declared dead.
    heartbeat_grace: float = 3.0
    #: Chunk deadline as a multiple of the expected scan time at the
    #: worker's measured throughput.
    deadline_slack: float = 4.0
    #: Absolute floor on any chunk deadline, seconds.
    min_deadline: float = 0.5
    #: Failures within ``quarantine_window`` that open the circuit.
    quarantine_failures: int = 3
    #: Sliding window (seconds) the failure count is evaluated over.
    quarantine_window: float = 30.0
    #: How long a quarantined worker is excluded before it is probed.
    quarantine_period: float = 5.0
    #: Size of the small probationary chunk a quarantined worker must
    #: complete to be restored to full duty.
    probe_chunk: int = 256
    #: A chunk older than ``speculation_slack * expected`` is a straggler
    #: eligible for speculative re-dispatch to an idle worker.
    speculation_slack: float = 3.0
    #: Drain window after ``stop_on_first`` fires: how long the master
    #: waits for cancelled workers' partial replies before returning.
    cancel_grace: float = 1.0
    #: Deaths before the master revokes membership entirely (sends an
    #: :class:`~repro.cluster.protocol.EvictMessage` and refuses
    #: re-admission for the rest of the run).  ``0`` disables eviction —
    #: the legacy behaviour, where a flapping worker cycles through
    #: quarantine forever.
    evict_after_deaths: int = 0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_grace < 1:
            raise ValueError("heartbeat_grace must be >= 1")
        if self.deadline_slack < 1:
            raise ValueError("deadline_slack must be >= 1")
        if self.min_deadline <= 0:
            raise ValueError("min_deadline must be positive")
        if self.quarantine_failures < 1:
            raise ValueError("quarantine_failures must be >= 1")
        if self.quarantine_window <= 0 or self.quarantine_period < 0:
            raise ValueError("quarantine window/period must be positive")
        if self.probe_chunk < 1:
            raise ValueError("probe_chunk must be >= 1")
        if self.speculation_slack < 1:
            raise ValueError("speculation_slack must be >= 1")
        if self.cancel_grace < 0:
            raise ValueError("cancel_grace must be non-negative")
        if self.evict_after_deaths < 0:
            raise ValueError("evict_after_deaths must be non-negative")

    @property
    def heartbeat_timeout(self) -> float:
        """Silence longer than this declares the worker dead."""
        return self.heartbeat_interval * self.heartbeat_grace


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with jitter for worker reconnect attempts."""

    base: float = 0.2
    cap: float = 15.0
    multiplier: float = 2.0
    #: Fraction of the raw delay randomized symmetrically around it.
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base <= 0 or self.cap < self.base:
            raise ValueError("need 0 < base <= cap")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Seconds to wait before reconnect *attempt* (0-based)."""
        raw = min(self.cap, self.base * self.multiplier ** max(0, attempt))
        if self.jitter == 0:
            return raw
        draw = (rng.random() if rng is not None else random.random())
        span = raw * self.jitter
        return max(0.0, raw - span + 2 * span * draw)


@dataclass
class WorkerHealth:
    """Everything the monitor knows about one worker."""

    name: str
    state: str = ALIVE
    last_heartbeat: float = 0.0
    failures: list = field(default_factory=list)  #: recent failure times
    quarantined_until: float = 0.0
    deaths: int = 0
    rejoins: int = 0


class HealthMonitor:
    """Per-worker liveness bookkeeping for a master gather loop.

    The loop feeds it heartbeats and failures; the monitor answers
    *who is dispatchable*, *whose silence has exceeded the grace*, and
    *which quarantined workers are due a probation probe*.

    The monitor is shared between the master's gather loop and the
    transport's receive threads (heartbeats land on a socket thread), so
    every ``_workers`` access holds ``_lock`` — an :class:`~threading.
    RLock`, because ``heartbeat``/``record_failure``/``probe_*`` call
    ``register`` while already holding it.  Without the lock a
    ``register`` racing ``missed_heartbeats`` dies with *dictionary
    changed size during iteration* (see
    ``tests/test_cluster_health.py::test_register_during_sweep_is_safe``).
    """

    def __init__(
        self, config: HealthConfig | None = None, clock=time.monotonic
    ) -> None:
        self.config = config if config is not None else HealthConfig()
        self._clock = clock
        self._lock = threading.RLock()
        self._workers: dict[str, WorkerHealth] = {}

    # -- introspection --------------------------------------------------- #
    def known(self) -> list[str]:
        with self._lock:
            return sorted(self._workers)

    def get(self, name: str) -> WorkerHealth | None:
        with self._lock:
            return self._workers.get(name)

    def state(self, name: str) -> str:
        with self._lock:
            entry = self._workers.get(name)
            return entry.state if entry is not None else DEAD

    def dispatchable(self, name: str) -> bool:
        """May the master hand this worker a *regular* chunk right now?

        Probing workers are excluded — they hold exactly one probationary
        chunk until it completes.
        """
        return self.state(name) == ALIVE

    # -- transitions ----------------------------------------------------- #
    def register(self, name: str, now: float | None = None) -> WorkerHealth:
        now = self._clock() if now is None else now
        with self._lock:
            entry = self._workers.get(name)
            if entry is None:
                entry = WorkerHealth(name=name, last_heartbeat=now)
                self._workers[name] = entry
            return entry

    def heartbeat(self, name: str, now: float | None = None) -> str:
        """Record a beacon; returns the transition it caused.

        ``"registered"`` — first contact; ``"rejoined"`` — a dead worker
        came back (and is dispatchable again); ``"quarantined"`` — it
        came back but the circuit is open, keep it benched; ``""`` — no
        state change.
        """
        now = self._clock() if now is None else now
        with self._lock:
            entry = self._workers.get(name)
            if entry is None:
                self.register(name, now)
                return "registered"
            entry.last_heartbeat = now
            if entry.state == DEAD:
                entry.rejoins += 1
                if self._recent_failures(entry, now) >= self.config.quarantine_failures:
                    entry.state = QUARANTINED
                    entry.quarantined_until = now + self.config.quarantine_period
                    return "quarantined"
                entry.state = ALIVE
                return "rejoined"
            return ""

    def record_failure(self, name: str, now: float | None = None) -> str:
        """A worker failed (missed heartbeats, blew a deadline, hung up).

        Returns the new state: ``dead``, or ``quarantined`` when the
        failure count within the window opened the circuit breaker (the
        worker stays benched even if it immediately heartbeats again).
        """
        now = self._clock() if now is None else now
        with self._lock:
            entry = self.register(name, now)
            entry.failures.append(now)
            entry.deaths += 1
            cutoff = now - self.config.quarantine_window
            entry.failures = [t for t in entry.failures if t >= cutoff]
            if len(entry.failures) >= self.config.quarantine_failures:
                entry.state = QUARANTINED
                entry.quarantined_until = now + self.config.quarantine_period
                return QUARANTINED
            entry.state = DEAD
            return DEAD

    def missed_heartbeats(self, now: float | None = None) -> list[str]:
        """Workers whose beacon silence exceeded the grace — liveness
        failures the caller should treat like deaths."""
        now = self._clock() if now is None else now
        timeout = self.config.heartbeat_timeout
        with self._lock:
            return [
                entry.name
                for entry in self._workers.values()
                if entry.state in (ALIVE, PROBING)
                and now - entry.last_heartbeat > timeout
            ]

    def recoverable(self, name: str, now: float | None = None) -> bool:
        """Could this worker still return to duty without outside help?

        ``ALIVE``/``PROBING`` workers obviously can.  A ``DEAD`` or
        ``QUARANTINED`` worker can too *as long as its beacon is still
        fresh*: the next heartbeat rejoins it (or the probe path readmits
        it), and under a lossy network a worker is routinely marked dead
        moments before its proof-of-life is polled.  Only silence beyond
        the heartbeat timeout is terminal — when *no* worker is
        recoverable and keyspace remains, the run has failed.
        """
        now = self._clock() if now is None else now
        with self._lock:
            entry = self._workers.get(name)
            if entry is None:
                return False
            if entry.state in (ALIVE, PROBING):
                return True
            return now - entry.last_heartbeat <= self.config.heartbeat_timeout

    def due_probes(self, now: float | None = None) -> list[str]:
        """Quarantined workers whose period elapsed *and* who are still
        heartbeating — ready for a small probationary chunk."""
        now = self._clock() if now is None else now
        out = []
        with self._lock:
            for entry in self._workers.values():
                if entry.state != QUARANTINED or now < entry.quarantined_until:
                    continue
                if now - entry.last_heartbeat > self.config.heartbeat_timeout:
                    continue  # benched *and* silent: nothing to probe
                out.append(entry.name)
        return sorted(out)

    def forget(self, name: str) -> None:
        """Drop a node from liveness tracking entirely.

        Used for *planned* departures — a graceful leave or a master
        eviction — where the node must stop counting toward the
        "anyone recoverable?" test that decides whether the run has
        failed.  Unlike a death, a forgotten node keeps no failure
        history: if it is later re-admitted it starts clean.
        """
        with self._lock:
            self._workers.pop(name, None)

    def probe_started(self, name: str) -> None:
        with self._lock:
            entry = self.register(name)
            entry.state = PROBING

    def probe_succeeded(self, name: str, now: float | None = None) -> None:
        """A probationary chunk completed: restore full duty and forget
        the failure history (the circuit closes clean)."""
        with self._lock:
            entry = self.register(name, now)
            entry.state = ALIVE
            entry.failures.clear()
            entry.quarantined_until = 0.0

    # -- deadlines ------------------------------------------------------- #
    def deadline_for(
        self,
        chunk_size: int,
        rate: float | None,
        now: float | None = None,
        fallback: float = 30.0,
    ) -> float:
        """Absolute deadline for a chunk of *chunk_size* ids on a worker
        whose measured throughput is *rate* keys/s (``None`` = unmeasured,
        use the *fallback* prior — the legacy ``reply_timeout``)."""
        now = self._clock() if now is None else now
        if rate is None or rate <= 0:
            return now + fallback
        expected = chunk_size / rate
        return now + max(self.config.min_deadline, self.config.deadline_slack * expected)

    def _recent_failures(self, entry: WorkerHealth, now: float) -> int:
        cutoff = now - self.config.quarantine_window
        return sum(1 for t in entry.failures if t >= cutoff)
