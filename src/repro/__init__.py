"""repro — reproduction of *Exhaustive Key Search on Clusters of GPUs*
(Barbieri, Cardellini, Filippone; IPPS 2014).

The library implements the paper's exhaustive-search parallelization
pattern end to end: base-N key-space enumeration, from-scratch MD5/SHA1/
SHA256 with vectorized SIMT-style kernels and the digest-reversal
optimization, a CUDA multiprocessor performance model and cycle simulator,
and a hierarchical heterogeneous dispatch substrate with both a
discrete-event cluster simulator and a real multiprocessing backend.

Quickstart::

    from repro import ALPHA_LOWER, CrackTarget, CrackingSession

    target = CrackTarget.from_password("dog", ALPHA_LOWER, max_length=4)
    result = CrackingSession(target).run()
    print(result.passwords)   # ['dog']

Pass ``recorder=repro.obs.Recorder()`` to ``run`` to capture per-phase
timings and per-worker throughput (see :mod:`repro.obs`).
"""

from repro.keyspace import (
    ALNUM_MIXED,
    ALPHA_LOWER,
    ALPHA_MIXED,
    ASCII_PRINTABLE,
    Charset,
    DIGITS,
    Interval,
    KeyMapping,
    KeyOrder,
)
from repro.kernels.variants import HashAlgorithm, KernelVariant
from repro.apps.cracking import CrackEngine, CrackTarget, crack_interval
from repro.apps.mining import MiningJob, mine_interval
from repro.apps.audit import AuditEntry, AuditSession
from repro.core.results import RunResult, SessionResult
from repro.core.session import CrackingSession
from repro.core.search import ExhaustiveSearch, SearchProblem, keyspace_problem
from repro.obs import Recorder, render_summary, validate_metrics
from repro.cluster.topology import build_paper_network
from repro.cluster.local import LocalCluster
from repro.cluster.simulate import simulate_run

__version__ = "1.0.0"

__all__ = [
    "ALNUM_MIXED",
    "ALPHA_LOWER",
    "ALPHA_MIXED",
    "ASCII_PRINTABLE",
    "Charset",
    "DIGITS",
    "Interval",
    "KeyMapping",
    "KeyOrder",
    "HashAlgorithm",
    "KernelVariant",
    "CrackEngine",
    "CrackTarget",
    "crack_interval",
    "MiningJob",
    "mine_interval",
    "AuditEntry",
    "AuditSession",
    "CrackingSession",
    "SessionResult",
    "RunResult",
    "Recorder",
    "render_summary",
    "validate_metrics",
    "ExhaustiveSearch",
    "SearchProblem",
    "keyspace_problem",
    "build_paper_network",
    "LocalCluster",
    "simulate_run",
    "__version__",
]
