"""GPU throughput model for SHA256d proof-of-work mining.

The paper motivates exhaustive search with Bitcoin mining but evaluates
only MD5/SHA1 cracking; this extension closes the loop by pushing the
mining kernel through the same accounting pipeline: trace the double-SHA256
nonce test, lower it per compute capability, and apply the throughput
models.  One nonce test costs one compression of the header's second block
(the first block's midstate is nonce-independent and precomputed on the
host) plus one compression of the 32-byte first-round digest.
"""

from __future__ import annotations

from functools import lru_cache

from repro.gpusim.device import DeviceSpec
from repro.gpusim.throughput import simulated_throughput, theoretical_throughput
from repro.kernels.compiler import lower_mix
from repro.kernels.isa import InstructionMix, SourceMix
from repro.kernels.trace import trace_sha256_compress


@lru_cache(maxsize=None)
def mining_source_mix() -> SourceMix:
    """Source operations of one nonce test (two SHA256 compressions)."""
    single = trace_sha256_compress()
    double = single.copy()
    double.counts.update(single.counts)
    double.rotate_amounts.update(single.rotate_amounts)
    return double


@lru_cache(maxsize=None)
def mining_mix(family: str) -> InstructionMix:
    """Machine instruction mix of the mining kernel on a CC family."""
    return lower_mix(mining_source_mix(), family)


def mining_theoretical_mhash(device: DeviceSpec) -> float:
    """Peak double-SHA256 rate in Mhash/s."""
    return theoretical_throughput(device, mining_mix(device.family))


def mining_achieved_mhash(device: DeviceSpec, ilp_fraction: float = 0.2) -> float:
    """Modelled achieved rate in Mhash/s.

    SHA256's schedule and sigma chains expose more instruction-level
    parallelism than MD5 (three independent rotations feed each sigma), so
    a moderately higher dual-issue fraction than the MD5 calibration is
    appropriate; era GPU miners indeed ran closer to peak than crackers.
    """
    return simulated_throughput(device, mining_mix(device.family), ilp_fraction)
