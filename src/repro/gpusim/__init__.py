"""CUDA GPU simulator substrate.

The paper's testbed is five NVIDIA GPUs spanning compute capabilities 1.1,
2.1 and 3.0.  No GPU is available to this reproduction, so this package
models the documented microarchitecture instead:

* :mod:`repro.gpusim.arch` — the multiprocessor architecture per compute
  capability (paper Table I) and per-class instruction throughput (Table
  II), plus the execution-port structure Section V-A infers from ad-hoc
  microbenchmarks;
* :mod:`repro.gpusim.device` — the GPU catalog (Table VII) plus a CC 3.5
  device for the funnel-shift extension;
* :mod:`repro.gpusim.throughput` — the paper's analytical peak-throughput
  formulas (Section VI-B) and the port-bound *simulated* throughput used
  for the "our approach" rows;
* :mod:`repro.gpusim.scheduler` — a cycle-level warp-scheduler simulator
  (warps, dependency latency, dual issue, per-class ports) that validates
  the analytic bounds from first principles;
* :mod:`repro.gpusim.launch` — kernel-launch overhead, the driver-watchdog
  grid splitting, and the efficiency-vs-batch-size curve behind the
  pattern's per-node tuning step;
* :mod:`repro.gpusim.tools` — throughput models of the BarsWF and
  Cryptohaze Multiforcer baselines, calibrated from the paper's published
  measurements.
"""

from repro.gpusim.arch import (
    ComputeCapability,
    MultiprocessorArch,
    ARCHITECTURES,
    INSTRUCTION_THROUGHPUT,
    family_of_cc,
)
from repro.gpusim.device import DeviceSpec, DEVICES, get_device, PAPER_DEVICES
from repro.gpusim.throughput import (
    theoretical_throughput,
    simulated_throughput,
    ThroughputReport,
    device_report,
)
from repro.gpusim.scheduler import (
    MultiprocessorSim,
    SimResult,
    simulate_kernel_cycles,
)
from repro.gpusim.launch import (
    LaunchModel,
    efficiency_at,
    min_batch_for_efficiency,
    split_for_watchdog,
)
from repro.gpusim.tools import ToolProfile, TOOL_PROFILES, tool_throughput
from repro.gpusim.occupancy import (
    OccupancyLimits,
    grid_efficiency,
    resident_warps,
    wave_capacity,
)
from repro.gpusim.mining import mining_achieved_mhash, mining_theoretical_mhash

__all__ = [
    "OccupancyLimits",
    "grid_efficiency",
    "resident_warps",
    "wave_capacity",
    "mining_achieved_mhash",
    "mining_theoretical_mhash",
    "ComputeCapability",
    "MultiprocessorArch",
    "ARCHITECTURES",
    "INSTRUCTION_THROUGHPUT",
    "family_of_cc",
    "DeviceSpec",
    "DEVICES",
    "PAPER_DEVICES",
    "get_device",
    "theoretical_throughput",
    "simulated_throughput",
    "ThroughputReport",
    "device_report",
    "MultiprocessorSim",
    "SimResult",
    "simulate_kernel_cycles",
    "LaunchModel",
    "efficiency_at",
    "min_batch_for_efficiency",
    "split_for_watchdog",
    "ToolProfile",
    "TOOL_PROFILES",
    "tool_throughput",
]
