"""GPU device catalog (paper Table VII plus extensions).

The paper's testbed spans three architecture generations; the catalog also
includes a compute-capability 3.5 part (GTX Titan class) to exercise the
funnel-shift path the paper describes but could not measure ("we were unable
to get access to such type of device in time for this writing").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.arch import ComputeCapability, MultiprocessorArch, arch_for_cc


@dataclass(frozen=True)
class DeviceSpec:
    """One GPU: Table VII row."""

    name: str
    multiprocessors: int
    cores: int
    clock_mhz: float
    compute_capability: ComputeCapability

    def __post_init__(self) -> None:
        if self.multiprocessors <= 0 or self.cores <= 0 or self.clock_mhz <= 0:
            raise ValueError("device parameters must be positive")
        expected = self.arch.cores_per_mp * self.multiprocessors
        if self.cores != expected:
            raise ValueError(
                f"{self.name}: {self.cores} cores inconsistent with "
                f"{self.multiprocessors} MPs of {self.arch.cores_per_mp} cores"
            )

    @property
    def arch(self) -> MultiprocessorArch:
        """The multiprocessor architecture of this device's capability."""
        return arch_for_cc(self.compute_capability)

    @property
    def family(self) -> str:
        """Compilation family (which kernel build this device runs)."""
        return self.arch.family

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeviceSpec({self.name!r}, {self.multiprocessors} MP, "
            f"{self.cores} cores, {self.clock_mhz:g} MHz, cc {self.compute_capability})"
        )


def _dev(name, mp, cores, clock, cc):
    return DeviceSpec(name, mp, cores, clock, ComputeCapability.parse(cc))


#: Table VII verbatim: the five GPUs of the paper's evaluation network.
PAPER_DEVICES: dict[str, DeviceSpec] = {
    "8600M": _dev("8600M", 4, 32, 950, "1.1"),
    "8800": _dev("8800", 16, 128, 1625, "1.1"),
    "540M": _dev("540M", 2, 96, 1344, "2.1"),
    "550Ti": _dev("550Ti", 4, 192, 1800, "2.1"),
    "660": _dev("660", 5, 960, 1033, "3.0"),
}

#: Extended catalog: paper devices plus representative parts of the other
#: families the model covers.
DEVICES: dict[str, DeviceSpec] = {
    **PAPER_DEVICES,
    # Fermi CC 2.0 reference part (GTX 480 class).
    "480": _dev("480", 15, 480, 1401, "2.0"),
    # Kepler CC 3.5 with funnel shift (GTX Titan class).
    "TitanCC35": _dev("TitanCC35", 14, 2688, 876, "3.5"),
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by catalog name."""
    try:
        return DEVICES[name]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; catalog has {sorted(DEVICES)}"
        ) from None
