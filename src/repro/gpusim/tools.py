"""Throughput models of the competing brute-force tools.

Table VIII compares the paper's kernel against **BarsWF** and **Cryptohaze
Multiforcer** on the same GPUs.  Neither binary runs here (both are
closed-era Windows/CUDA tools), so each is modelled by

* the kernel *variant* it is known to implement — BarsWF introduced the
  digest-reversal trick (Section V credits it explicitly) but predates the
  Kepler ``__byte_perm``/shift-port tuning; Cryptohaze uses a conventional
  full-hash kernel;
* a per-family **utilization factor** calibrated once from the paper's
  published measurements (the ratio of the tool's measured throughput to
  our simulated kernel on the same family), absorbing scheduling quality
  differences our port model cannot see from the outside.

The factors are calibration *against the paper's own numbers* — exactly the
information a reader of Table VIII has — and are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.gpusim.device import DeviceSpec
from repro.gpusim.throughput import (
    DEFAULT_OVERHEAD,
    ILP_CALIBRATION,
    simulated_throughput,
)
from repro.kernels.variants import HashAlgorithm, KernelVariant, get_kernel


@dataclass(frozen=True)
class ToolProfile:
    """A competing cracker: kernel variant + per-family utilization."""

    name: str
    variant: KernelVariant
    #: Fraction of our simulated throughput the tool achieves, per family.
    utilization: Mapping[str, float]
    #: Algorithms the tool supports (BarsWF is MD5-only in Table VIII).
    algorithms: frozenset

    def supports(self, algorithm: HashAlgorithm) -> bool:
        return algorithm in self.algorithms

    def utilization_for(self, family: str) -> float:
        try:
            return self.utilization[family]
        except KeyError:
            raise ValueError(f"{self.name}: no calibration for family {family!r}") from None


#: BarsWF: has the reversal trick (it invented it) but no Kepler-era tuning;
#: "on the Kepler architecture BarsWF ... achieve[s] 72.39% of the
#: theoretical throughput".
BARSWF = ToolProfile(
    name="BarsWF",
    variant=KernelVariant.OPTIMIZED,
    utilization={"1.x": 0.955, "2.x": 0.875, "3.0": 0.75, "3.5": 0.75},
    algorithms=frozenset({HashAlgorithm.MD5}),
)

#: Cryptohaze Multiforcer: straightforward full-hash kernel.
CRYPTOHAZE = ToolProfile(
    name="Cryptohaze",
    variant=KernelVariant.NAIVE,
    utilization={"1.x": 0.86, "2.x": 0.85, "3.0": 0.97, "3.5": 0.97},
    algorithms=frozenset({HashAlgorithm.MD5, HashAlgorithm.SHA1}),
)

TOOL_PROFILES: dict[str, ToolProfile] = {"BarsWF": BARSWF, "Cryptohaze": CRYPTOHAZE}


def tool_throughput(
    tool: ToolProfile, device: DeviceSpec, algorithm: HashAlgorithm
) -> float | None:
    """Modelled throughput of a tool on a device, in Mkeys/s.

    Returns ``None`` when the tool does not support the algorithm (BarsWF
    has no SHA1 row in Table VIII).
    """
    if not tool.supports(algorithm):
        return None
    kernel = get_kernel(algorithm, tool.variant)
    mix = kernel.mix_for(device.family)
    ilp = ILP_CALIBRATION.get((algorithm, device.family), 0.0)
    ours = simulated_throughput(device, mix, ilp, DEFAULT_OVERHEAD)
    return ours * tool.utilization_for(device.family)
