"""Cycle-level multiprocessor simulator.

The closed-form port model of :mod:`repro.gpusim.throughput` captures the
*asymptotic* behaviour; this module validates it from first principles with
a small warp-scheduler simulation, the software stand-in for the paper's
profiler runs and ad-hoc microbenchmark kernels (Section V-A: "we had to
write some ad-hoc kernels repeating many times a certain set of
instructions").

Model
-----
* A multiprocessor has **execution ports** (the core groups of Table I plus
  the CC 1.x special-function units): each port serves a set of instruction
  classes at a fixed rate of ``capacity`` operations (thread lanes) per
  cycle; issuing a 32-lane warp instruction occupies the port for
  ``32 / capacity`` cycles.
* **Warp schedulers** each own a subset of the resident warps (round-robin,
  like the hardware).  A scheduler issues one warp instruction every
  ``32 / (single_issue_ops / schedulers)`` cycles; if the architecture is
  dual-issue and the warp's *next* instruction belongs to a different
  dependency chain, it is co-issued at no scheduler cost (this is how the
  kernel's instruction-level parallelism — the ``interleave`` knob —
  converts into extra throughput).
* Each instruction **depends** on the previous instruction of its chain and
  becomes eligible ``dep_latency`` cycles after that instruction issues;
  with enough resident warps the latency is hidden, exactly as on hardware.

The instruction stream fed to every warp is generated from a kernel's
:class:`~repro.kernels.isa.InstructionMix` by proportional interleaving, so
the class mixture is representative at every prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.gpusim.arch import MultiprocessorArch
from repro.gpusim.device import DeviceSpec
from repro.kernels.isa import InstructionClass, InstructionMix

#: All classes, for ports that execute everything.
_ALL = frozenset(InstructionClass)
_ADDLOP = frozenset({InstructionClass.IADD, InstructionClass.LOP})
_SHM = frozenset(
    {InstructionClass.SHIFT, InstructionClass.IMAD, InstructionClass.PRMT, InstructionClass.FUNNEL}
)


@dataclass
class Port:
    """One execution resource: a core group (or the SFU bank)."""

    name: str
    classes: frozenset
    capacity: float  #: lanes per cycle
    next_free: float = 0.0

    def can_issue(self, cls: InstructionClass, now: float) -> bool:
        return cls in self.classes and self.next_free <= now

    def issue(self, now: float) -> None:
        self.next_free = now + 32.0 / self.capacity


def ports_for_arch(arch: MultiprocessorArch) -> list[Port]:
    """Build the execution-port set of one multiprocessor.

    Encodes Section V-A's findings about which core groups execute which
    instruction classes on each family.
    """
    if arch.family == "1.x":
        ports = [Port("cores", _ALL, 8.0)]
        if arch.sfu_add_bonus:
            # SFU bank: extra ADD throughput, reachable only by co-issue.
            ports.append(Port("sfu", frozenset({InstructionClass.IADD}), arch.sfu_add_bonus))
        return ports
    if arch.family == "2.x":
        # One group runs everything (including shift/MAD); the other group(s)
        # run only additions/logicals.
        ports = [Port("g0", _ALL, 16.0)]
        ports += [Port(f"g{i}", _ADDLOP, 16.0) for i in range(1, arch.core_groups)]
        return ports
    # Kepler: shift/MAD (and PRMT/funnel) on one 32-core group, ADD/LOP on
    # the other five.
    shm_capacity = arch.peak_ops(InstructionClass.FUNNEL) if arch.family == "3.5" else 32.0
    ports = [Port("shm", _SHM, shm_capacity)]
    ports += [Port(f"g{i}", _ADDLOP, 32.0) for i in range(1, arch.core_groups)]
    return ports


def instruction_stream(mix: InstructionMix, interleave: int = 1) -> list[tuple[InstructionClass, int]]:
    """A representative ``(class, chain)`` stream for one candidate test.

    Classes are spread by largest-remainder proportional interleaving so
    every prefix of the stream has roughly the kernel's class mixture;
    ``interleave`` tags consecutive instructions with alternating chain ids,
    modelling a kernel that computes that many hashes concurrently per
    thread ("interleaving the production of the hash of two strings at a
    time", Section V-B).
    """
    if interleave < 1:
        raise ValueError("interleave must be >= 1")
    total = mix.total
    if total == 0:
        return []
    # Largest-remainder schedule: emit the class whose deficit is largest.
    emitted = {cls: 0 for cls in mix.counts}
    stream: list[InstructionClass] = []
    for i in range(total):
        best, best_deficit = None, float("-inf")
        for cls, n in mix.counts.items():
            deficit = n * (i + 1) / total - emitted[cls]
            if deficit > best_deficit and emitted[cls] < n:
                best, best_deficit = cls, deficit
        stream.append(best)
        emitted[best] += 1
    return [(cls, i % interleave) for i, cls in enumerate(stream)]


@dataclass
class _Warp:
    pc: int = 0
    #: earliest cycle at which the next instruction of each chain may issue.
    chain_ready: dict = field(default_factory=dict)

    def eligible(self, stream, now: float) -> bool:
        if self.pc >= len(stream):
            return False
        _, chain = stream[self.pc]
        return self.chain_ready.get(chain, 0.0) <= now


@dataclass(frozen=True)
class SimResult:
    """Outcome of draining a batch of warps through one multiprocessor."""

    cycles: float
    instructions: int
    warps: int
    stream_length: int
    dual_issues: int

    @property
    def hashes(self) -> int:
        """Candidate tests completed (32 lanes per warp, 1 per stream pass)."""
        return self.warps * 32

    @property
    def ops_per_cycle(self) -> float:
        """Achieved lanes per cycle (compare with Table II peaks)."""
        return self.instructions * 32.0 / self.cycles

    @property
    def cycles_per_hash(self) -> float:
        return self.cycles / self.hashes

    @property
    def dual_issue_fraction(self) -> float:
        return self.dual_issues / self.instructions if self.instructions else 0.0

    def mkeys_per_second(self, device: DeviceSpec) -> float:
        """Scale the per-MP result to a whole device."""
        return device.multiprocessors * device.clock_hz / self.cycles_per_hash / 1e6


class MultiprocessorSim:
    """Drain warps through the port/scheduler model, cycle by cycle."""

    def __init__(
        self,
        arch: MultiprocessorArch,
        warps: int = 48,
        dep_latency: float = 18.0,
    ) -> None:
        if warps < 1:
            raise ValueError("need at least one resident warp")
        self.arch = arch
        self.warps = warps
        self.dep_latency = float(dep_latency)

    def run(self, mix: InstructionMix, interleave: int = 1, max_cycles: float = 5e6) -> SimResult:
        """Simulate all resident warps executing one candidate test each."""
        stream = instruction_stream(mix, interleave)
        if not stream:
            return SimResult(0.0, 0, self.warps, 0, 0)
        arch = self.arch
        ports = ports_for_arch(arch)
        n_sched = arch.warp_schedulers
        # Scheduler issue cadence: a scheduler's share of the single-issue
        # lane rate, expressed as cycles between warp-instruction issues.
        issue_interval = 32.0 / (arch.single_issue_ops / n_sched)
        sched_next = [0.0] * n_sched
        warps = [_Warp() for _ in range(self.warps)]
        owners: list[list[int]] = [
            [w for w in range(self.warps) if w % n_sched == s] for s in range(n_sched)
        ]
        rr = [0] * n_sched  # round-robin cursor per scheduler
        issued = 0
        dual = 0
        now = 0.0
        remaining = self.warps
        while remaining > 0 and now < max_cycles:
            progressed = False
            for s in range(n_sched):
                if sched_next[s] > now:
                    continue
                my = owners[s]
                if not my:
                    continue
                # Round-robin scan for an eligible warp whose next
                # instruction can actually be issued (the hardware scheduler
                # skips warps whose target pipeline is saturated).  Among
                # issueable warps, prefer one headed for the narrowest port:
                # keeping the scarce shift/MAD pipe saturated is what the
                # scoreboard achieves on silicon.
                warp = None
                fallback = None
                fallback_k = 0
                for k in range(len(my)):
                    cand = my[(rr[s] + k) % len(my)]
                    w = warps[cand]
                    if not w.eligible(stream, now):
                        continue
                    cls = stream[w.pc][0]
                    capable = [p for p in ports if p.can_issue(cls, now)]
                    if not capable:
                        continue
                    if cls in _SHM or len(ports) == 1:
                        warp = w
                        rr[s] = (rr[s] + k + 1) % len(my)
                        break
                    if fallback is None:
                        fallback, fallback_k = w, k
                if warp is None:
                    if fallback is None:
                        continue
                    warp = fallback
                    rr[s] = (rr[s] + fallback_k + 1) % len(my)
                if self._issue_one(warp, stream, ports, now):
                    issued += 1
                    progressed = True
                    sched_next[s] = now + issue_interval
                    # Dual issue: co-issue the next instruction when it is
                    # from a different chain (independent) and a port is free.
                    if (
                        arch.dual_issue
                        and warp.pc < len(stream)
                        and stream[warp.pc][1] != stream[warp.pc - 1][1]
                        and warp.eligible(stream, now)
                        and self._issue_one(warp, stream, ports, now)
                    ):
                        issued += 1
                        dual += 1
                    if warp.pc >= len(stream):
                        remaining -= 1
            now += 1.0
            if not progressed:
                # Jump to the next interesting time to keep the loop tight.
                horizon = [p.next_free for p in ports if p.next_free > now - 1.0]
                horizon += [t for t in sched_next if t > now - 1.0]
                for w in warps:
                    horizon += [t for t in w.chain_ready.values() if t > now - 1.0]
                if horizon:
                    now = max(now, min(horizon))
        # Completion time includes draining the last port occupancy.
        finish = max([now] + [p.next_free for p in ports])
        return SimResult(finish, issued, self.warps, len(stream), dual)

    def _issue_one(self, warp: _Warp, stream, ports: Sequence[Port], now: float) -> bool:
        cls, chain = stream[warp.pc]
        # Prefer the fastest free capable port; among equals, the most
        # specialized one — so additions do not steal the shared group from
        # shift/MAD work (whose only home it is), and the slow SFU bank is
        # used only as overflow for additions.
        best = None
        for port in ports:
            if port.can_issue(cls, now):
                key = (-port.capacity, len(port.classes))
                if best is None or key < best[0]:
                    best = (key, port)
        if best is None:
            return False
        best[1].issue(now)
        warp.pc += 1
        warp.chain_ready[chain] = now + self.dep_latency
        return True


#: Realistic per-family occupancy defaults: (resident warps per MP,
#: arithmetic pipeline latency in cycles).  G80-class parts cap at 24 warps
#: per multiprocessor; Fermi at 48; Kepler at 64 with a shorter pipeline.
OCCUPANCY_DEFAULTS: dict[str, tuple[int, float]] = {
    "1.x": (24, 20.0),
    "2.x": (48, 18.0),
    "3.0": (64, 11.0),
    "3.5": (64, 11.0),
}


def simulate_kernel_cycles(
    device: DeviceSpec,
    mix: InstructionMix,
    interleave: int = 1,
    warps: int | None = None,
) -> SimResult:
    """Convenience wrapper: simulate one MP of *device* running *mix*.

    ``warps`` defaults to the family's full occupancy (the kernels use a
    handful of registers, so occupancy is never register-limited here).
    """
    default_warps, latency = OCCUPANCY_DEFAULTS[device.family]
    sim = MultiprocessorSim(
        device.arch, warps=warps if warps is not None else default_warps, dep_latency=latency
    )
    return sim.run(mix, interleave=interleave)
