"""Occupancy and grid-tail effects.

Section V: "A GPU kernel grid should have a sufficiently large number of
threads to be efficient, since all multiprocessors should be used at the
same time and hazards caused by instruction dependencies should be hidden
by other active warps scheduled on the same multiprocessor."

This module quantifies that sentence: how many warps a multiprocessor can
hold (per family), how a grid of candidates fills the device in *waves*,
and the efficiency lost to the final partial wave — the device-level
component of the ``n_j`` tuning step (the launch-overhead component lives
in :mod:`repro.gpusim.launch`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec

#: Warp size on every modelled architecture.
WARP_SIZE = 32


@dataclass(frozen=True)
class OccupancyLimits:
    """Per-family residency limits (from the CUDA programming guide)."""

    max_warps_per_mp: int
    max_blocks_per_mp: int
    max_threads_per_block: int


#: Documented limits per compute-capability family.
OCCUPANCY_LIMITS: dict[str, OccupancyLimits] = {
    "1.x": OccupancyLimits(max_warps_per_mp=24, max_blocks_per_mp=8, max_threads_per_block=512),
    "2.x": OccupancyLimits(max_warps_per_mp=48, max_blocks_per_mp=8, max_threads_per_block=1024),
    "3.0": OccupancyLimits(max_warps_per_mp=64, max_blocks_per_mp=16, max_threads_per_block=1024),
    "3.5": OccupancyLimits(max_warps_per_mp=64, max_blocks_per_mp=16, max_threads_per_block=1024),
}


def limits_for(device: DeviceSpec) -> OccupancyLimits:
    """Residency limits of a device's family."""
    return OCCUPANCY_LIMITS[device.family]


def resident_warps(device: DeviceSpec, block_size: int) -> int:
    """Warps one multiprocessor actually holds for a given block size.

    The cracking kernels use a handful of registers and no shared memory,
    so occupancy is limited only by the block-count and warp-count caps.
    """
    limits = limits_for(device)
    if not 0 < block_size <= limits.max_threads_per_block:
        raise ValueError(
            f"block size {block_size} outside (0, {limits.max_threads_per_block}]"
        )
    if block_size % WARP_SIZE:
        raise ValueError("block size must be a multiple of the warp size")
    warps_per_block = block_size // WARP_SIZE
    blocks = min(limits.max_blocks_per_mp, limits.max_warps_per_mp // warps_per_block)
    if blocks == 0:
        return warps_per_block  # a single oversized block still runs
    return blocks * warps_per_block


def wave_capacity(device: DeviceSpec, block_size: int = 256, per_thread: int = 1) -> int:
    """Candidates one full device *wave* processes.

    ``per_thread`` is the number of candidates each thread tests by
    iterating the ``next`` operator (Section IV-A: "assign a larger number
    of strings per thread").
    """
    if per_thread < 1:
        raise ValueError("per_thread must be positive")
    return device.multiprocessors * resident_warps(device, block_size) * WARP_SIZE * per_thread


def grid_efficiency(
    device: DeviceSpec, candidates: int, block_size: int = 256, per_thread: int = 1
) -> float:
    """Utilization of a grid covering *candidates* keys.

    The last wave is partially filled; its idle lanes cost real time.  A
    grid of many waves amortizes the tail — the device-side reason the
    tuning step demands a minimum interval size ``n_j``.
    """
    if candidates < 0:
        raise ValueError("candidates must be non-negative")
    if candidates == 0:
        return 0.0
    wave = wave_capacity(device, block_size, per_thread)
    waves = math.ceil(candidates / wave)
    return candidates / (waves * wave)


def min_candidates_for_tail_efficiency(
    device: DeviceSpec, target: float, block_size: int = 256, per_thread: int = 1
) -> int:
    """Smallest multiple-of-wave grid whose tail loss stays under target.

    With ``k`` full waves plus a worst-case tail, efficiency is at least
    ``k / (k + 1)``; solving for the target gives the wave count.
    """
    if not 0.0 < target < 1.0:
        raise ValueError("target must be in (0, 1)")
    wave = wave_capacity(device, block_size, per_thread)
    k = math.ceil(target / (1.0 - target))
    return k * wave


def per_thread_for_duration(
    device: DeviceSpec, kernel_mkeys: float, duration_s: float, block_size: int = 256
) -> int:
    """Candidates per thread so one grid runs for ~duration_s seconds.

    The watchdog workaround of Section IV-A from the other direction:
    choose the per-thread iteration count such that a single kernel call
    stays within (or fills) a time budget.
    """
    if kernel_mkeys <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    threads = device.multiprocessors * resident_warps(device, block_size) * WARP_SIZE
    total = kernel_mkeys * 1e6 * duration_s
    return max(1, int(total / threads))
