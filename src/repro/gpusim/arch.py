"""Multiprocessor architectures per compute capability (Tables I and II).

The paper reduces NVIDIA's eight compute capabilities to four multiprocessor
families, because only the arithmetic pipelines matter for this workload
("memory accesses are very infrequent").  Table I gives the multiprocessor
layout, Table II the per-class instruction throughput, and Section V-A's
ad-hoc microbenchmarks reveal which *core groups* execute which classes:

* CC 1.x executes everything on the single 8-core group; integer additions
  can additionally go to the special-function units (+2/cycle) when
  instruction-level parallelism allows dual routing;
* CC 2.x executes everything on the same cores; the lower-throughput
  shift/MAD instructions run on a single 16-core group;
* CC 3.0 runs ADD/logical on 5 of the 6 32-core groups and shift/MAD on
  the remaining one;
* CC 3.5 adds the funnel shift, executed on the shift/MAD group at double
  rate ("the overall throughput is quadrupled with respect to compute
  capability 3.0" for a full rotation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.kernels.isa import InstructionClass, InstructionMix


@dataclass(frozen=True)
class ComputeCapability:
    """A compute-capability identifier, e.g. ``1.1`` or ``3.0``."""

    major: int
    minor: int

    @classmethod
    def parse(cls, text: str) -> "ComputeCapability":
        major, minor = text.split(".")
        return cls(int(major), int(minor))

    def __str__(self) -> str:
        return f"{self.major}.{self.minor}"

    @property
    def family(self) -> str:
        """The paper's architecture family this capability belongs to."""
        return family_of_cc(self)


def family_of_cc(cc: "ComputeCapability | str") -> str:
    """Map a compute capability to one of the families ``1.x``, ``2.x``,
    ``3.0``, ``3.5``.

    CC 2.0 and 2.1 share the family for compilation purposes (same lowering,
    Table IV groups them as "2.*"), but have distinct
    :class:`MultiprocessorArch` entries because their group counts differ.
    """
    if isinstance(cc, str):
        cc = ComputeCapability.parse(cc)
    if cc.major == 1:
        return "1.x"
    if cc.major == 2:
        return "2.x"
    if (cc.major, cc.minor) == (3, 0):
        return "3.0"
    if cc.major == 3 and cc.minor >= 5:
        return "3.5"
    raise ValueError(f"compute capability {cc} not modelled (paper covers 1.x-3.5)")


@dataclass(frozen=True)
class MultiprocessorArch:
    """One row of Table I, enriched with the port structure of Section V-A.

    Throughputs are in *operations per clock cycle per multiprocessor*
    (Table II): one warp instruction equals 32 operations spread over
    ``32 / throughput`` cycles.
    """

    name: str  #: compute capability spelled as in Table I ("1.*", "2.0", ...)
    family: str  #: compilation family ("1.x", "2.x", "3.0", "3.5")
    cores_per_mp: int
    core_groups: int
    group_size: int
    issue_time: int  #: clock cycles a warp instruction occupies its group
    warp_schedulers: int
    dual_issue: bool
    #: Table II: peak ops/cycle/MP per instruction class.
    throughput: Mapping[InstructionClass, float] = field(default_factory=dict)
    #: Ops/cycle/MP reachable by the schedulers without any instruction-level
    #: parallelism (single issue); dual issue can lift this to the port peak.
    single_issue_ops: float = 0.0
    #: Extra ADD throughput on the special-function units (CC 1.x only),
    #: reachable only when ILP allows co-issue.
    sfu_add_bonus: float = 0.0

    def __post_init__(self) -> None:
        if self.cores_per_mp != self.core_groups * self.group_size:
            raise ValueError("cores_per_mp must equal core_groups * group_size")

    def peak_ops(self, cls: InstructionClass) -> float:
        """Table II peak throughput for an instruction class (ops/cycle/MP)."""
        try:
            return self.throughput[cls]
        except KeyError:
            raise ValueError(f"{self.name}: no throughput for {cls}") from None

    def add_lop_peak(self) -> float:
        """Peak ops/cycle of the wide (addition/logical) pipeline."""
        return min(
            self.peak_ops(InstructionClass.IADD), self.peak_ops(InstructionClass.LOP)
        )

    def shift_mad_peak(self) -> float:
        """Peak ops/cycle of the shift/MAD pipeline."""
        return min(
            self.peak_ops(InstructionClass.SHIFT), self.peak_ops(InstructionClass.IMAD)
        )

    def shift_mad_demand(self, mix: InstructionMix) -> float:
        """Cycles/candidate spent on the shift/MAD port at peak rate."""
        cycles = 0.0
        for cls in (
            InstructionClass.SHIFT,
            InstructionClass.IMAD,
            InstructionClass.PRMT,
            InstructionClass.FUNNEL,
        ):
            n = mix[cls]
            if n:
                cycles += n / self.peak_ops(cls)
        return cycles


def _throughput(iadd, lop, shift, imad, prmt=None, funnel=None):
    table = {
        InstructionClass.IADD: float(iadd),
        InstructionClass.LOP: float(lop),
        InstructionClass.SHIFT: float(shift),
        InstructionClass.IMAD: float(imad),
    }
    table[InstructionClass.PRMT] = float(prmt if prmt is not None else shift)
    table[InstructionClass.FUNNEL] = float(funnel if funnel is not None else shift)
    return table


#: Table I + Table II, keyed by the paper's column labels.
ARCHITECTURES: dict[str, MultiprocessorArch] = {
    "1.*": MultiprocessorArch(
        name="1.*",
        family="1.x",
        cores_per_mp=8,
        core_groups=1,
        group_size=8,
        issue_time=4,
        warp_schedulers=1,
        dual_issue=False,
        throughput=_throughput(iadd=10, lop=8, shift=8, imad=8),
        # One scheduler issuing a warp every 4 cycles: 8 ops/cycle.
        single_issue_ops=8.0,
        sfu_add_bonus=2.0,
    ),
    "2.0": MultiprocessorArch(
        name="2.0",
        family="2.x",
        cores_per_mp=32,
        core_groups=2,
        group_size=16,
        issue_time=2,
        warp_schedulers=2,
        dual_issue=False,
        throughput=_throughput(iadd=32, lop=32, shift=16, imad=16),
        # Two single-issue schedulers: 2 warps in flight over 2-cycle groups.
        single_issue_ops=32.0,
    ),
    "2.1": MultiprocessorArch(
        name="2.1",
        family="2.x",
        cores_per_mp=48,
        core_groups=3,
        group_size=16,
        issue_time=2,
        warp_schedulers=2,
        dual_issue=True,
        throughput=_throughput(iadd=48, lop=48, shift=16, imad=16),
        # Without dual issue the third core group is unreachable: 32 ops/cycle
        # ("we leave a group of cores unused most of the time", Section V-B).
        single_issue_ops=32.0,
    ),
    "3.0": MultiprocessorArch(
        name="3.0",
        family="3.0",
        cores_per_mp=192,
        core_groups=6,
        group_size=32,
        issue_time=1,
        warp_schedulers=4,
        dual_issue=True,
        throughput=_throughput(iadd=160, lop=160, shift=32, imad=32),
        # Four single-issue schedulers on 1-cycle groups: 128 ops/cycle, so
        # two of the six groups idle without ILP.
        single_issue_ops=128.0,
    ),
    "3.5": MultiprocessorArch(
        name="3.5",
        family="3.5",
        cores_per_mp=192,
        core_groups=6,
        group_size=32,
        issue_time=1,
        warp_schedulers=4,
        dual_issue=True,
        # Funnel shift: one instruction for a full rotation at double the
        # shift rate (paper, Section V-B / PTX ISA 3.2).
        throughput=_throughput(iadd=160, lop=160, shift=32, imad=32, funnel=64),
        single_issue_ops=128.0,
    ),
}


def arch_for_cc(cc: ComputeCapability | str) -> MultiprocessorArch:
    """The multiprocessor architecture of a specific compute capability."""
    if isinstance(cc, str):
        cc = ComputeCapability.parse(cc)
    if cc.major == 1:
        return ARCHITECTURES["1.*"]
    key = str(cc)
    if key in ARCHITECTURES:
        return ARCHITECTURES[key]
    if cc.major == 3 and cc.minor >= 5:
        return ARCHITECTURES["3.5"]
    raise ValueError(f"compute capability {cc} not modelled")


#: Table II verbatim, for the bench that reprints it.
INSTRUCTION_THROUGHPUT: dict[str, dict[str, int]] = {
    "32-bit integer ADD": {"1.*": 10, "2.0": 32, "2.1": 48, "3.0": 160},
    "32-bit bitwise AND/OR/XOR": {"1.*": 8, "2.0": 32, "2.1": 48, "3.0": 160},
    "32-bit integer shift": {"1.*": 8, "2.0": 16, "2.1": 16, "3.0": 32},
    "32-bit integer MAD": {"1.*": 8, "2.0": 16, "2.1": 16, "3.0": 32},
}
