"""Analytical GPU throughput models (Section VI-B of the paper).

Two models are provided:

* :func:`theoretical_throughput` — the paper's peak model, used for the
  "theoretical" rows of Table VIII.  It assumes perfect issue (full
  instruction-level parallelism) and charges each instruction class its
  Table II peak rate:

  - CC 1.x has a single warp scheduler, so all classes serialize:
    ``T = N_ADD/X_ADD + N_LOP/X_LOP + N_SHM/X_SHM`` cycles per hash;
  - CC 2.x and newer overlap classes across core groups; the cost is the
    tightest of the total-issue bound and the dedicated shift/MAD-port
    bound: ``T = max(N_total/X_addlop, N_SHM/X_SHM)``.

* :func:`simulated_throughput` — the "our approach" model: identical port
  structure but with *realistic issue*: the schedulers reach only
  ``single_issue_ops`` lanes/cycle unless the kernel exposes ILP (the
  profiler showed <10% dual issue, Section V-B), and CC 1.x additions lose
  the SFU bonus.  A small overhead fraction accounts for the per-thread
  prologue, the ``next`` operator (<1%) and grid tails.

Both are closed-form port models; the cycle-level simulator in
:mod:`repro.gpusim.scheduler` validates them from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.arch import MultiprocessorArch
from repro.gpusim.device import DeviceSpec
from repro.kernels.isa import InstructionClass, InstructionMix
from repro.kernels.variants import HashAlgorithm, KernelSpec, KernelVariant, get_kernel

#: Default dual-issue success fraction ("the number of instructions
#: dispatched in a dual-issue fashion is very low, less than 10%").
DEFAULT_ILP_FRACTION = 0.0

#: Default overhead fraction for simulated (non-peak) throughput: thread
#: prologue, the next operator (<1% per the paper) and grid-tail effects.
DEFAULT_OVERHEAD = 0.02


def cycles_per_hash_theoretical(arch: MultiprocessorArch, mix: InstructionMix) -> float:
    """Peak cycles per candidate test on one multiprocessor."""
    if arch.family == "1.x":
        return (
            mix.additions / arch.peak_ops(InstructionClass.IADD)
            + mix.logicals / arch.peak_ops(InstructionClass.LOP)
            + _shift_mad_cycles(arch, mix)
        )
    total_issue = mix.total / arch.add_lop_peak()
    return max(total_issue, _shift_mad_cycles(arch, mix))


def cycles_per_hash_simulated(
    arch: MultiprocessorArch,
    mix: InstructionMix,
    ilp_fraction: float = DEFAULT_ILP_FRACTION,
) -> float:
    """Realistic-issue cycles per candidate test on one multiprocessor."""
    if not 0.0 <= ilp_fraction <= 1.0:
        raise ValueError("ilp_fraction must be in [0, 1]")
    if arch.family == "1.x":
        # Single scheduler: everything serializes at the 8-op base rate; the
        # SFU add bonus needs co-issue, reachable only with ILP.
        add_rate = arch.single_issue_ops + arch.sfu_add_bonus * ilp_fraction
        base = arch.single_issue_ops
        return mix.additions / add_rate + mix.logicals / base + mix.shift_mad / base
    issue_rate = arch.single_issue_ops * (1.0 + ilp_fraction)
    issue_rate = min(issue_rate, arch.add_lop_peak() + 0.0)
    bounds = [
        mix.total / issue_rate,  # scheduler issue capacity
        _shift_mad_cycles(arch, mix),  # dedicated shift/MAD port
        mix.add_lop / arch.add_lop_peak(),  # wide-port capacity
    ]
    return max(bounds)


def _shift_mad_cycles(arch: MultiprocessorArch, mix: InstructionMix) -> float:
    return arch.shift_mad_demand(mix)


def theoretical_throughput(device: DeviceSpec, mix: InstructionMix) -> float:
    """Peak throughput in Mkeys/s (the Table VIII "theoretical" rows)."""
    cycles = cycles_per_hash_theoretical(device.arch, mix)
    return device.multiprocessors * device.clock_hz / cycles / 1e6


def simulated_throughput(
    device: DeviceSpec,
    mix: InstructionMix,
    ilp_fraction: float = DEFAULT_ILP_FRACTION,
    overhead: float = DEFAULT_OVERHEAD,
) -> float:
    """Modelled achieved throughput in Mkeys/s (the "our approach" rows)."""
    if not 0.0 <= overhead < 1.0:
        raise ValueError("overhead must be in [0, 1)")
    cycles = cycles_per_hash_simulated(device.arch, mix, ilp_fraction)
    peak = device.multiprocessors * device.clock_hz / cycles / 1e6
    return peak * (1.0 - overhead)


# ---------------------------------------------------------------------- #
# Per-device reports (the rows of Table VIII)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ThroughputReport:
    """Theoretical vs achieved throughput of one kernel on one device."""

    device: DeviceSpec
    kernel: KernelSpec
    theoretical_mkeys: float
    achieved_mkeys: float
    ilp_fraction: float = field(default=DEFAULT_ILP_FRACTION)

    @property
    def efficiency(self) -> float:
        """Achieved over theoretical (the paper reports 99.46% on Kepler)."""
        return self.achieved_mkeys / self.theoretical_mkeys


#: Calibrated dual-issue fractions per (algorithm, family).  SHA1 exposes
#: more ILP than MD5 on Fermi because its schedule XOR chains are mutually
#: independent; the paper notes interleaving two hashes would raise MD5's.
ILP_CALIBRATION: dict[tuple[HashAlgorithm, str], float] = {
    (HashAlgorithm.MD5, "1.x"): 0.0,
    (HashAlgorithm.MD5, "2.x"): 0.0,
    (HashAlgorithm.MD5, "3.0"): 0.05,
    (HashAlgorithm.MD5, "3.5"): 0.05,
    (HashAlgorithm.SHA1, "1.x"): 0.0,
    (HashAlgorithm.SHA1, "2.x"): 0.25,
    (HashAlgorithm.SHA1, "3.0"): 0.1,
    (HashAlgorithm.SHA1, "3.5"): 0.1,
}


def device_report(
    device: DeviceSpec,
    algorithm: HashAlgorithm,
    variant: KernelVariant = KernelVariant.BYTE_PERM,
    overhead: float = DEFAULT_OVERHEAD,
) -> ThroughputReport:
    """Theoretical + achieved throughput of our kernel on one device."""
    kernel = get_kernel(algorithm, variant)
    mix = kernel.mix_for(device.family)
    ilp = ILP_CALIBRATION.get((algorithm, device.family), DEFAULT_ILP_FRACTION)
    return ThroughputReport(
        device=device,
        kernel=kernel,
        theoretical_mkeys=theoretical_throughput(device, mix),
        achieved_mkeys=simulated_throughput(device, mix, ilp, overhead),
        ilp_fraction=ilp,
    )
