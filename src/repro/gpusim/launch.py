"""Kernel launch economics: overhead, watchdog splitting, tuning curves.

Section III's dispatch model needs, per node, the *minimum number of
candidates* ``n_j`` that reaches a target efficiency — because every
dispatched interval pays fixed costs (kernel launch, result readback) before
the device streams at its peak rate ``X_j``.  Section IV-A adds the
operating-system watchdog: a single kernel may not run longer than a few
seconds, so large intervals are spread over multiple grids, each paying the
launch overhead again.

The model:  processing ``n`` candidates costs

.. code-block:: text

    T(n) = ceil(n / per_grid) * launch_overhead + n / peak_rate + fixed_overhead

where ``per_grid = watchdog_limit * peak_rate`` caps one kernel's duration.
Efficiency is ``(n / peak_rate) / T(n)`` — the fraction of wall time the
device spends hashing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec


@dataclass(frozen=True)
class LaunchModel:
    """Fixed-cost model of dispatching work to one GPU."""

    #: Device peak throughput for the kernel at hand, keys per second.
    peak_rate: float
    #: Seconds per kernel launch (driver call + grid ramp-up/tail).
    launch_overhead: float = 200e-6
    #: Maximum seconds a single kernel may run before the OS watchdog.
    watchdog_limit: float = 2.0
    #: Per-interval fixed cost (result readback, host bookkeeping).
    fixed_overhead: float = 500e-6

    def __post_init__(self) -> None:
        if self.peak_rate <= 0:
            raise ValueError("peak_rate must be positive")
        if min(self.launch_overhead, self.watchdog_limit, self.fixed_overhead) < 0:
            raise ValueError("overheads must be non-negative")

    @property
    def candidates_per_grid(self) -> int:
        """Largest batch one kernel may process under the watchdog."""
        return max(1, int(self.peak_rate * self.watchdog_limit))

    def grids_for(self, candidates: int) -> int:
        """Number of kernel launches an interval requires (Section IV-A)."""
        if candidates <= 0:
            return 0
        return math.ceil(candidates / self.candidates_per_grid)

    def time_for(self, candidates: int) -> float:
        """Wall-clock seconds to test *candidates* keys."""
        if candidates <= 0:
            return 0.0
        return (
            self.grids_for(candidates) * self.launch_overhead
            + candidates / self.peak_rate
            + self.fixed_overhead
        )

    def throughput_at(self, candidates: int) -> float:
        """Achieved keys/second for an interval of the given size."""
        if candidates <= 0:
            return 0.0
        return candidates / self.time_for(candidates)


def efficiency_at(model: LaunchModel, candidates: int) -> float:
    """Fraction of peak throughput achieved on an interval of this size."""
    if candidates <= 0:
        return 0.0
    return model.throughput_at(candidates) / model.peak_rate


def min_batch_for_efficiency(model: LaunchModel, target: float) -> int:
    """The paper's tuning step: smallest ``n_j`` reaching *target* efficiency.

    Solves ``efficiency_at(n) >= target`` by exponential probing plus
    bisection; efficiency is monotone non-decreasing in ``n`` up to the
    watchdog plateau, and the watchdog makes it asymptotically flat at
    slightly below 1, so targets too close to 1 are rejected.
    """
    if not 0.0 < target < 1.0:
        raise ValueError("target efficiency must be in (0, 1)")
    asymptote = 1.0 / (1.0 + model.launch_overhead / model.watchdog_limit)
    if target >= asymptote:
        raise ValueError(
            f"target {target} unreachable: watchdog caps efficiency at ~{asymptote:.6f}"
        )
    lo, hi = 1, 1
    while efficiency_at(model, hi) < target:
        hi *= 2
        if hi > 2**63:  # pragma: no cover - guarded by the asymptote check
            raise RuntimeError("efficiency target unreachable")
    while lo < hi:
        mid = (lo + hi) // 2
        if efficiency_at(model, mid) >= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


def split_for_watchdog(model: LaunchModel, candidates: int) -> list[int]:
    """Split an interval into per-grid batch sizes obeying the watchdog."""
    if candidates < 0:
        raise ValueError("candidates must be non-negative")
    per_grid = model.candidates_per_grid
    out: list[int] = []
    remaining = candidates
    while remaining > 0:
        batch = min(per_grid, remaining)
        out.append(batch)
        remaining -= batch
    return out


def tuning_curve(model: LaunchModel, sizes: list[int]) -> list[tuple[int, float]]:
    """(interval size, efficiency) samples — the offline model of Section III

    ("an approximated model could be built offline by performing a sequence
    of tests with increasing search size on each node").
    """
    return [(n, efficiency_at(model, n)) for n in sizes]


def launch_model_for(device: DeviceSpec, peak_mkeys: float, **overrides) -> LaunchModel:
    """Build a launch model for a device given its kernel peak in Mkeys/s."""
    return LaunchModel(peak_rate=peak_mkeys * 1e6, **overrides)
