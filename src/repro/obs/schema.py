"""The versioned metrics export schema and the canonical metric names.

One document shape, one version string, one validator — every producer
(:class:`~repro.obs.recorder.Recorder`), every consumer (the CLI's
``--metrics json``, the benchmark harness, CI's schema gate), and the
docs all reference this module rather than re-describing the payload.

Schema (``repro-metrics/v2``)::

    {
      "schema": "repro-metrics/v2",
      "counters": [{"name": str, "labels": {str: str}, "value": int|float}],
      "gauges":   [{"name": str, "labels": {str: str}, "value": float}],
      "spans":    [{"name": str, "labels": {str: str},
                    "count": int, "total": float, "min": float, "max": float}],
      "events":   [{"name": str, "time": float, "fields": {...}}]
    }

``spans`` are pre-aggregated per ``(name, labels)``: the recorder keeps
count/total/min/max instead of raw samples so a million-batch run exports
a bounded document.  ``events`` are the unaggregated timeline (rebalance
decisions, worker deaths, chunk requeues) and carry arbitrary JSON-safe
fields.

v2 tightens v1 in exactly one way: every series/event ``name`` must be
registered in :class:`MetricNames` (checked against
:data:`ALL_METRIC_NAMES`), so schema drift — a producer inventing a
name the dashboards and CI assertions don't know — fails validation
instead of rotting silently.  v1 documents (no name registry) are still
accepted by :func:`validate_metrics` for previously persisted exports.
"""

from __future__ import annotations

METRICS_SCHEMA = "repro-metrics/v2"

#: The pre-registry schema tag; still accepted by :func:`validate_metrics`.
METRICS_SCHEMA_V1 = "repro-metrics/v1"


class MetricNames:
    """Canonical metric names, grouped by the layer that emits them.

    The phase spans map onto the paper's cost model: ``K_scatter`` is the
    master serializing work out, ``K_search`` the in-worker scan time,
    ``K_gather`` the master merging results back in.
    """

    # -- paper cost-model phases (spans) -------------------------------- #
    PHASE_SCATTER = "phase.scatter"
    PHASE_SEARCH = "phase.search"
    PHASE_GATHER = "phase.gather"
    PHASE_PROBE = "phase.probe"  #: the adaptive tuning step's measurement scan

    # -- CrackEngine batch loop (counters / spans) ---------------------- #
    ENGINE_TESTED = "engine.tested"
    ENGINE_BATCHES = "engine.batches"
    ENGINE_HITS = "engine.hits"
    ENGINE_SEARCH = "engine.search"  #: span per engine.search() call

    # -- execution backends (counters / gauges) ------------------------- #
    BACKEND_CHUNKS = "backend.chunks"
    BACKEND_TESTED = "backend.tested"
    BACKEND_BATCHES = "backend.batches"
    BACKEND_EARLY_EXIT = "backend.early_exit"  #: stop_on_first fired
    BACKEND_QUEUE_WAIT = "backend.queue_wait"  #: summed worker idle seconds
    BACKEND_SPANS = "backend.gather_spans"  #: batched gather replies drained
    WORKER_KEYS_PER_SECOND = "worker.keys_per_second"  #: X_j, labelled worker=
    EVENT_TUNING_APPLIED = "tuning.applied"  #: resolve-time tuned config used

    # -- cluster drivers (counters / events) ---------------------------- #
    CLUSTER_CHUNKS = "cluster.chunks"
    CLUSTER_CHUNKS_FAILED = "cluster.chunks_failed"
    CLUSTER_REQUEUED = "cluster.requeued_candidates"
    EVENT_CHUNK_DONE = "chunk.done"
    EVENT_CHUNK_REQUEUED = "chunk.requeued"
    EVENT_WORKER_DEAD = "worker.dead"
    EVENT_REBALANCE = "rebalance"
    EVENT_THROUGHPUT_FLOOR = "throughput.floor_clamped"

    # -- transport liveness / fault tolerance (counters / events) -------- #
    CLUSTER_HEARTBEATS = "cluster.heartbeats"  #: beacons gathered, labelled worker=
    CLUSTER_RECONNECTS = "cluster.reconnects"
    CLUSTER_DUPLICATES = "cluster.duplicate_replies"  #: already-covered replies
    CLUSTER_SPECULATED = "cluster.speculative_dispatches"
    CLUSTER_CORRUPT = "cluster.corrupt_payloads"  #: undecodable inbound payloads
    EVENT_WORKER_CONNECTED = "worker.connected"
    EVENT_WORKER_REJOINED = "worker.rejoined"
    EVENT_HEARTBEAT_MISSED = "heartbeat.missed"
    EVENT_DEADLINE_EXPIRED = "deadline.expired"
    EVENT_WORKER_QUARANTINED = "worker.quarantined"
    EVENT_WORKER_PROBED = "worker.probed"
    EVENT_CHUNK_SPECULATED = "chunk.speculated"
    EVENT_SPECULATION_WIN = "speculation.win"
    EVENT_LATE_REPLY = "reply.late"
    EVENT_CANCEL_SENT = "cancel.sent"
    EVENT_FALLBACK_LOCAL = "fallback.local"

    # -- elastic membership / work stealing (counters / events) ---------- #
    MEMBER_COUNT = "member.count"  #: active members gauge, labelled master=
    EVENT_MEMBER_JOINED = "member.join"  #: explicit JoinMessage admitted
    EVENT_MEMBER_LEFT = "member.leave"  #: graceful LeaveMessage departure
    EVENT_MEMBER_EVICTED = "member.evict"  #: master revoked membership
    STEAL_REQUESTS = "steal.requests"  #: StealRequestMessages issued
    STEAL_CANDIDATES = "steal.candidates"  #: ids whose ownership moved
    EVENT_STEAL_GRANTED = "steal.grant"  #: one non-empty grant (thief, victim)
    EVENT_STEAL_DENIED = "steal.denied"  #: victim had nothing pending

    # -- chaos / fault injection (counters) ------------------------------ #
    CHAOS_DROPPED = "chaos.dropped"
    CHAOS_DELAYED = "chaos.delayed"
    CHAOS_DUPLICATED = "chaos.duplicated"
    CHAOS_CORRUPTED = "chaos.corrupted"

    # -- persistent job service (counters / spans / events) ------------- #
    SERVICE_SLICES = "service.slices"  #: scheduler dispatch slices, labelled job=
    SERVICE_JOB_TESTED = "service.job_tested"  #: candidates served, labelled job=
    SERVICE_CHECKPOINTS = "service.checkpoints"  #: durable ProgressLog writes
    SERVICE_PREEMPTIONS = "service.preemptions"  #: slices cut at a chunk boundary
    PHASE_SLICE = "phase.slice"  #: span per scheduler slice, labelled job=
    EVENT_JOB_STATE = "job.state_changed"
    EVENT_JOB_CHECKPOINT = "job.checkpoint"
    EVENT_JOB_PREEMPTED = "job.preempted"
    EVENT_SCHED_DECISION = "sched.decision"  #: one DRR pick (job, allowance)

    # -- HTTP gateway (counters / gauges / spans / events) --------------- #
    API_REQUESTS = "api.requests"  #: served requests, labelled route=, status=
    API_ERRORS = "api.errors"  #: 4xx/5xx responses, labelled status=
    API_AUTH_FAILURES = "api.auth_failures"  #: missing/unknown API keys
    API_RATE_LIMITED = "api.rate_limited"  #: 429s, labelled tenant=
    API_QUOTA_REJECTED = "api.quota_rejected"  #: max_queued hits, labelled tenant=
    API_QUEUE_DEPTH = "api.queue_depth"  #: active jobs gauge, labelled tenant=
    API_STREAMS = "api.streams"  #: concurrently open long-poll streams (gauge)
    API_STREAM_EVENTS = "api.stream_events"  #: timeline lines fanned out
    API_REQUEST_SECONDS = "api.request_seconds"  #: span per request, labelled route=
    EVENT_API_SUBMITTED = "api.submitted"  #: one accepted job submission

    # -- service resilience: storage faults, shedding, fsck -------------- #
    FAULT_INJECTED = "fault.injected"  #: injected storage faults, labelled kind=
    SHED_REQUESTS = "shed.requests"  #: requests shed by admission control
    SHED_QUEUE_DEPTH = "shed.queue_depth"  #: admission queue depth gauge
    API_IDEMPOTENT_REPLAYS = "api.idempotent_replays"  #: dedup'd resubmits
    SERVICE_STORE_ERRORS = "service.store_errors"  #: storage writes that failed
    FSCK_SCANNED = "fsck.scanned"  #: job directories examined
    FSCK_CORRUPT = "fsck.corrupt"  #: corrupt artifacts found, labelled artifact=
    FSCK_REPAIRED = "fsck.repaired"  #: artifacts restored from a prev generation
    FSCK_QUARANTINED = "fsck.quarantined"  #: artifacts moved out of the store


#: Every registered metric name — the v2 validation registry.
ALL_METRIC_NAMES: frozenset[str] = frozenset(
    value
    for key, value in vars(MetricNames).items()
    if not key.startswith("_") and isinstance(value, str)
)


def _check_series(
    rows: object,
    kind: str,
    required: tuple,
    problems: list,
    registry: frozenset[str] | None = None,
) -> None:
    if not isinstance(rows, list):
        problems.append(f"{kind} must be a list")
        return
    for row in rows:
        if not isinstance(row, dict):
            problems.append(f"{kind} entries must be objects")
            continue
        if not isinstance(row.get("name"), str) or not row.get("name"):
            problems.append(f"{kind} entry missing a non-empty name")
        elif registry is not None and row["name"] not in registry:
            problems.append(
                f"{kind} entry {row['name']!r} is not a registered metric name"
            )
        labels = row.get("labels", {})
        if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
        ):
            problems.append(f"{kind} labels must map str -> str")
        for field in required:
            if not isinstance(row.get(field), (int, float)):
                problems.append(
                    f"{kind} entry {row.get('name')!r} missing numeric {field!r}"
                )


def validate_metrics(document: object) -> list[str]:
    """Validate an exported metrics payload; returns a list of problems.

    Empty list means the document conforms to ``repro-metrics/v2`` (or
    the legacy ``v1``, which skips the name-registry check).  Used by
    the CLI before writing ``--metrics-out``, by the benchmark harness,
    and by CI's bench smoke job.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["metrics payload must be an object"]
    schema = document.get("schema")
    if schema not in (METRICS_SCHEMA, METRICS_SCHEMA_V1):
        problems.append(
            f"schema must be {METRICS_SCHEMA!r} (or legacy {METRICS_SCHEMA_V1!r})"
        )
    registry = ALL_METRIC_NAMES if schema == METRICS_SCHEMA else None
    _check_series(document.get("counters"), "counters", ("value",), problems, registry)
    _check_series(document.get("gauges"), "gauges", ("value",), problems, registry)
    _check_series(
        document.get("spans"),
        "spans",
        ("count", "total", "min", "max"),
        problems,
        registry,
    )
    events = document.get("events")
    if not isinstance(events, list):
        problems.append("events must be a list")
    else:
        for event in events:
            if not isinstance(event, dict):
                problems.append("events entries must be objects")
                continue
            name = event.get("name")
            if not isinstance(name, str) or not name:
                problems.append("event missing a non-empty name")
            elif registry is not None and name not in registry:
                problems.append(
                    f"event {name!r} is not a registered metric name"
                )
            if not isinstance(event.get("time"), (int, float)):
                problems.append(f"event {event.get('name')!r} missing numeric time")
            if not isinstance(event.get("fields"), dict):
                problems.append(f"event {event.get('name')!r} missing fields object")
    return problems
