"""Structured observability: tracing + metrics for the whole stack.

The paper's balancing rule ``N_j = N_max * (X_j / X_max)`` and its cost
model (``K_scatter``, ``K_search``, ``K_gather``) are only actionable if
per-worker throughput and per-phase timings are *measured*.  This package
is that measurement plane:

* :class:`~repro.obs.recorder.Recorder` — a thread-safe in-process sink
  for span timers, counters, gauges, and timestamped events;
* :data:`~repro.obs.recorder.NULL_RECORDER` — a no-op sink so hot paths
  can record unconditionally without branching on ``None``;
* :mod:`repro.obs.schema` — the versioned export schema
  (``repro-metrics/v2``), canonical metric names, and a validator;
* :func:`~repro.obs.recorder.render_summary` — the human-readable view
  the CLI prints under ``--metrics summary``.

Every layer threads one recorder through: :class:`repro.apps.cracking.
CrackEngine` reports batch counters, the :mod:`repro.core.backend`
executors report the scatter/search/gather phases and per-worker ``X_j``,
and the cluster drivers report chunk timelines, rebalance decisions, and
fault events.  Recording is strictly opt-in — with no recorder attached
the instrumented code paths are unchanged, preserving the hot path's
allocation-free property.
"""

from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    render_summary,
)
from repro.obs.schema import (
    METRICS_SCHEMA,
    MetricNames,
    validate_metrics,
)

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "render_summary",
    "METRICS_SCHEMA",
    "MetricNames",
    "validate_metrics",
]
