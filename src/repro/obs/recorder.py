"""The thread-safe in-process metrics recorder.

One :class:`Recorder` instance travels down a call stack (session ->
cluster -> backend -> engine) and absorbs everything the layers emit:

* ``counter(name, value, **labels)`` — monotonic totals (keys tested,
  chunks dispatched, candidates requeued);
* ``gauge(name, value, **labels)`` — last-write-wins readings (per-worker
  ``X_j`` in keys/second);
* ``span(name, **labels)`` — a context manager timing a phase; repeated
  spans aggregate into count/total/min/max per ``(name, labels)``;
* ``span_record(name, seconds, **labels)`` — fold an externally measured
  duration into the same aggregate (used when the duration was measured
  inside a worker process and shipped back in the gather payload);
* ``event(name, **fields)`` — a timestamped timeline entry (rebalance
  decisions, worker deaths, requeues).

All mutation happens under one lock; the recorder is shared freely across
the thread backends.  It does *not* cross process boundaries — process
workers report durations through their gather messages and the master
folds them in with :meth:`Recorder.span_record`.

:data:`NULL_RECORDER` is the no-op twin: every method exists and does
nothing, so call sites that want unconditional recording can hold it
instead of branching on ``None``.  The instrumented hot paths use the
``recorder=None`` convention instead, guaranteeing zero work when
observability is off.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


def _series_key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


class Recorder:
    """Thread-safe sink for counters, gauges, spans, and events."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._spans: dict[tuple, list] = {}  # key -> [count, total, min, max]
        self._events: list[dict] = []
        self._epoch = clock()

    # ------------------------------------------------------------------ #
    def counter(self, name: str, value: float = 1, **labels: str) -> None:
        """Add *value* to a monotonic counter."""
        key = _series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a last-write-wins reading."""
        with self._lock:
            self._gauges[_series_key(name, labels)] = float(value)

    def span_record(self, name: str, seconds: float, **labels: str) -> None:
        """Fold one measured duration into the span aggregate."""
        key = _series_key(name, labels)
        with self._lock:
            agg = self._spans.get(key)
            if agg is None:
                self._spans[key] = [1, seconds, seconds, seconds]
            else:
                agg[0] += 1
                agg[1] += seconds
                agg[2] = min(agg[2], seconds)
                agg[3] = max(agg[3], seconds)

    @contextmanager
    def span(self, name: str, **labels: str):
        """Time a phase: ``with recorder.span("phase.gather"): ...``."""
        started = self._clock()
        try:
            yield self
        finally:
            self.span_record(name, self._clock() - started, **labels)

    def event(self, name: str, **fields) -> None:
        """Append a timestamped timeline entry (seconds since recorder start)."""
        entry = {
            "name": name,
            "time": self._clock() - self._epoch,
            "fields": dict(fields),
        }
        with self._lock:
            self._events.append(entry)

    # ------------------------------------------------------------------ #
    def counter_value(self, name: str, **labels: str) -> float:
        """Current value of one counter series (0 when never touched)."""
        with self._lock:
            return self._counters.get(_series_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauges_named(self, name: str) -> dict[str, float]:
        """All gauge series of one name, keyed by their label string."""
        with self._lock:
            return {
                ",".join(f"{k}={v}" for k, v in labels): value
                for (n, labels), value in sorted(self._gauges.items())
                if n == name
            }

    def events_named(self, name: str) -> list[dict]:
        """All timeline entries of one name, in emission order."""
        with self._lock:
            return [dict(e) for e in self._events if e["name"] == name]

    # ------------------------------------------------------------------ #
    def export(self) -> dict:
        """Snapshot everything as a ``repro-metrics/v2`` document."""
        from repro.obs.schema import METRICS_SCHEMA

        with self._lock:
            return {
                "schema": METRICS_SCHEMA,
                "counters": [
                    {"name": name, "labels": dict(labels), "value": value}
                    for (name, labels), value in sorted(self._counters.items())
                ],
                "gauges": [
                    {"name": name, "labels": dict(labels), "value": value}
                    for (name, labels), value in sorted(self._gauges.items())
                ],
                "spans": [
                    {
                        "name": name,
                        "labels": dict(labels),
                        "count": agg[0],
                        "total": agg[1],
                        "min": agg[2],
                        "max": agg[3],
                    }
                    for (name, labels), agg in sorted(self._spans.items())
                ],
                "events": [dict(e) for e in self._events],
            }


class NullRecorder(Recorder):
    """A recorder that records nothing — safe to call from anywhere."""

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, value: float = 1, **labels: str) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: str) -> None:
        pass

    def span_record(self, name: str, seconds: float, **labels: str) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        pass


#: Shared no-op sink for call sites that record unconditionally.
NULL_RECORDER = NullRecorder()


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def render_summary(document: dict) -> str:
    """Human-readable one-screen view of an exported metrics payload.

    This is what ``repro crack --metrics summary`` prints: phase totals
    first (the paper's ``K_scatter``/``K_search``/``K_gather``), then
    per-worker throughput, counters, and the event timeline tail.
    """
    lines = [f"metrics ({document.get('schema', '?')})"]
    spans = document.get("spans", [])
    if spans:
        lines.append("  phases:")
        for row in spans:
            label = row["name"] + _fmt_labels(row.get("labels", {}))
            lines.append(
                f"    {label:40s} n={row['count']:<6d} total={row['total']:.4f}s "
                f"min={row['min']:.4f}s max={row['max']:.4f}s"
            )
    gauges = document.get("gauges", [])
    if gauges:
        lines.append("  gauges:")
        for row in gauges:
            label = row["name"] + _fmt_labels(row.get("labels", {}))
            lines.append(f"    {label:40s} {row['value']:,.1f}")
    counters = document.get("counters", [])
    if counters:
        lines.append("  counters:")
        for row in counters:
            label = row["name"] + _fmt_labels(row.get("labels", {}))
            lines.append(f"    {label:40s} {row['value']:,.0f}")
    events = document.get("events", [])
    if events:
        lines.append(f"  events ({len(events)} total, last 10):")
        for event in events[-10:]:
            fields = ", ".join(f"{k}={v}" for k, v in sorted(event["fields"].items()))
            lines.append(f"    t={event['time']:.4f}s {event['name']} {fields}")
    return "\n".join(lines)
