"""EXP A9 (extension) — NTLM: the MD4 reversal kernel on Windows hashes.

NTLM (``MD4(UTF-16LE(password))``) is unsalted and three rounds shorter
than MD5; every tool in the paper's Table VIII comparison also shipped NTLM
kernels.  This bench measures the real vectorized engine on the format:
the reversal fast path (30 of 48 steps via per-lane reverted targets) vs
the full-hash baseline, plus a crack of the famous ``NTLM("password")``
digest.
"""

import pytest

from repro.apps.ntlm import NTLMCrackStats, NTLMTarget, crack_ntlm, ntlm_hex
from repro.keyspace import ALNUM_LOWER, ALPHA_LOWER, Interval


@pytest.mark.parametrize("variant", ["optimized", "naive"])
def test_a9_ntlm_engine_throughput(benchmark, variant):
    target = NTLMTarget(
        digest=bytes.fromhex(ntlm_hex("zzzzzz")),
        charset=ALNUM_LOWER,
        min_length=6,
        max_length=6,
    )
    interval = Interval(0, 200_000)

    def scan():
        stats = NTLMCrackStats()
        crack_ntlm(target, interval, stats=stats, force_naive=(variant == "naive"))
        return stats

    stats = benchmark.pedantic(scan, rounds=3, iterations=1)
    print(f"\nNTLM {variant}: {stats.mkeys_per_second:.2f} Mkeys/s")


def test_a9_reversal_beats_naive(benchmark):
    target = NTLMTarget(
        digest=bytes.fromhex(ntlm_hex("zzzzzz")),
        charset=ALNUM_LOWER,
        min_length=6,
        max_length=6,
    )
    interval = Interval(0, 400_000)

    def ratio():
        import time

        crack_ntlm(target, Interval(0, 50_000))  # warm up
        fast = min(
            _timed(lambda: crack_ntlm(target, interval)) for _ in range(3)
        )
        slow = min(
            _timed(lambda: crack_ntlm(target, interval, force_naive=True))
            for _ in range(3)
        )
        return slow / fast

    def _timed(fn):
        import time

        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    speedup = benchmark.pedantic(ratio, rounds=1, iterations=1)
    print(f"\nNTLM reversal speedup (measured): {speedup:.2f}x — "
          f"typically 1.1-1.3x; timing on a shared container jitters")
    # The deterministic part of the claim: the fast path runs 30 of MD4's
    # 48 steps per candidate and returns identical results.
    from repro.hashes.md4_reversal import MD4_EARLY_STEPS

    assert MD4_EARLY_STEPS / 48 < 2 / 3
    small = Interval(0, 40_000)
    assert crack_ntlm(target, small) == crack_ntlm(target, small, force_naive=True)


def test_a9_cracks_the_famous_hash(benchmark):
    # 8846f7eaee8fb117ad06bdd830b7586c = NTLM("password"); crack a
    # policy-window slice around it to keep the bench quick.
    target = NTLMTarget(
        digest=bytes.fromhex("8846f7eaee8fb117ad06bdd830b7586c"),
        charset=ALPHA_LOWER,
        min_length=8,
        max_length=8,
    )
    index = target.mapping.index_of("password")
    window = Interval(max(0, index - 100_000), index + 100_000)
    matches = benchmark.pedantic(
        crack_ntlm, args=(target, window), rounds=1, iterations=1
    )
    print(f"\ncracked: {[k for _, k in matches]!r} at id {index:,}")
    assert [k for _, k in matches] == ["password"]
