"""BENCH — elastic multi-master sharding: speedup vs agents, ± stealing.

One keyspace is sharded across 1/2/4 masters (`ShardCoordinator`); the
first lane is a deliberate straggler (per-chunk `slowdown`), so without
work stealing the whole run waits on the slow shard while the fast
lanes idle.  The benchmark scans the same no-match space at each agent
count with stealing on, plus a 4-agent run with stealing off, and
reports the speedup curve — the elastic analogue of the paper's
static-balancing rule (`N_j = N_max · X_j/X_max`), achieved at runtime
by moving pending intervals instead of by pre-sizing them.

Standalone::

    PYTHONPATH=src python benchmarks/bench_elastic.py [--quick]

or imported by :mod:`benchmarks.run_all`, which folds the results into
``BENCH_cracking.json`` (``summary.elastic_speedup_4_agents``).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time

from repro.apps.cracking import CrackTarget, HashAlgorithm
from repro.cluster.elastic import ShardCoordinator
from repro.cluster.runtime import WorkerConfig
from repro.keyspace import ALPHA_LOWER
from repro.obs import Recorder
from repro.obs.schema import MetricNames

_BATCH = 1 << 14
_AGENTS = (1, 2, 4)


def _target(quick: bool) -> CrackTarget:
    return CrackTarget(
        algorithm=HashAlgorithm.MD5,
        digest=hashlib.md5(b"*no match*").digest(),  # full scan: 0 found
        charset=ALPHA_LOWER,
        min_length=1,
        max_length=3 if quick else 4,
    )


def _phase_totals(export) -> dict:
    totals = {"scatter": 0.0, "search": 0.0, "gather": 0.0}
    for row in (export or {}).get("spans", []):
        if row["name"] == MetricNames.PHASE_SEARCH:
            totals["search"] += row["total"]
        elif row["name"] == MetricNames.PHASE_SCATTER:
            totals["scatter"] += row["total"]
        elif row["name"] == MetricNames.PHASE_GATHER:
            totals["gather"] += row["total"]
    return totals


def _lanes(agents: int, quick: bool) -> list[list[WorkerConfig]]:
    """One worker per master; lane 0 drags its feet on every chunk."""
    slowdown = 0.01 if quick else 0.02
    return [
        [
            WorkerConfig(
                name=f"a{i}w0",
                batch_size=_BATCH,
                slowdown=slowdown if i == 0 else 0.0,
            )
        ]
        for i in range(agents)
    ]


def bench_agents(agents: int, stealing: bool, quick: bool) -> dict:
    target = _target(quick)
    recorder = Recorder()
    coordinator = ShardCoordinator(
        target,
        masters=agents,
        worker_configs=_lanes(agents, quick),
        chunk_size=1 << 9 if quick else 1 << 12,
        stealing=stealing,
    )
    started = time.perf_counter()
    result = coordinator.run(recorder=recorder)
    elapsed = time.perf_counter() - started
    return {
        "backend": "elastic",
        "mode": f"{agents}-agents-{'steal' if stealing else 'no-steal'}",
        "agents": agents,
        "stealing": stealing,
        "workers": agents,  # one worker per master lane
        "batch_size": _BATCH,
        "tested": result.tested,
        "elapsed": elapsed,
        "keys_per_second": result.tested / elapsed if elapsed else 0.0,
        "chunks": result.chunks,
        "steals": result.steals,
        "stolen_candidates": result.stolen_candidates,
        "duplicates": result.duplicates,
        "phases": _phase_totals(result.metrics),
        "metrics": result.metrics,
    }


def run(quick: bool = False, workers: int | None = None) -> dict:
    """Returns the ``BENCH_cracking.json`` payload fragment."""
    rows = [bench_agents(agents, True, quick) for agents in _AGENTS]
    rows.append(bench_agents(_AGENTS[-1], False, quick))
    by_mode = {row["mode"]: row for row in rows}
    base = by_mode["1-agents-steal"]["keys_per_second"]
    four = by_mode["4-agents-steal"]["keys_per_second"]
    no_steal = by_mode["4-agents-no-steal"]["keys_per_second"]
    space = _target(quick).space_size
    return {
        "name": "elastic_sharding",
        "space": space,
        "results": rows,
        "elastic_speedup_4_agents": four / base if base else 0.0,
        "steal_vs_no_steal_4_agents": four / no_steal if no_steal else 0.0,
        "all_results_identical": all(row["tested"] == space for row in rows),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller keyspace")
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
