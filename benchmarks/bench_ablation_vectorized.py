"""EXP A3 — ablation: the real vectorized engine and the tuning curve.

Measures the NumPy SIMT engine's actual Mkeys/s (MD5, SHA1, SHA256-mining)
and the efficiency-vs-batch-size curve — the CPU analogue of the paper's
per-node tuning step that finds ``n_j`` for a target efficiency.
"""

import hashlib

import numpy as np

from repro.apps.cracking import CrackEngine, CrackTarget
from repro.apps.mining import MiningJob, mine_interval
from repro.hashes.padding import Endian, pack_single_block
from repro.hashes.vec_md5 import md5_batch
from repro.hashes.vec_sha1 import sha1_batch
from repro.keyspace import ALNUM_MIXED, Interval
from repro.kernels.variants import HashAlgorithm

BATCH = 1 << 14


def _blocks(endian):
    rng = np.random.default_rng(7)
    chars = rng.integers(97, 123, size=(BATCH, 8), dtype=np.uint8)
    return pack_single_block(chars, endian)


def test_a3_md5_batch_throughput(benchmark):
    blocks = _blocks(Endian.LITTLE)
    benchmark(md5_batch, blocks)
    rate = BATCH / benchmark.stats["mean"] / 1e6 if benchmark.stats else float("nan")
    print(f"\nvectorized MD5: {rate:.2f} Mkeys/s per core")


def test_a3_sha1_batch_throughput(benchmark):
    blocks = _blocks(Endian.BIG)
    benchmark(sha1_batch, blocks)
    rate = BATCH / benchmark.stats["mean"] / 1e6 if benchmark.stats else float("nan")
    print(f"\nvectorized SHA1: {rate:.2f} Mkeys/s per core")


def test_a3_end_to_end_crack_throughput(benchmark):
    target = CrackTarget(
        algorithm=HashAlgorithm.MD5,
        digest=hashlib.md5(b"absent").digest(),
        charset=ALNUM_MIXED,
        min_length=8,
        max_length=8,
    )

    def scan():
        engine = CrackEngine(target, batch_size=BATCH)
        engine.search(Interval(0, 4 * BATCH))
        return engine.stats

    stats = benchmark.pedantic(scan, rounds=3, iterations=1)
    print(f"\nend-to-end crack scan: {stats.mkeys_per_second:.2f} Mkeys/s per core")


def test_a3_mining_throughput(benchmark):
    job = MiningJob(header=bytes(range(80)) * 1, difficulty_bits=40)
    benchmark.pedantic(
        mine_interval, args=(job, Interval(0, 1 << 15)), kwargs={"batch_size": BATCH},
        rounds=3, iterations=1,
    )
    rate = (1 << 15) / benchmark.stats["mean"] / 1e6 if benchmark.stats else float("nan")
    print(f"\nSHA256d mining: {rate:.2f} Mnonces/s per core")


def test_a3_tuning_curve(benchmark):
    """The per-node tuning step on the real engine: throughput vs batch."""
    target = CrackTarget(
        algorithm=HashAlgorithm.MD5,
        digest=hashlib.md5(b"absent").digest(),
        charset=ALNUM_MIXED,
        min_length=8,
        max_length=8,
    )

    def tune():
        import time

        curve = {}
        for exp in (6, 8, 10, 12, 14):
            batch = 1 << exp
            engine = CrackEngine(target, batch_size=batch)
            t0 = time.perf_counter()
            engine.search(Interval(0, 1 << 16))
            curve[batch] = (1 << 16) / (time.perf_counter() - t0) / 1e6
        return curve

    curve = benchmark.pedantic(tune, rounds=1, iterations=1)
    print("\nbatch -> Mkeys/s:", {b: round(x, 2) for b, x in curve.items()})
    # Large batches must beat tiny ones (per-batch Python overhead is the
    # CPU analogue of the kernel-launch overhead).
    assert curve[1 << 14] > curve[1 << 6]
