"""BENCH — cluster transport cost: in-process queues vs real TCP sockets.

The distributed runtime speaks one wire format over two substrates: the
in-process queue transport (zero copies, no kernel) and the TCP
transport (framing, CRC, sockets, a beacon thread per worker).  This
benchmark runs the *same* exhaustive no-match scan over both with the
same worker count and reports the throughput ratio — the price of real
networking — plus a framing microbenchmark (encode + CRC + decode round
trips per second).

Standalone::

    PYTHONPATH=src python benchmarks/bench_transport.py [--quick]

or imported by :mod:`benchmarks.run_all`, which folds the results into
``BENCH_cracking.json``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import threading
import time

from repro.apps.cracking import CrackTarget, HashAlgorithm
from repro.cluster.runtime import DistributedMaster, WorkerConfig
from repro.cluster.transport import (
    FrameDecoder,
    TcpMasterTransport,
    WorkerClient,
    encode_frame,
)
from repro.keyspace import ALPHA_LOWER
from repro.obs import Recorder
from repro.obs.schema import MetricNames

_BATCH = 1 << 14
_CHUNK = 1 << 14
_WORKERS = 2


def _target(quick: bool) -> CrackTarget:
    return CrackTarget(
        algorithm=HashAlgorithm.MD5,
        digest=hashlib.md5(b"*no match*").digest(),  # full scan: 0 found
        charset=ALPHA_LOWER,
        min_length=1,
        max_length=3 if quick else 4,
    )


def _phase_totals(export) -> dict:
    totals = {"scatter": 0.0, "search": 0.0, "gather": 0.0}
    for row in (export or {}).get("spans", []):
        if row["name"] == MetricNames.PHASE_SEARCH:
            totals["search"] += row["total"]
        elif row["name"] == MetricNames.PHASE_SCATTER:
            totals["scatter"] += row["total"]
        elif row["name"] == MetricNames.PHASE_GATHER:
            totals["gather"] += row["total"]
    return totals


def _row(mode: str, result, elapsed: float) -> dict:
    return {
        "backend": "distributed",
        "mode": mode,
        "workers": _WORKERS,
        "batch_size": _BATCH,
        "tested": result.tested,
        "elapsed": elapsed,
        "keys_per_second": result.tested / elapsed if elapsed else 0.0,
        "chunks": result.chunks,
        "bytes_sent": result.bytes_sent,
        "bytes_received": result.bytes_received,
        "heartbeats": result.heartbeats,
        "phases": _phase_totals(result.metrics),
        "metrics": result.metrics,
    }


def bench_in_process(quick: bool) -> dict:
    target = _target(quick)
    recorder = Recorder()
    master = DistributedMaster(
        target,
        [WorkerConfig(f"q{i}", batch_size=_BATCH) for i in range(_WORKERS)],
        chunk_size=_CHUNK,
    )
    started = time.perf_counter()
    result = master.run(recorder=recorder)
    return _row("in-process", result, time.perf_counter() - started)


def bench_tcp(quick: bool) -> dict:
    target = _target(quick)
    recorder = Recorder()
    transport = TcpMasterTransport().start()
    host, port = transport.address
    clients = [
        WorkerClient(f"t{i}", host, port, batch_size=_BATCH)
        for i in range(_WORKERS)
    ]
    threads = [threading.Thread(target=c.run, daemon=True) for c in clients]
    try:
        for thread in threads:
            thread.start()
        transport.wait_for_workers(_WORKERS, timeout=30)
        master = DistributedMaster(target, transport=transport, chunk_size=_CHUNK)
        started = time.perf_counter()
        result = master.run(recorder=recorder)
        elapsed = time.perf_counter() - started
    finally:
        for client in clients:
            client.stop()
        transport.close()
        for thread in threads:
            thread.join(timeout=10)
    return _row("tcp", result, elapsed)


def bench_framing(quick: bool) -> dict:
    """Encode + CRC + incremental decode, round trips per second."""
    payload = b"x" * 64  # a typical scatter is well under the 1 KB budget
    rounds = 20_000 if quick else 100_000
    decoder = FrameDecoder()
    started = time.perf_counter()
    out = 0
    for _ in range(rounds):
        out += len(decoder.feed(encode_frame(payload)))
    elapsed = time.perf_counter() - started
    assert out == rounds
    return {
        "payload_bytes": len(payload),
        "rounds": rounds,
        "elapsed": elapsed,
        "frames_per_second": rounds / elapsed if elapsed else 0.0,
    }


def run(quick: bool = False, workers: int | None = None) -> dict:
    """Returns the ``BENCH_cracking.json`` payload fragment."""
    in_process = bench_in_process(quick)
    tcp = bench_tcp(quick)
    ratio = (
        tcp["keys_per_second"] / in_process["keys_per_second"]
        if in_process["keys_per_second"]
        else 0.0
    )
    return {
        "name": "cluster_transport",
        "space": _target(quick).space_size,
        "results": [in_process, tcp],
        "framing": bench_framing(quick),
        "tcp_vs_in_process": ratio,
        "all_results_identical": (
            in_process["tested"] == tcp["tested"]
            and in_process["tested"] == _target(quick).space_size
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller keyspace")
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
