"""EXP F2 — Figure 2: the incremental ``next`` operator.

Measures ``K_next`` against ``K_f`` — the inequality the whole per-thread
iteration strategy rests on ("the next(f(i)) function can be obtained with
a much smaller effort ... in most cases it modifies just a single
character") — and the resulting process-efficiency curve of Section III-A.
"""

from repro.core.costs import CostModel, process_efficiency
from repro.keyspace import ALNUM_MIXED, KeyMapping, KeyOrder, index_to_key, next_key


def test_fig2_next_equals_f_of_successor(benchmark):
    mapping = KeyMapping(ALNUM_MIXED, 1, 8)
    start = mapping.size // 2

    def walk():
        key = mapping.key_at(start)
        for i in range(100):
            key = next_key(key, ALNUM_MIXED)
        return key

    final = benchmark(walk)
    assert final == mapping.key_at(start + 100)


def test_fig2_knext_much_cheaper_than_kf(benchmark):
    import timeit

    mapping = KeyMapping(ALNUM_MIXED, 8, 8, KeyOrder.PREFIX_FASTEST)
    index = mapping.size // 3
    key = mapping.key_at(index)

    k_f = timeit.timeit(lambda: mapping.key_at(index), number=2000) / 2000
    k_next = (
        timeit.timeit(
            lambda: next_key(key, ALNUM_MIXED, KeyOrder.PREFIX_FASTEST), number=2000
        )
        / 2000
    )
    benchmark(next_key, key, ALNUM_MIXED, KeyOrder.PREFIX_FASTEST)
    ratio = k_f / k_next
    print(f"\nK_f = {k_f * 1e6:.2f} us, K_next = {k_next * 1e6:.2f} us, ratio = {ratio:.1f}x")
    assert k_next < k_f  # the premise of the per-thread iteration strategy

    # Section III-A: efficiency grows with interval length when K_next < K_f.
    model = CostModel(k_f=k_f, k_next=k_next, k_c=k_next * 0.5)
    curve = [(n, process_efficiency(n, model)) for n in (1, 10, 100, 10_000)]
    print("efficiency vs run length:", [(n, round(e, 3)) for n, e in curve])
    effs = [e for _, e in curve]
    assert effs == sorted(effs)
