"""EXP T9 — Table IX: whole-network throughput and efficiency.

Runs the discrete-event simulation of the A/B/C/D dispatch tree over a
slice of the paper's search space (passwords of up to 8 mixed-case
alphanumerics) and reports network throughput plus the Table IX efficiency
(throughput over the sum of theoretical single-device rates).
"""

import pytest

from repro.analysis.paper_data import PAPER_TABLE_IX
from repro.analysis.tables import Comparison, render_comparison
from repro.cluster import build_paper_network, simulate_run
from repro.keyspace import space_size
from repro.kernels.variants import HashAlgorithm

#: A thousandth of the paper's <=8-alphanumeric space keeps the DES fast
#: while leaving hundreds of dispatch rounds.
WORK = space_size(62, 1, 8) // 1000


def reproduce_table9() -> dict:
    out = {}
    for algo, label in ((HashAlgorithm.MD5, "MD5"), (HashAlgorithm.SHA1, "SHA1")):
        net = build_paper_network(algo)
        result = simulate_run(net, WORK)
        out[label] = {
            "theoretical": net.aggregate_theoretical / 1e6,
            "our approach": result.mkeys_per_second,
            "efficiency": result.network_efficiency,
        }
    return out


def test_table9_network(benchmark):
    ours = benchmark.pedantic(reproduce_table9, rounds=1, iterations=1)
    for label in ("MD5", "SHA1"):
        comparisons = [
            Comparison(col, PAPER_TABLE_IX[label][col], ours[label][col])
            for col in ("theoretical", "our approach", "efficiency")
        ]
        print()
        print(render_comparison(f"Table IX - {label} whole network", comparisons))
    # MD5 matches the paper tightly (the MD5 kernel mixes are the paper's).
    assert ours["MD5"]["our approach"] == pytest.approx(3258.4, rel=0.05)
    assert ours["MD5"]["efficiency"] == pytest.approx(0.852, abs=0.03)
    # SHA1 throughput matches; efficiency is higher than the paper's 0.898
    # because our SHA1 theoretical model runs low on Fermi (EXPERIMENTS.md).
    assert ours["SHA1"]["our approach"] == pytest.approx(950.1, rel=0.07)
    assert 0.85 < ours["SHA1"]["efficiency"] <= 1.0


def test_table9_parallelism_claim(benchmark):
    # "an actual overall throughput that is roughly equal to the sum of the
    # throughputs of the single devices" — dispatch efficiency ~1.
    net = build_paper_network(HashAlgorithm.MD5)
    result = benchmark.pedantic(
        simulate_run, args=(net, WORK), rounds=1, iterations=1
    )
    print(f"\ndispatch efficiency: {result.dispatch_efficiency:.4f} over {result.rounds} rounds")
    assert result.dispatch_efficiency > 0.98
