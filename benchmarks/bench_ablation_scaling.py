"""EXP A2 — ablation: linear scalability and interval-granularity effects.

Two claims of Section III:

* throughput scales linearly as nodes join ("reaching linear scalability
  with increasing computing power of the participating nodes");
* efficiency depends on dispatch granularity — large intervals amortize the
  fixed scatter/gather/merge costs, small ones don't.
"""

import pytest

from repro.cluster import ClusterNode, GPUWorker, simulate_run
from repro.cluster.topology import build_paper_network
from repro.kernels.variants import HashAlgorithm

WORK = 10**10


def growing_network(n_nodes: int) -> ClusterNode:
    """A flat master plus n identical 500-Mkey/s workers."""
    return ClusterNode(
        "master",
        devices=[GPUWorker(f"g{i}", 500e6) for i in range(n_nodes)],
    )


def test_a2_linear_scaling(benchmark):
    def sweep():
        return {
            n: simulate_run(growing_network(n), WORK).throughput for n in (1, 2, 4, 8, 16)
        }

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.analysis.sweeps import Series, ascii_plot

    series = Series(
        "whole-network Gkeys/s vs node count",
        tuple(curve),
        tuple(x / 1e9 for x in curve.values()),
    )
    print()
    print(ascii_plot(series, width=40, height=8))
    base = curve[1]
    for n, throughput in curve.items():
        speedup = throughput / base
        assert speedup == pytest.approx(n, rel=0.03), f"{n} nodes"


def test_a2_interval_granularity(benchmark):
    net = build_paper_network(HashAlgorithm.MD5)

    def sweep():
        sizes = [10**7, 10**8, 10**9, 10**10]
        return {size: simulate_run(net, WORK, round_size=size).dispatch_efficiency for size in sizes}

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nround size -> dispatch efficiency:", {s: round(e, 4) for s, e in curve.items()})
    effs = list(curve.values())
    assert effs == sorted(effs)  # monotone: bigger rounds, less overhead
    assert effs[0] < 0.9  # fine granularity visibly hurts
    assert effs[-1] > 0.99  # the paper's operating regime


def test_a2_heterogeneity_costs_nothing_with_balancing(benchmark):
    # Same aggregate power, balanced shares: equal wall time regardless of
    # how skewed the device mix is.
    uniform = ClusterNode("u", devices=[GPUWorker(f"u{i}", 500e6) for i in range(4)])
    skewed = ClusterNode(
        "s",
        devices=[
            GPUWorker("big", 1700e6),
            GPUWorker("mid", 200e6),
            GPUWorker("small", 70e6),
            GPUWorker("tiny", 30e6),
        ],
    )

    def run_both():
        return (
            simulate_run(uniform, WORK).elapsed,
            simulate_run(skewed, WORK).elapsed,
        )

    t_uniform, t_skewed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nuniform: {t_uniform:.2f}s, skewed: {t_skewed:.2f}s")
    assert t_skewed == pytest.approx(t_uniform, rel=0.05)
