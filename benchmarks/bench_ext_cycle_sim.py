"""EXP A7 (extension) — cycle-level simulator vs the closed-form port model.

The Table VIII rows come from the closed-form port model; this bench
cross-validates it with the event-level warp-scheduler simulation on every
paper GPU, and reports the dual-issue uplift the paper prescribes for
Fermi ("interleaving the production of the hash of two strings at a time
... is nevertheless a good choice on Fermi").
"""

import pytest

from repro.analysis.tables import render_table
from repro.gpusim.device import PAPER_DEVICES
from repro.gpusim.scheduler import simulate_kernel_cycles
from repro.gpusim.throughput import cycles_per_hash_simulated
from repro.kernels.variants import HashAlgorithm, KernelVariant, get_kernel


def cross_validate() -> dict:
    out = {}
    for name, dev in PAPER_DEVICES.items():
        mix = get_kernel(HashAlgorithm.MD5, KernelVariant.BYTE_PERM).mix_for(dev.family)
        sim1 = simulate_kernel_cycles(dev, mix, interleave=1)
        sim2 = simulate_kernel_cycles(dev, mix, interleave=2)
        closed = cycles_per_hash_simulated(dev.arch, mix, ilp_fraction=0.0)
        out[name] = {
            "closed_mkeys": dev.multiprocessors * dev.clock_hz / closed / 1e6,
            "sim_mkeys": sim1.mkeys_per_second(dev),
            "sim_ilp2_mkeys": sim2.mkeys_per_second(dev),
            "dual_issue": sim2.dual_issue_fraction,
        }
    return out


def test_ext_cycle_sim_cross_validation(benchmark):
    table = benchmark.pedantic(cross_validate, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Extension - cycle sim vs closed-form port model (MD5, Mkeys/s)",
            columns=["closed form", "cycle sim", "cycle sim ILP=2", "dual-issue"],
            rows=[
                [
                    row["closed_mkeys"],
                    row["sim_mkeys"],
                    row["sim_ilp2_mkeys"],
                    f"{row['dual_issue']:.0%}",
                ]
                for row in table.values()
            ],
            row_labels=list(table),
        )
    )
    for name, row in table.items():
        # The event-level sim is conservative but never wildly off.
        ratio = row["sim_mkeys"] / row["closed_mkeys"]
        assert 0.75 < ratio < 1.05, name


def test_ext_fermi_gains_from_interleaving(benchmark):
    # The paper's Fermi prescription: a 2-hash interleave lifts throughput.
    dev = PAPER_DEVICES["550Ti"]
    mix = get_kernel(HashAlgorithm.MD5).mix_for(dev.family)

    def uplift():
        sim1 = simulate_kernel_cycles(dev, mix, interleave=1)
        sim2 = simulate_kernel_cycles(dev, mix, interleave=2)
        return sim2.mkeys_per_second(dev) / sim1.mkeys_per_second(dev)

    gain = benchmark.pedantic(uplift, rounds=1, iterations=1)
    print(f"\nFermi 2-hash interleave uplift: {gain:.2f}x")
    assert gain > 1.15
