"""EXP A5/A6 (extensions) — adaptive dispatching and guided ordering.

* **A5**: the dynamic-network extension of Section III — the dispatcher
  starts with wrong throughput estimates and converges to balance purely
  from round feedback; a mid-run throttle is re-absorbed.
* **A6**: Section III-A's "f(i) can follow a heuristics to favor testing of
  the most likely solutions" — the Markov-guided order finds corpus-like
  passwords orders of magnitude earlier than the lexicographic bijection.
"""

from repro.apps.cracking import CrackTarget
from repro.apps.markov import MarkovAttack, MarkovModel
from repro.cluster.dispatch import AdaptiveDispatcher
from repro.keyspace import ALPHA_LOWER


def test_a5_adaptive_convergence(benchmark):
    true_rates = {"660": 1820e6, "550Ti": 624e6, "8800": 503e6, "540M": 233e6, "8600M": 74e6}

    def run():
        d = AdaptiveDispatcher({name: 500e6 for name in true_rates}, alpha=0.5)
        history = d.run_simulated(30 * 10**9, 10**9, lambda n, _r: true_rates[n])
        return d, history

    d, history = benchmark.pedantic(run, rounds=1, iterations=1)
    trajectory = [round(h.imbalance, 3) for h in history[:8]]
    print(f"\nimbalance per round: {trajectory} ... {history[-1].imbalance:.4f}")
    assert history[0].imbalance > 0.5
    assert history[-1].imbalance < 0.01
    assert d.estimate_error(true_rates) < 0.01


def test_a5_throttle_recovery(benchmark):
    def rate(name, round_index):
        base = {"a": 1e9, "b": 1e9}[name]
        return base / 3 if (name == "a" and round_index >= 8) else base

    def run():
        d = AdaptiveDispatcher({"a": 1e9, "b": 1e9}, alpha=0.6)
        return d.run_simulated(24 * 10**9, 10**9, rate)

    history = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nthrottle at round 8: imbalance {history[8].imbalance:.3f} "
          f"-> settles at {history[-1].imbalance:.4f}")
    assert history[8].imbalance > 0.2
    assert history[-1].imbalance < 0.05


def test_a6_guided_vs_lexicographic_rank(benchmark):
    corpus = ["password", "passport", "passive", "passion", "passing"]
    model = MarkovModel(ALPHA_LOWER, smoothing=0.01)
    model.train(corpus)
    # "passin" uses only transitions the corpus exhibits (s->s, s->i, i->n,
    # n->end), so the guided order reaches it quickly; lexicographically it
    # sits billions of keys deep.
    target = CrackTarget.from_password("passin", ALPHA_LOWER, min_length=6, max_length=6)

    def guided_rank():
        attack = MarkovAttack(model, min_length=6, max_length=6)
        findings = attack.search(target, budget=20_000)
        return findings[0].rank if findings else None

    rank = benchmark.pedantic(guided_rank, rounds=1, iterations=1)
    lex = target.mapping.index_of("passes")
    print(f"\nguided rank: {rank:,} vs lexicographic rank: {lex:,} "
          f"({lex / max(rank, 1):,.0f}x earlier)")
    assert rank is not None
    assert rank * 100 < lex
