"""BENCH — backend scaling: serial vs thread vs process keys/sec.

Measures the crack engine's throughput on an MD5 mask-style search (fixed
charset and length window) across execution backends and batch sizes — the
per-node tuning step the paper's balancing rule ``N_j = N_max * (X_j /
X_max)`` depends on, run on the hardware we actually have.  Also verifies
that every backend returns bit-identical crack results.

Standalone::

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py [--quick]

or imported by :mod:`benchmarks.run_all`, which folds the results into
``BENCH_cracking.json``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import time

from repro.apps.cracking import CrackTarget
from repro.core.backend import BACKENDS, resolve_backend
from repro.keyspace import ALPHA_LOWER, Interval, split_interval
from repro.obs import Recorder
from repro.obs.schema import MetricNames

#: Planted password: forces a full scan to its id, deep in the space.
_PASSWORD = "zzyzx"


def _target() -> CrackTarget:
    return CrackTarget.from_password(
        _PASSWORD, ALPHA_LOWER, min_length=1, max_length=5
    )


def bench_backend(
    backend_name: str,
    workers: int,
    batch_size: int,
    space: int,
    repeats: int = 3,
) -> dict:
    """Time one backend configuration over the first *space* candidates.

    The pool is warmed with an untimed run first — persistent pools make
    worker start-up a one-time cost in production, so the steady-state
    dispatch rate is the number that matters.  Best of *repeats* is kept.
    """
    target = _target()
    interval = Interval(0, min(space, target.space_size))
    chunk = None
    backend = resolve_backend(backend_name, workers=workers)
    tuned = getattr(backend, "tuned", None)
    if tuned is not None:
        chunk = tuned.chunk_size
    if chunk is None or chunk > interval.size:
        chunk = max(1, interval.size // max(1, workers * 4))
    chunks = split_interval(interval, chunk)
    best = None
    found = None
    metrics = None
    try:
        # Warm-up: start the pool, install the target, fill engine caches.
        backend.run(
            target, split_interval(Interval(0, min(10_000, interval.size)), 2_500),
            batch_size=batch_size,
        )
        for _ in range(repeats):
            recorder = Recorder()
            started = time.perf_counter()
            outcome = backend.run(
                target, chunks, batch_size=batch_size, recorder=recorder
            )
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
                metrics = recorder.export()
            found = outcome.found
    finally:
        backend.close()
    phases = _phase_totals(metrics)
    return {
        "backend": backend_name,
        "workers": backend.workers,
        "batch_size": batch_size,
        "chunk_size": chunk,
        "tested": interval.size,
        "elapsed": best,
        "keys_per_second": interval.size / best if best else 0.0,
        "phases": phases,
        "overheads": _overhead_ratios(phases, best),
        "metrics": metrics,
        "found": found,
    }


def _phase_totals(metrics: dict) -> dict:
    """Scatter/search/gather seconds from the recorded span aggregates.

    The per-phase breakdown successive PRs compare — ``K_scatter``,
    ``K_search`` (summed in-worker time), ``K_gather`` of the cost model.
    """
    wanted = {
        MetricNames.PHASE_SCATTER: "scatter",
        MetricNames.PHASE_SEARCH: "search",
        MetricNames.PHASE_GATHER: "gather",
    }
    totals = {label: 0.0 for label in wanted.values()}
    for row in (metrics or {}).get("spans", []):
        label = wanted.get(row["name"])
        if label is not None:
            totals[label] += row["total"]
    return totals


def _overhead_ratios(phases: dict, elapsed: float | None) -> dict:
    """Dispatch/gather wall-clock fractions — where a regression lives.

    ``dispatch_ratio`` is scatter (span construction + submission) over
    total wall time, ``gather_ratio`` the master-side merge share.  A
    parallelism regression shows up as one of these growing, which makes
    it attributable instead of just visible.
    """
    if not elapsed or elapsed <= 0:
        return {"dispatch_ratio": 0.0, "gather_ratio": 0.0}
    return {
        "dispatch_ratio": phases.get("scatter", 0.0) / elapsed,
        "gather_ratio": phases.get("gather", 0.0) / elapsed,
    }


def run(quick: bool = False, workers: int | None = None) -> dict:
    """Full sweep; returns the ``BENCH_cracking.json`` payload fragment."""
    cpus = os.cpu_count() or 1
    if workers is None:
        workers = max(1, cpus - 1) if cpus > 1 else 1
    space = 200_000 if quick else 2_000_000
    batch_sizes = [1 << 12, 1 << 14] if quick else [1 << 12, 1 << 14, 1 << 16]
    results = []
    reference = None
    for batch_size in batch_sizes:
        for name in sorted(BACKENDS):
            entry = bench_backend(name, workers, batch_size, space)
            found = entry.pop("found")
            if reference is None:
                reference = found
            entry["results_identical"] = found == reference
            results.append(entry)
    def best_rate(name: str) -> float:
        return max(
            (r["keys_per_second"] for r in results if r["backend"] == name),
            default=0.0,
        )

    serial = best_rate("serial")
    return {
        "name": "backend_scaling",
        "password": _PASSWORD,
        "space": space,
        "host_cpus": cpus,
        "workers": workers,
        "results": results,
        "speedup_process_vs_serial": best_rate("process") / serial if serial else 0.0,
        "speedup_thread_vs_serial": best_rate("thread") / serial if serial else 0.0,
        "all_results_identical": all(r["results_identical"] for r in results),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small space, fewer sweeps")
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)
    payload = run(quick=args.quick, workers=args.workers)
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
