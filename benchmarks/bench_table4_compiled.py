"""EXP T4 — Table IV: compiled instruction count of the length-4 MD5 kernel.

Lowers the length-4-specialized source trace with the per-architecture
compiler model (rotates -> SHL+SHR+ADD on 1.*, SHL+IMAD.HI on 2.*/3.0) and
prints it against the paper's ``cuobjdump -sass`` counts.
"""

from repro.analysis.tables import compare_rows, render_comparison, max_abs_delta
from repro.kernels.variants import (
    HashAlgorithm,
    KernelVariant,
    PAPER_TABLE_IV,
    traced_mixes,
)


def reproduce_table4() -> dict:
    mixes = traced_mixes(HashAlgorithm.MD5, KernelVariant.NAIVE)
    return {family: mixes[family].as_table_row() for family in ("1.x", "2.x")}


def test_table4_compiled_counts(benchmark):
    ours = benchmark(reproduce_table4)
    for family, paper_label in (("1.x", "1.*"), ("2.x", "2.* and 3.0")):
        paper_row = {
            k: v for k, v in PAPER_TABLE_IV[family].as_table_row().items() if v or k in ("IADD", "AND/OR/XOR", "SHR/SHL", "IMAD/ISCADD")
        }
        ours_row = ours[family]
        comparisons = compare_rows(paper_row, ours_row)
        print()
        print(render_comparison(f"Table IV ({paper_label}) - naive MD5 kernel", comparisons))
        # Shift/MAD columns match exactly; IADD within the constant-folding
        # delta of the authors' compiler (documented in EXPERIMENTS.md).
        assert ours_row["SHR/SHL"] == paper_row["SHR/SHL"]
        assert ours_row["IMAD/ISCADD"] == paper_row["IMAD/ISCADD"]
        assert max_abs_delta(comparisons) < 10.0
