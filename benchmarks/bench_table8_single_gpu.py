"""EXP T8 — Table VIII: single-GPU throughput (the paper's headline table).

For each of the five GPUs and both hash functions, regenerates:

* the **theoretical** row via the paper's own formulas over the kernel
  instruction mixes;
* the **our approach** row via the port-bound simulator with realistic
  issue (no dual-issue on MD5, calibrated ILP on SHA1);
* the **BarsWF** and **Cryptohaze** rows via the baseline tool models.

Asserts the quantitative bands recorded in EXPERIMENTS.md and every
qualitative ordering of the paper.
"""

import pytest

from repro.analysis.paper_data import PAPER_TABLE_VIII
from repro.analysis.tables import Comparison, max_abs_delta, render_comparison
from repro.gpusim.device import PAPER_DEVICES
from repro.gpusim.throughput import device_report
from repro.gpusim.tools import BARSWF, CRYPTOHAZE, tool_throughput
from repro.kernels.variants import HashAlgorithm

DEVICE_ORDER = ["8600M", "8800", "540M", "550Ti", "660"]


def reproduce_table8() -> dict:
    table: dict[str, dict[str, float | None]] = {}
    for algo, label in ((HashAlgorithm.MD5, "MD5"), (HashAlgorithm.SHA1, "SHA1")):
        theo, ours, bars, cry = {}, {}, {}, {}
        for name in DEVICE_ORDER:
            dev = PAPER_DEVICES[name]
            report = device_report(dev, algo)
            theo[name] = report.theoretical_mkeys
            ours[name] = report.achieved_mkeys
            bw = tool_throughput(BARSWF, dev, algo)
            bars[name] = bw
            cry[name] = tool_throughput(CRYPTOHAZE, dev, algo)
        table[f"{label} (theoretical)"] = theo
        table[f"{label} (our approach)"] = ours
        table[f"{label} (BarsWF)"] = bars
        table[f"{label} (Cryptohaze)"] = cry
    return table


def test_table8_full_reproduction(benchmark):
    ours = benchmark(reproduce_table8)
    worst = 0.0
    for row_label, paper_row in PAPER_TABLE_VIII.items():
        if all(v is None for v in paper_row.values()):
            continue  # BarsWF SHA1: not reported
        comparisons = [
            Comparison(dev, paper_row[dev], ours[row_label][dev]) for dev in DEVICE_ORDER
        ]
        print()
        print(render_comparison(f"Table VIII - {row_label} (Mkeys/s)", comparisons))
        worst = max(worst, max_abs_delta(comparisons))
    print(f"\nworst |delta| across Table VIII: {worst:.1f}%")
    assert worst < 20.0
    # The MD5 theoretical row matches to ~1% (the formulas and instruction
    # counts are exactly the paper's).
    for dev in DEVICE_ORDER:
        assert ours["MD5 (theoretical)"][dev] == pytest.approx(
            PAPER_TABLE_VIII["MD5 (theoretical)"][dev], rel=0.02
        )


def test_table8_orderings(benchmark):
    table8 = benchmark(reproduce_table8)
    for algo in ("MD5", "SHA1"):
        for dev in DEVICE_ORDER:
            ours = table8[f"{algo} (our approach)"][dev]
            theo = table8[f"{algo} (theoretical)"][dev]
            cry = table8[f"{algo} (Cryptohaze)"][dev]
            assert ours <= theo * 1.0001
            assert ours > cry
    # Kepler headline: ours at ~99% of peak, BarsWF/Cryptohaze far below.
    kepler_eff = table8["MD5 (our approach)"]["660"] / table8["MD5 (theoretical)"]["660"]
    print(f"\nKepler efficiency (ours): {kepler_eff:.4f} (paper: 0.9946)")
    assert kepler_eff > 0.95
    assert table8["MD5 (BarsWF)"]["660"] / table8["MD5 (theoretical)"]["660"] < 0.80
