"""EXP T3 — Table III: source-level instruction count of one MD5 hash.

Runs the instrumented tracer over our MD5 compress function ("simply
counting all the operations that cannot be evaluated at compile time") and
prints the counts next to the paper's.  ADD differs by the four feed-forward
additions our trace includes; the paper's NOT row (160) disagrees with RFC
1321's structure (48 NOTs in F/G/I rounds), which we document rather than
replicate.
"""

from repro.analysis.paper_data import PAPER_TABLE_III
from repro.analysis.tables import compare_rows, render_comparison
from repro.kernels.trace import trace_md5_compress


def reproduce_table3() -> dict:
    return trace_md5_compress().as_table3_row()


def test_table3_md5_instruction_count(benchmark):
    ours = benchmark(reproduce_table3)
    comparisons = compare_rows(PAPER_TABLE_III, ours)
    print()
    print(render_comparison("Table III - MD5 source instruction count", comparisons))
    # Exact agreement on the structural rows:
    assert ours["32-bit bitwise AND/OR/XOR"] == PAPER_TABLE_III["32-bit bitwise AND/OR/XOR"]
    assert ours["32-bit integer shift"] == PAPER_TABLE_III["32-bit integer shift"]
    # ADD within the feed-forward delta:
    assert ours["32-bit integer ADD"] - PAPER_TABLE_III["32-bit integer ADD"] == 4
    # Documented NOT discrepancy (paper: 160; RFC structure: 48).
    assert ours["32-bit NOT"] == 48
