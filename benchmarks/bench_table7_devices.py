"""EXP T7 — Table VII: GPU specifications of the evaluation network."""

from repro.analysis.paper_data import PAPER_TABLE_VII
from repro.analysis.tables import render_table
from repro.gpusim.device import PAPER_DEVICES


def reproduce_table7() -> dict:
    return {
        name: {
            "Multiprocessors": dev.multiprocessors,
            "Cores": dev.cores,
            "Clock (MHz)": int(dev.clock_mhz),
            "Compute capability": str(dev.compute_capability),
        }
        for name, dev in PAPER_DEVICES.items()
    }


def test_table7_device_catalog(benchmark):
    ours = benchmark(reproduce_table7)
    rows = ["Multiprocessors", "Cores", "Clock (MHz)", "Compute capability"]
    columns = list(PAPER_TABLE_VII)
    print()
    print(
        render_table(
            "Table VII - GPU specifications (reproduced)",
            columns=columns,
            rows=[[ours[c][r] for c in columns] for r in rows],
            row_labels=rows,
        )
    )
    assert ours == PAPER_TABLE_VII
    print("All cells match the paper exactly.")
